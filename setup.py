"""Shim so `pip install -e . --no-use-pep517` works without the wheel package."""

from setuptools import setup

setup()
