"""Topology persistence: save and load networks as JSON documents.

Reproducible experiments need reproducible topologies.  Beyond seeding,
it is often necessary to pin the *exact* network a result was measured
on (e.g. to share a counterexample, or to re-run one campaign topology
under a different protocol).  The JSON document stores positions, the
communication range, capacity, and every directed link probability —
everything :class:`~repro.topology.graph.WirelessNetwork` is built from.

Format (version 1)::

    {
      "format": "repro-wireless-network",
      "version": 1,
      "communication_range": 100.0,
      "capacity": 20000.0,
      "positions": [[x, y], ...],
      "links": [[i, j, p_ij], ...]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.topology.graph import Link, WirelessNetwork

FORMAT_NAME = "repro-wireless-network"
FORMAT_VERSION = 1


def network_to_dict(network: WirelessNetwork) -> dict:
    """Serialize a network to a plain JSON-compatible dictionary."""
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "communication_range": network.communication_range,
        "capacity": network.capacity,
        "positions": [
            [float(x), float(y)] for x, y in network.positions
        ],
        "links": [
            [int(i), int(j), float(p)] for i, j, p in sorted(network.links())
        ],
    }


def network_from_dict(document: dict) -> WirelessNetwork:
    """Rebuild a network from :func:`network_to_dict` output.

    Raises ``ValueError`` on unknown formats/versions or malformed
    documents — a wrong file should fail loudly, not produce a subtly
    different topology.
    """
    if not isinstance(document, dict):
        raise ValueError(f"expected a dict, got {type(document).__name__}")
    if document.get("format") != FORMAT_NAME:
        raise ValueError(f"not a {FORMAT_NAME} document")
    if document.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported version {document.get('version')!r}; "
            f"this build reads version {FORMAT_VERSION}"
        )
    try:
        positions = np.array(document["positions"], dtype=float)
        communication_range = float(document["communication_range"])
        capacity = float(document["capacity"])
        probabilities: Dict[Link, float] = {
            (int(i), int(j)): float(p) for i, j, p in document["links"]
        }
    except (KeyError, TypeError) as error:
        raise ValueError(f"malformed network document: {error}") from error
    return WirelessNetwork(
        positions, probabilities, communication_range, capacity=capacity
    )


def save_network(network: WirelessNetwork, path: Union[str, Path]) -> None:
    """Write a network to ``path`` as JSON."""
    path = Path(path)
    path.write_text(json.dumps(network_to_dict(network), indent=1))


def load_network(path: Union[str, Path]) -> WirelessNetwork:
    """Read a network previously written by :func:`save_network`."""
    path = Path(path)
    return network_from_dict(json.loads(path.read_text()))
