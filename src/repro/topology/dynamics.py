"""Link-quality dynamics and re-planning support (paper Sec. 4).

OMNC "is based on the presumption that the link qualities in the target
network are relatively stable over time ... In cases where link
qualities change significantly, the node selection and rate allocation
have to be re-initiated, which brings a certain amount of overhead."

This module supplies the machinery to study exactly that trade-off:

* :func:`perturb_link_qualities` — produce a drifted copy of a network
  (logit-space Gaussian drift, the same noise family the PHY's
  shadowing uses), preserving geometry and neighborhoods;
* :func:`quality_drift` — quantify how far two snapshots of the same
  topology have diverged (the trigger signal a deployment would
  monitor).

The cost model of an actual re-initiation lives one layer up, in
:mod:`repro.optimization.replanning` — pricing a re-plan runs the
optimizer, which this package must not import (RPR101 layering).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.topology.graph import Link, WirelessNetwork
from repro.util.rng import RngLike, as_rng


def perturb_link_qualities(
    network: WirelessNetwork,
    *,
    sigma: float = 0.3,
    rng: RngLike = None,
) -> WirelessNetwork:
    """A drifted copy of ``network``: same geometry, shifted qualities.

    Every link probability moves by Gaussian noise of scale ``sigma`` in
    logit space (multiplicative on odds), clipped to [0.02, 0.995] like
    the PHY model's shadowing.  ``sigma=0`` returns an identical copy.
    """
    if sigma < 0:
        raise ValueError(f"sigma must be >= 0, got {sigma}")
    generator = as_rng(rng)
    drifted: Dict[Link, float] = {}
    for i, j, p in network.links():
        if sigma == 0.0:  # repro: ignore[RPR004] exact sentinel (sigma=0 copy)
            drifted[(i, j)] = p
            continue
        logit = np.log(p / (1.0 - p))
        shifted = logit + generator.normal(0.0, sigma)
        value = 1.0 / (1.0 + np.exp(-shifted))
        drifted[(i, j)] = float(np.clip(value, 0.02, 0.995))
    return WirelessNetwork(
        network.positions,
        drifted,
        network.communication_range,
        capacity=network.capacity,
    )


def quality_drift(
    before: WirelessNetwork,
    after: WirelessNetwork,
    *,
    strict: bool = True,
) -> float:
    """Mean absolute link-probability change between two snapshots.

    This is the magnitude a deployment's probing would observe and
    compare against its re-planning threshold.  By default both networks
    must describe the same link set (same geometry); with
    ``strict=False`` the mean runs over the *union* of link sets and a
    link absent from one snapshot counts as probability 0 there — the
    natural reading of a node failure, where every link touching the
    failed node disappears.  Both conventions agree when the link sets
    match.
    """
    links_before = {(i, j): p for i, j, p in before.links()}
    links_after = {(i, j): p for i, j, p in after.links()}
    if strict and set(links_before) != set(links_after):
        raise ValueError("networks have different link sets")
    union = set(links_before) | set(links_after)
    if not union:
        return 0.0
    total = sum(
        abs(links_after.get(link, 0.0) - links_before.get(link, 0.0))
        for link in sorted(union)
    )
    return total / len(union)
