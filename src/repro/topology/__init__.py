"""Lossy wireless topologies: geometry, PHY model, network graphs.

* :mod:`repro.topology.geometry` — planar deployment geometry.
* :mod:`repro.topology.phy` — empirical distance -> reception-probability
  model with a power knob (paper Sec. 5 PHY model).
* :mod:`repro.topology.graph` — the :class:`WirelessNetwork` abstraction:
  directed lossy links, neighborhoods, interference, channel capacity.
* :mod:`repro.topology.random_network` — random deployments with density
  control plus the small canonical topologies used in tests and figures.
"""

from repro.topology.geometry import (
    DeploymentArea,
    Point,
    area_for_density,
    grid_positions,
    pairwise_distances,
    positions_array,
)
from repro.topology.graph import (
    DEFAULT_CHANNEL_CAPACITY,
    SubNetworkView,
    WirelessNetwork,
)
from repro.topology.phy import (
    DEFAULT_RANGE_THRESHOLD,
    EmpiricalPhyModel,
    PhyParams,
    high_quality_phy,
    lossy_phy,
)
from repro.topology.dynamics import (
    perturb_link_qualities,
    quality_drift,
)
from repro.topology.random_network import (
    chain_topology,
    diamond_topology,
    draw_link_probabilities,
    fig1_sample_topology,
    network_from_links,
    random_network,
)
from repro.topology.serialization import (
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)

__all__ = [
    "DEFAULT_CHANNEL_CAPACITY",
    "DEFAULT_RANGE_THRESHOLD",
    "DeploymentArea",
    "EmpiricalPhyModel",
    "PhyParams",
    "Point",
    "SubNetworkView",
    "WirelessNetwork",
    "area_for_density",
    "chain_topology",
    "diamond_topology",
    "draw_link_probabilities",
    "fig1_sample_topology",
    "grid_positions",
    "high_quality_phy",
    "load_network",
    "lossy_phy",
    "network_from_dict",
    "network_to_dict",
    "perturb_link_qualities",
    "quality_drift",
    "save_network",
    "network_from_links",
    "pairwise_distances",
    "positions_array",
    "random_network",
]
