"""The wireless network abstraction shared by every layer of the stack.

:class:`WirelessNetwork` bundles what the paper's G(V, E) carries:

* node positions and the communication/interference range (the paper
  treats the two as equal — Sec. 3.2);
* directed link reception probabilities ``p_ij`` (possibly asymmetric,
  as in measured networks);
* neighborhoods ``N(i)`` — nodes within range, used both for packet
  delivery and for the broadcast MAC constraint
  ``b_i + sum_{j in N(i)} b_j <= C``;
* the MAC-layer channel capacity ``C``.

The class is immutable after construction; protocols and the emulator
treat it as ground truth.  Probe-based *measurement* of link qualities
(what a deployed system would do) lives in :mod:`repro.routing.etx`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.topology.partition import SpatialGrid
from repro.util.validation import check_positive

Link = Tuple[int, int]

DEFAULT_CHANNEL_CAPACITY = 2e4  # bytes/second, paper Sec. 5: CBR = C/2 = 10^4 B/s


class WirelessNetwork:
    """An immutable lossy wireless network graph."""

    def __init__(
        self,
        positions: np.ndarray,
        probabilities: Dict[Link, float],
        communication_range: float,
        *,
        capacity: float = DEFAULT_CHANNEL_CAPACITY,
    ) -> None:
        positions = np.asarray(positions, dtype=float)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ValueError(f"positions must be (n, 2), got {positions.shape}")
        check_positive("communication_range", communication_range)
        check_positive("capacity", capacity)
        n = positions.shape[0]
        self._positions = positions.copy()
        self._positions.setflags(write=False)
        self._range = float(communication_range)
        self._capacity = float(capacity)
        # Spatial bucket index instead of a dense n x n distance matrix:
        # neighborhood construction and on-demand distances stay
        # bit-identical to the former pairwise_distances path (same
        # float64 expression per pair) but the build is O(n) for
        # bounded-density deployments and 10k-node networks no longer
        # carry an 800 MB matrix through every pickle.
        self._grid = SpatialGrid(self._positions, self._range)

        self._p: Dict[Link, float] = {}
        tolerance = 1e-9 * self._range
        for (i, j), prob in probabilities.items():
            self._validate_link(i, j, n)
            if not 0.0 < prob <= 1.0:
                raise ValueError(f"link ({i},{j}) probability must be in (0,1], got {prob}")
            span = self.distance(i, j)
            if span > self._range + tolerance:
                raise ValueError(
                    f"link ({i},{j}) spans {span:.3f}, "
                    f"beyond the communication range {self._range:.3f}"
                )
            self._p[(i, j)] = float(prob)

        # Neighborhoods are purely geometric: within range, regardless of
        # whether the probability draw produced a usable link.  This is
        # what the interference model keys on.  The grid query yields ids
        # in ascending order — the same insertion order the dense
        # np.nonzero path used, so each frozenset lays out identically.
        self._neighbors: List[FrozenSet[int]] = []
        for i in range(n):
            close, _ = self._grid.neighbors_within(i, self._range)
            self._neighbors.append(frozenset(int(j) for j in close))

        out_lists: List[List[int]] = [[] for _ in range(n)]
        in_lists: List[List[int]] = [[] for _ in range(n)]
        for (a, j) in self._p:
            out_lists[a].append(j)
            in_lists[j].append(a)
        self._out_links: List[Tuple[int, ...]] = [
            tuple(sorted(members)) for members in out_lists
        ]
        self._in_links: List[Tuple[int, ...]] = [
            tuple(sorted(members)) for members in in_lists
        ]

    @staticmethod
    def _validate_link(i: int, j: int, n: int) -> None:
        if not (0 <= i < n and 0 <= j < n):
            raise ValueError(f"link ({i},{j}) references nodes outside 0..{n - 1}")
        if i == j:
            raise ValueError(f"self-link ({i},{i}) is not allowed")

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        """Number of nodes |V|."""
        return self._positions.shape[0]

    @property
    def positions(self) -> np.ndarray:
        """Read-only (n, 2) position array."""
        return self._positions

    @property
    def communication_range(self) -> float:
        """Transmission (= interference) range."""
        return self._range

    @property
    def capacity(self) -> float:
        """MAC channel capacity C in bytes/second."""
        return self._capacity

    def nodes(self) -> range:
        """Iterate node identifiers 0..n-1."""
        return range(self.node_count)

    def distance(self, i: int, j: int) -> float:
        """Euclidean distance between nodes ``i`` and ``j``.

        Computed on demand with the same float64 expression as
        :func:`repro.topology.geometry.pairwise_distances`, so the value
        is bit-identical to the dense matrix entry it replaced.
        """
        deltas = self._positions[i] - self._positions[j]
        return float(np.sqrt(np.sum(deltas * deltas, axis=-1)))

    # ------------------------------------------------------------------
    # Links and probabilities
    # ------------------------------------------------------------------
    def probability(self, i: int, j: int) -> float:
        """One-way reception probability p_ij; 0 if no link exists."""
        return self._p.get((i, j), 0.0)

    def has_link(self, i: int, j: int) -> bool:
        """True if the directed link (i, j) exists."""
        return (i, j) in self._p

    def links(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate ``(i, j, p_ij)`` over all directed links."""
        for (i, j), prob in self._p.items():
            yield i, j, prob

    def link_count(self) -> int:
        """Number of directed links |E|."""
        return len(self._p)

    def out_neighbors(self, i: int) -> Tuple[int, ...]:
        """Nodes reachable from ``i`` by a directed link."""
        return self._out_links[i]

    def in_neighbors(self, i: int) -> Tuple[int, ...]:
        """Nodes with a directed link into ``i``."""
        return self._in_links[i]

    def neighbors(self, i: int) -> FrozenSet[int]:
        """The geometric neighborhood N(i): nodes within range of ``i``."""
        return self._neighbors[i]

    def average_link_probability(self) -> float:
        """Mean p_ij over all existing links (paper reports 0.58 / 0.91)."""
        if not self._p:
            return 0.0
        return float(np.mean(list(self._p.values())))

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------
    def subnetwork(self, keep: FrozenSet[int]) -> "SubNetworkView":
        """A view restricted to ``keep`` (used after node selection).

        Neighborhoods in the view still include *all* in-range nodes from
        the full network when asked via :meth:`SubNetworkView.interferers`
        — interference does not disappear because a node was pruned from
        the forwarding set — but links and routing only span ``keep``.
        """
        return SubNetworkView(self, frozenset(keep))

    def to_networkx(self, *, weight: Optional[str] = None) -> nx.DiGraph:
        """Export as a networkx DiGraph.

        Each edge carries ``probability``; with ``weight='etx'`` an
        ``etx = 1/p`` attribute is added for shortest-path queries.
        """
        graph = nx.DiGraph()
        graph.add_nodes_from(self.nodes())
        for i, j, prob in self.links():
            attrs = {"probability": prob}
            if weight == "etx":
                attrs["etx"] = 1.0 / prob
            graph.add_edge(i, j, **attrs)
        return graph

    def conflict_neighbors(self, i: int) -> FrozenSet[int]:
        """Transmitters that conflict with ``i`` under the ideal MAC.

        Two transmitters compete if they fall within range of a common
        receiver or of each other; with transmission range equal to
        interference range this reduces to distance <= 2 * range for the
        common-receiver case.  We use the paper's direct statement — nodes
        within range of each other interfere — plus the shared-receiver
        extension used by its MAC constraint.
        """
        # d(., .) is symmetric, so "N(i) and N(j) intersect" is exactly
        # "j is a neighbor of some neighbor of i": the two-hop ball.
        # O(deg^2) instead of the former full O(n) node scan.
        shared: set = set(self._neighbors[i])
        for k in self._neighbors[i]:
            shared.update(self._neighbors[k])
        shared.discard(i)
        # Sorted insertion keeps the frozenset layout a deterministic
        # function of the member set alone.
        return frozenset(sorted(shared))

    def __repr__(self) -> str:
        return (
            f"WirelessNetwork(nodes={self.node_count}, links={self.link_count()}, "
            f"range={self._range:.1f}, capacity={self._capacity:.0f} B/s)"
        )


class SubNetworkView:
    """A read-only restriction of a :class:`WirelessNetwork` to a node set.

    Node identifiers are preserved (no re-indexing), which keeps protocol
    state keyed consistently across the full network and the selected
    forwarding subgraph.
    """

    def __init__(self, base: WirelessNetwork, keep: FrozenSet[int]) -> None:
        for node in sorted(keep):
            if not 0 <= node < base.node_count:
                raise ValueError(f"node {node} outside base network")
        self._base = base
        self._keep = keep

    @property
    def base(self) -> WirelessNetwork:
        """The underlying full network."""
        return self._base

    @property
    def node_set(self) -> FrozenSet[int]:
        """The retained nodes."""
        return self._keep

    @property
    def capacity(self) -> float:
        """MAC channel capacity C (inherited)."""
        return self._base.capacity

    def nodes(self) -> Tuple[int, ...]:
        """Retained node identifiers in ascending order."""
        return tuple(sorted(self._keep))

    def probability(self, i: int, j: int) -> float:
        """p_ij if both endpoints are retained, else 0."""
        if i in self._keep and j in self._keep:
            return self._base.probability(i, j)
        return 0.0

    def links(self) -> Iterator[Tuple[int, int, float]]:
        """Directed links with both endpoints retained."""
        for i, j, prob in self._base.links():
            if i in self._keep and j in self._keep:
                yield i, j, prob

    def out_neighbors(self, i: int) -> Tuple[int, ...]:
        """Retained out-neighbors of ``i``."""
        return tuple(j for j in self._base.out_neighbors(i) if j in self._keep)

    def in_neighbors(self, i: int) -> Tuple[int, ...]:
        """Retained in-neighbors of ``i``."""
        return tuple(j for j in self._base.in_neighbors(i) if j in self._keep)

    def neighbors(self, i: int) -> FrozenSet[int]:
        """Retained geometric neighbors of ``i``.

        Used by the optimization's MAC constraint: only selected nodes
        transmit for this session, so only they compete for airtime in
        the session's rate allocation.
        """
        return self._base.neighbors(i) & self._keep

    def interferers(self, i: int) -> FrozenSet[int]:
        """All in-range nodes of ``i`` in the *full* network."""
        return self._base.neighbors(i)

    def __repr__(self) -> str:
        return f"SubNetworkView(nodes={len(self._keep)} of {self._base.node_count})"
