"""PHY model: mapping link distance to packet reception probability.

The paper's Drift testbed uses "a PHY model based on real-world traces
from [Camp et al., MobiSys'06], which empirically maps link distance to
the reception probability", and defines the transmission range as "the
distance where packet reception probability is below a small threshold"
(0.2 in the evaluation).  Interference range equals transmission range.

We do not have the proprietary trace, so :class:`EmpiricalPhyModel`
synthesizes a curve with the qualitative shape consistently reported by
urban-mesh measurement studies (Camp et al. '06, Aguayo et al. '04,
Reis et al. '06):

* near-perfect delivery over a short "connected" prefix of the range;
* a wide intermediate-quality "gray zone" where probability decays
  smoothly with distance — most links land here, matching the paper's
  average link quality of ~0.58;
* a cutoff at the range, where probability reaches the 0.2 threshold.

Per-link log-normal-style shadowing jitter reproduces the scatter of real
traces (two links of equal length need not have equal quality).  A
``power_scale`` knob stretches the curve's distance axis, reproducing the
paper's high-quality experiment where "the transmission power of each
node is increased such that the average reception probability rises to
0.91" (Fig. 2 right).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.util.rng import RngLike, as_rng
from repro.util.validation import check_positive, check_probability

DEFAULT_RANGE_THRESHOLD = 0.2


@dataclass(frozen=True)
class PhyParams:
    """Shape parameters of the synthetic distance->probability curve.

    Attributes:
        communication_range: distance at which the mean reception
            probability hits ``range_threshold``; beyond it links do not
            exist in the topology graph.
        range_threshold: reception probability defining the range edge
            (paper: 0.2).
        connected_fraction: fraction of the range over which delivery is
            near perfect before the gray zone begins.
        plateau_probability: mean reception probability inside the
            connected prefix.
        shadowing_sigma: standard deviation of per-link jitter applied in
            logit space (0 disables jitter).
        power_scale: multiplies the effective range; >1 models raised
            transmission power (the paper's high-quality configuration).
    """

    communication_range: float = 100.0
    range_threshold: float = DEFAULT_RANGE_THRESHOLD
    connected_fraction: float = 0.15
    plateau_probability: float = 0.97
    shadowing_sigma: float = 0.55
    power_scale: float = 1.0

    def __post_init__(self) -> None:
        check_positive("communication_range", self.communication_range)
        check_probability("range_threshold", self.range_threshold)
        if not 0.0 < self.range_threshold < 1.0:
            raise ValueError("range_threshold must lie strictly inside (0, 1)")
        check_probability("connected_fraction", self.connected_fraction)
        check_probability("plateau_probability", self.plateau_probability)
        if self.plateau_probability <= self.range_threshold:
            raise ValueError(
                "plateau_probability must exceed range_threshold: "
                f"{self.plateau_probability} <= {self.range_threshold}"
            )
        if self.shadowing_sigma < 0:
            raise ValueError(f"shadowing_sigma must be >= 0, got {self.shadowing_sigma}")
        check_positive("power_scale", self.power_scale)


class EmpiricalPhyModel:
    """Distance -> reception-probability model with per-link shadowing.

    The *mean* curve is deterministic in distance; :meth:`link_probability`
    adds a reproducible per-link jitter drawn from the generator passed at
    construction, so one model instance yields one consistent "ground
    truth" channel map for a whole experiment.
    """

    def __init__(self, params: Optional[PhyParams] = None, *, rng: RngLike = None) -> None:
        self._params = params or PhyParams()
        self._rng = as_rng(rng)

    @property
    def params(self) -> PhyParams:
        """The model's shape parameters."""
        return self._params

    @property
    def effective_range(self) -> float:
        """Range after power scaling: links longer than this do not exist."""
        return self._params.communication_range * self._params.power_scale

    def mean_probability(self, distance: float) -> float:
        """The mean reception probability at ``distance`` (no jitter).

        Piecewise: a plateau out to ``connected_fraction * range``, then a
        smooth concave decay that reaches ``range_threshold`` exactly at
        the effective range, then zero.
        """
        return float(self.mean_probability_array(np.array([distance], dtype=float))[0])

    def mean_probability_array(self, distances: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`mean_probability`."""
        p = self._params
        distances = np.asarray(distances, dtype=float)
        if np.any(distances < 0):
            raise ValueError("distances must be >= 0")
        reach = self.effective_range
        knee = p.connected_fraction * reach
        out = np.zeros_like(distances)
        # Plateau region.
        out[distances <= knee] = p.plateau_probability
        # Gray zone: smooth cosine-shaped decay from the plateau to the
        # threshold.  The half-cosine gives the S-shaped fall-off seen in
        # measured delivery-vs-distance scatter plots.
        gray = (distances > knee) & (distances <= reach)
        if np.any(gray):
            span = max(reach - knee, np.finfo(float).tiny)
            phase = (distances[gray] - knee) / span  # 0 at knee, 1 at range
            shape = 0.5 * (1.0 + np.cos(np.pi * phase))  # 1 -> 0
            out[gray] = p.range_threshold + (p.plateau_probability - p.range_threshold) * shape
        return out

    def link_probability(self, distance: float) -> float:
        """Draw one link's reception probability at ``distance``.

        Applies logit-space Gaussian jitter to the mean curve, clipped to
        [0.02, 0.995] so no link is ever exactly perfect or dead inside
        the range (matching measured traces).  Returns 0 beyond the range.
        """
        if distance < 0:
            raise ValueError(f"distance must be >= 0, got {distance}")
        if distance > self.effective_range:
            return 0.0
        mean = self.mean_probability(distance)
        sigma = self._params.shadowing_sigma
        if sigma == 0.0:  # repro: ignore[RPR004] exact sentinel (no shadowing)
            return mean
        logit = np.log(mean / (1.0 - mean))
        jittered = logit + self._rng.normal(0.0, sigma)
        value = 1.0 / (1.0 + np.exp(-jittered))
        return float(np.clip(value, 0.02, 0.995))

    def with_power_scale(self, power_scale: float, *, rng: RngLike = None) -> "EmpiricalPhyModel":
        """A copy of this model at a different transmission power."""
        check_positive("power_scale", power_scale)
        params = PhyParams(
            communication_range=self._params.communication_range,
            range_threshold=self._params.range_threshold,
            connected_fraction=self._params.connected_fraction,
            plateau_probability=self._params.plateau_probability,
            shadowing_sigma=self._params.shadowing_sigma,
            power_scale=power_scale,
        )
        return EmpiricalPhyModel(params, rng=rng if rng is not None else self._rng)


def lossy_phy(communication_range: float = 100.0, *, rng: RngLike = None) -> EmpiricalPhyModel:
    """The paper's lossy configuration: average link quality ~= 0.58.

    Calibrated so that links between uniformly deployed neighbors have a
    broad intermediate-quality spread (Fig. 2 left campaign).
    """
    params = PhyParams(
        communication_range=communication_range,
        connected_fraction=0.35,
        plateau_probability=0.97,
        shadowing_sigma=0.55,
    )
    return EmpiricalPhyModel(params, rng=rng)


def high_quality_phy(
    communication_range: float = 100.0, *, rng: RngLike = None
) -> EmpiricalPhyModel:
    """The paper's raised-power configuration: average quality ~= 0.91.

    Power is increased so that the former gray zone falls inside the
    plateau; neighbors within the *original* range now see high delivery
    probabilities (Fig. 2 right campaign).  The topology graph still uses
    the original range for neighborhood/interference relations, as in the
    paper (same topology, higher power).
    """
    params = PhyParams(
        communication_range=communication_range,
        connected_fraction=0.50,
        plateau_probability=0.96,
        shadowing_sigma=0.3,
        power_scale=1.45,
    )
    return EmpiricalPhyModel(params, rng=rng)
