"""Spatial indexing and deterministic partitioning of wireless networks.

Two building blocks for metro-scale topologies:

* :class:`SpatialGrid` — a bucket index over node positions with cell
  size equal to the query radius.  Range queries touch at most the 3x3
  cell block around a node, so building all neighborhoods is O(n) for
  bounded-density deployments instead of the O(n^2) dense
  ``pairwise_distances`` matrix (800 MB at 10k nodes).  Distances are
  computed with exactly the same float64 expression as
  :func:`repro.topology.geometry.pairwise_distances` (delta, elementwise
  square, sum, sqrt), so every value — and therefore every derived
  neighbor set and PHY draw — is bit-identical to the dense path.

* :func:`partition_network` — a deterministic spatial partitioner for
  the sharded emulator (:mod:`repro.emulator.shard`).  Nodes are cut
  into contiguous strips by position; each shard additionally knows its
  *halo*: the non-owned nodes within communication range of its owned
  set, i.e. exactly the transmitters whose packets can cross the cut
  and the receivers its own transmissions can reach.  The partition is
  a pure function of (positions, shard count), so every process that
  recomputes it agrees without coordination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (graph uses the grid)
    from repro.topology.graph import WirelessNetwork

__all__ = ["SpatialGrid", "NetworkPartition", "partition_network", "partition_positions"]


class SpatialGrid:
    """Bucket index over (n, 2) positions for fixed-radius neighbor queries.

    The cell size equals the query radius, so any pair within ``radius``
    differs by at most one cell index per axis and the 3x3 block around a
    node covers all its candidates.  Cell membership lists are kept in
    ascending node order and candidate blocks are concatenated and
    sorted, so query results enumerate neighbors in ascending id order —
    the same order the dense path's ``np.nonzero`` produced, which the
    PHY probability draws rely on.
    """

    def __init__(self, positions: np.ndarray, cell_size: float) -> None:
        positions = np.asarray(positions, dtype=float)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ValueError(f"positions must be (n, 2), got {positions.shape}")
        if cell_size <= 0:
            raise ValueError(f"cell_size must be > 0, got {cell_size}")
        self._positions = positions
        self._cell = float(cell_size)
        coords = np.floor(positions / self._cell).astype(np.int64)
        self._coords = coords
        cells: Dict[Tuple[int, int], List[int]] = {}
        for index in range(positions.shape[0]):
            key = (int(coords[index, 0]), int(coords[index, 1]))
            cells.setdefault(key, []).append(index)
        # Ascending insertion order means each bucket is already sorted.
        self._cells: Dict[Tuple[int, int], np.ndarray] = {
            key: np.asarray(members, dtype=np.int64)
            for key, members in cells.items()
        }

    @property
    def cell_size(self) -> float:
        """Edge length of one grid cell (= the query radius)."""
        return self._cell

    def candidates(self, index: int) -> np.ndarray:
        """Node ids in the 3x3 cell block around ``index``, ascending.

        A superset of the true in-range neighbors (and including
        ``index`` itself); callers filter by exact distance.
        """
        cx = int(self._coords[index, 0])
        cy = int(self._coords[index, 1])
        blocks: List[np.ndarray] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                members = self._cells.get((cx + dx, cy + dy))
                if members is not None:
                    blocks.append(members)
        if not blocks:  # pragma: no cover - own cell always exists
            return np.empty(0, dtype=np.int64)
        if len(blocks) == 1:
            return blocks[0]
        merged = np.concatenate(blocks)
        merged.sort()
        return merged

    def neighbors_within(
        self, index: int, radius: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Ids and distances of nodes with ``d <= radius``, excluding self.

        Ids ascend; distances align with ids and are bit-identical to the
        corresponding entries of ``pairwise_distances(positions)``.
        """
        if radius > self._cell:
            raise ValueError(
                f"radius {radius} exceeds the grid cell size {self._cell}"
            )
        candidates = self.candidates(index)
        # Same float64 expression as geometry.pairwise_distances, applied
        # to the candidate rows: subtract, square elementwise, sum the
        # two components, sqrt.  Elementwise IEEE ops are independent of
        # the surrounding array shape, so each value matches the dense
        # matrix entry bit for bit.
        deltas = self._positions[candidates] - self._positions[index]
        distances = np.sqrt(np.sum(deltas * deltas, axis=-1))
        keep = (distances <= radius) & (candidates != index)
        return candidates[keep], distances[keep]


def partition_positions(
    positions: np.ndarray, shards: int
) -> Tuple[int, ...]:
    """Assign each node to a shard by contiguous spatial strips.

    Nodes are ranked by ``(x, y, id)`` and cut into ``shards`` strips of
    near-equal population (the first ``n % shards`` strips take the
    extra node).  Sorting by position keeps each shard spatially
    compact — minimizing the halo a shard must observe — while the id
    tie-break makes the assignment a pure deterministic function of the
    inputs.
    """
    positions = np.asarray(positions, dtype=float)
    count = positions.shape[0]
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if shards > count:
        raise ValueError(
            f"cannot cut {count} node(s) into {shards} shards"
        )
    order = sorted(
        range(count),
        key=lambda i: (positions[i, 0], positions[i, 1], i),
    )
    owner = [0] * count
    base, extra = divmod(count, shards)
    cursor = 0
    for shard in range(shards):
        width = base + (1 if shard < extra else 0)
        for node in order[cursor : cursor + width]:
            owner[node] = shard
        cursor += width
    return tuple(owner)


@dataclass(frozen=True)
class NetworkPartition:
    """A deterministic shard assignment plus its boundary structure.

    Attributes:
        shards: number of shards.
        owner: ``owner[node]`` = owning shard id.
        owned: per shard, its owned node ids (ascending).
        halo: per shard, the non-owned nodes within communication range
            of at least one owned node (ascending) — the transmitters
            whose packets can reach this shard and the receivers this
            shard's transmissions can reach.
        cut_links: directed links whose endpoints live in different
            shards (boundary traffic a slot barrier must carry).
    """

    shards: int
    owner: Tuple[int, ...]
    owned: Tuple[Tuple[int, ...], ...]
    halo: Tuple[Tuple[int, ...], ...]
    cut_links: int

    @property
    def node_count(self) -> int:
        """Total nodes across all shards."""
        return len(self.owner)

    def halo_fraction(self) -> float:
        """Mean halo size over mean shard size (cut quality measure)."""
        total_owned = sum(len(nodes) for nodes in self.owned)
        total_halo = sum(len(nodes) for nodes in self.halo)
        if total_owned == 0:
            return 0.0
        return total_halo / total_owned


def partition_network(
    network: "WirelessNetwork", shards: int
) -> NetworkPartition:
    """Spatially partition ``network`` into ``shards`` strips with halos."""
    owner = partition_positions(network.positions, shards)
    owned_lists: List[List[int]] = [[] for _ in range(shards)]
    for node, shard in enumerate(owner):
        owned_lists[shard].append(node)
    halo_sets: List[set] = [set() for _ in range(shards)]
    for node in network.nodes():
        shard = owner[node]
        for neighbor in network.neighbors(node):
            if owner[neighbor] != shard:
                halo_sets[shard].add(neighbor)
    cut = sum(1 for (i, j, _p) in network.links() if owner[i] != owner[j])
    return NetworkPartition(
        shards=shards,
        owner=owner,
        owned=tuple(tuple(nodes) for nodes in owned_lists),
        halo=tuple(tuple(sorted(members)) for members in halo_sets),
        cut_links=cut,
    )
