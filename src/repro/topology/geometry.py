"""Planar geometry for node deployments.

Nodes live on a 2-D plane; all distances are Euclidean.  The module keeps
the representation numpy-friendly (an (n, 2) float array of positions)
because distance matrices over hundreds of nodes are on the hot path of
topology generation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Tuple

import numpy as np

from repro.util.validation import check_positive


@dataclass(frozen=True)
class Point:
    """An immutable 2-D point."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def as_array(self) -> np.ndarray:
        """The point as a length-2 float array."""
        return np.array([self.x, self.y], dtype=float)


def positions_array(points: Iterable[Point]) -> np.ndarray:
    """Stack points into an (n, 2) array."""
    data = [(p.x, p.y) for p in points]
    if not data:
        return np.zeros((0, 2), dtype=float)
    return np.array(data, dtype=float)


def pairwise_distances(positions: np.ndarray) -> np.ndarray:
    """Full (n, n) Euclidean distance matrix.

    ``positions`` is an (n, 2) array.  The diagonal is zero.
    """
    positions = np.asarray(positions, dtype=float)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ValueError(f"positions must be (n, 2), got {positions.shape}")
    deltas = positions[:, None, :] - positions[None, :, :]
    return np.sqrt(np.sum(deltas * deltas, axis=-1))


@dataclass(frozen=True)
class DeploymentArea:
    """A rectangular deployment region [0, width] x [0, height]."""

    width: float
    height: float

    def __post_init__(self) -> None:
        check_positive("width", self.width)
        check_positive("height", self.height)

    @property
    def area(self) -> float:
        """Region area in square distance units."""
        return self.width * self.height

    def contains(self, point: Point) -> bool:
        """True if ``point`` lies inside the region (inclusive)."""
        return 0.0 <= point.x <= self.width and 0.0 <= point.y <= self.height

    def sample_points(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` uniform points as an (count, 2) array."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        xs = rng.uniform(0.0, self.width, size=count)
        ys = rng.uniform(0.0, self.height, size=count)
        return np.column_stack([xs, ys])


def area_for_density(
    node_count: int, neighbors_per_node: float, communication_range: float
) -> DeploymentArea:
    """Square deployment area giving the requested average node density.

    The paper deploys 300 nodes "with density 6, i.e., each node has on
    average 5 neighbors within its range".  With uniform placement the
    expected number of nodes inside a range disk is
    ``density = node_count * pi * range^2 / area`` (self included), so the
    side length follows directly.
    """
    check_positive("node_count", node_count)
    check_positive("neighbors_per_node", neighbors_per_node)
    check_positive("communication_range", communication_range)
    density = neighbors_per_node + 1  # disk population counts the node itself
    area = node_count * math.pi * communication_range**2 / density
    side = math.sqrt(area)
    return DeploymentArea(width=side, height=side)


def grid_positions(rows: int, cols: int, spacing: float) -> np.ndarray:
    """Regular grid deployment, useful for deterministic tests."""
    check_positive("rows", rows)
    check_positive("cols", cols)
    check_positive("spacing", spacing)
    points: Tuple[Tuple[float, float], ...] = tuple(
        (c * spacing, r * spacing) for r in range(rows) for c in range(cols)
    )
    return np.array(points, dtype=float)
