"""Random topology generation matching the paper's evaluation setup.

The evaluation deploys "300 randomly deployed nodes with density 6, i.e.,
each node has on average 5 neighbors within its range (defined as the
distance where reception probability is 0.2)".  :func:`random_network`
reproduces this: uniform placement in a square sized for the requested
density, link probabilities drawn from the PHY model for every in-range
ordered pair.

Small deterministic topologies for unit tests and for the paper's Fig. 1
sample live here as well.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.topology.geometry import area_for_density
from repro.topology.graph import DEFAULT_CHANNEL_CAPACITY, Link, WirelessNetwork
from repro.topology.partition import SpatialGrid
from repro.topology.phy import EmpiricalPhyModel, lossy_phy
from repro.util.rng import RngLike, as_rng
from repro.util.validation import check_positive


def random_network(
    node_count: int = 300,
    *,
    neighbors_per_node: float = 5.0,
    phy: Optional[EmpiricalPhyModel] = None,
    capacity: float = DEFAULT_CHANNEL_CAPACITY,
    rng: RngLike = None,
    symmetric: bool = False,
) -> WirelessNetwork:
    """Deploy a random lossy network.

    Args:
        node_count: number of nodes (paper: 300).
        neighbors_per_node: average in-range neighbors (paper: 5, which
            the paper calls "density 6" counting the node itself).
        phy: the PHY model; defaults to the calibrated lossy model.
        capacity: MAC channel capacity in bytes/second.
        rng: seed or generator for placement and probability draws.
        symmetric: draw one probability per node pair instead of one per
            directed link (measured networks are asymmetric; some unit
            tests want symmetry).

    Every ordered in-range pair gets a link with probability drawn from
    the PHY model; beyond-range pairs get none (probability 0).
    """
    check_positive("node_count", node_count)
    generator = as_rng(rng)
    phy_model = phy or lossy_phy(rng=generator)
    base_range = phy_model.params.communication_range
    area = area_for_density(node_count, neighbors_per_node, base_range)
    positions = area.sample_points(node_count, generator)
    probabilities = draw_link_probabilities(
        positions, phy_model, base_range, symmetric=symmetric
    )
    return WirelessNetwork(
        positions, probabilities, base_range, capacity=capacity
    )


def draw_link_probabilities(
    positions: np.ndarray,
    phy: EmpiricalPhyModel,
    communication_range: float,
    *,
    symmetric: bool = False,
) -> Dict[Link, float]:
    """Draw p_ij for every ordered in-range pair from the PHY model.

    The neighborhood relation uses ``communication_range`` (the *base*
    range defining the topology), while probabilities come from the PHY
    model, which may be power-scaled above it — reproducing the paper's
    high-power experiment where the topology stays fixed but link
    qualities rise.

    In-range pairs are enumerated through a :class:`SpatialGrid` bucket
    index — O(n) for bounded-density deployments instead of the former
    dense O(n^2) ``pairwise_distances`` sweep — while preserving the
    exact candidate order (for each ``i``, neighbors ``j`` ascending)
    and bit-identical distance values, so the PHY model's RNG stream is
    consumed identically and seeded topologies are unchanged.
    """
    grid = SpatialGrid(positions, communication_range)
    n = positions.shape[0]
    probabilities: Dict[Link, float] = {}
    for i in range(n):
        neighbor_ids, distances = grid.neighbors_within(i, communication_range)
        # Keep np.float64 spans: the PHY model received dense-matrix
        # entries before, and identical operand types leave no room for
        # representation drift in the drawn probabilities.
        for j, span in zip(neighbor_ids.tolist(), distances):
            if symmetric and (j, i) in probabilities:
                probabilities[(i, j)] = probabilities[(j, i)]
                continue
            prob = phy.link_probability(span)
            if prob > 0.0:
                probabilities[(i, j)] = prob
    return probabilities


def network_from_links(
    link_probabilities: Dict[Link, float],
    *,
    capacity: float = DEFAULT_CHANNEL_CAPACITY,
    positions: Optional[np.ndarray] = None,
    communication_range: float = 1.0,
) -> WirelessNetwork:
    """Build a network from explicit link probabilities (for tests/figures).

    If ``positions`` are omitted the nodes are laid out on a line with
    linked nodes placed within range and unlinked ones beyond it is NOT
    attempted — instead all nodes are placed within one shared range so
    every node pair interferes.  Pass explicit positions when the
    interference structure matters.
    """
    if not link_probabilities:
        raise ValueError("at least one link is required")
    node_count = 1 + max(max(i, j) for (i, j) in link_probabilities)
    if positions is None:
        # Cluster everything inside one range disk: a conservative layout
        # where all transmitters conflict (single collision domain).
        angles = np.linspace(0.0, 2 * np.pi, node_count, endpoint=False)
        radius = communication_range / 4.0
        positions = np.column_stack(
            [radius * np.cos(angles), radius * np.sin(angles)]
        )
    return WirelessNetwork(
        positions, dict(link_probabilities), communication_range, capacity=capacity
    )


def diamond_topology(
    p_su: float = 0.6,
    p_sv: float = 0.5,
    p_ut: float = 0.7,
    p_vt: float = 0.8,
    p_st: float = 0.0,
    *,
    capacity: float = 1e5,
    spaced: bool = True,
) -> WirelessNetwork:
    """The canonical two-relay diamond S -> {u, v} -> T of Sec. 3.2.

    Node ids: S=0, u=1, v=2, T=3.  With ``spaced=True`` the two relays are
    placed out of each other's range (the paper's ``u not in N(v)``
    assumption), so they can transmit simultaneously; S and T are within
    range of both relays.

    ``p_st`` optionally adds a weak direct link S -> T.
    """
    links: Dict[Link, float] = {}
    for (i, j), p in (((0, 1), p_su), ((0, 2), p_sv), ((1, 3), p_ut), ((2, 3), p_vt)):
        if p > 0:
            links[(i, j)] = p
    if p_st > 0:
        links[(0, 3)] = p_st
    communication_range = 1.0
    if spaced:
        # S at origin, T at (1.2, 0), relays above/below the midline at
        # distance > range from each other but <= range from S and T.
        positions = np.array(
            [
                [0.0, 0.0],  # S
                [0.6, 0.75],  # u
                [0.6, -0.75],  # v
                [1.2, 0.0],  # T
            ]
        )
        # |S-u| = |S-v| = 0.96 <= 1, |u-v| = 1.5 > 1, |u-T| = |v-T| = 0.96.
    else:
        positions = np.array([[0.0, 0.0], [0.5, 0.2], [0.5, -0.2], [1.0, 0.0]])
    if p_st > 0 and spaced:
        # Direct S-T distance is 1.2 > range; pull T inside range so the
        # requested direct link is geometrically consistent.
        positions[3] = [0.99, 0.0]
    return WirelessNetwork(positions, links, communication_range, capacity=capacity)


def chain_topology(
    hop_probabilities: Tuple[float, ...],
    *,
    capacity: float = 1e5,
    overhearing: Optional[Dict[Link, float]] = None,
) -> WirelessNetwork:
    """A linear chain 0 -> 1 -> ... -> n with given per-hop probabilities.

    ``overhearing`` adds extra directed links (e.g. two-hop overhearing
    (0, 2): 0.2) — place them only between nodes at most two positions
    apart or the geometry cannot honour them, and a ``ValueError`` is
    raised.
    """
    if not hop_probabilities:
        raise ValueError("need at least one hop")
    node_count = len(hop_probabilities) + 1
    communication_range = 1.0
    spacing = 0.9
    positions = np.column_stack(
        [np.arange(node_count) * spacing * 0.55, np.zeros(node_count)]
    )
    # spacing*0.55 ~= 0.495: adjacent and two-apart nodes are in range
    # (0.99 <= 1), three-apart are out of range.
    links: Dict[Link, float] = {}
    for index, p in enumerate(hop_probabilities):
        if not 0 < p <= 1:
            raise ValueError(f"hop probability must be in (0,1], got {p}")
        links[(index, index + 1)] = p
    if overhearing:
        for (i, j), p in overhearing.items():
            if abs(i - j) > 2:
                raise ValueError(
                    f"overhearing link ({i},{j}) spans more than two hops"
                )
            if not 0 < p <= 1:
                raise ValueError(f"link probability must be in (0,1], got {p}")
            links[(i, j)] = p
    return WirelessNetwork(positions, links, communication_range, capacity=capacity)


def fig1_sample_topology(*, capacity: float = 1e5) -> WirelessNetwork:
    """The small sample topology used for the paper's Fig. 1 convergence plot.

    The paper does not print the exact graph; it describes "the sample
    topology" with capacity 10^5 bytes/second and tagged reception
    probabilities, and shows five broadcast-rate curves.  We use a
    two-relay diamond augmented with a cross-relay and a weak direct
    link — five transmitting-capable nodes, mixed link qualities — which
    exhibits the same qualitative convergence behaviour.
    """
    links: Dict[Link, float] = {
        (0, 1): 0.8,   # S -> u1
        (0, 2): 0.5,   # S -> u2
        (0, 3): 0.3,   # S -> u3
        (1, 4): 0.6,   # u1 -> w
        (2, 4): 0.7,   # u2 -> w
        (1, 5): 0.4,   # u1 -> T
        (2, 5): 0.5,   # u2 -> T
        (3, 5): 0.9,   # u3 -> T
        (4, 5): 0.75,  # w  -> T
    }
    positions = np.array(
        [
            [0.0, 0.0],     # 0 S
            [0.9, 0.5],     # 1 u1
            [0.9, -0.4],    # 2 u2
            [0.85, -0.9],   # 3 u3
            [1.7, 0.0],     # 4 w
            [1.9, -0.2],    # 5 T
        ]
    )
    return WirelessNetwork(positions, links, 1.3, capacity=capacity)
