"""Execution policy, cache resolution, and the top-level job driver.

:func:`execute_jobs` is the engine's single entry point: it resolves
cache hits, runs the remaining jobs serially (``jobs=1``) or on a
:class:`~repro.exec.pool.WorkerPool`, writes fresh results back to the
cache, and reports structured progress through the :mod:`repro.obs`
layer (``exec.*`` counters plus ``exec.job`` trace events).

Because every job derives its own randomness from its payload and
outcomes are ordered by submission index, the serial and parallel paths
produce bit-identical values — the engine only changes *when* work
happens, never *what* it computes.
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro import obs
from repro.exec.cache import ResultCache
from repro.exec.job import JobFailure, JobOutcome, JobResult, JobSpec
from repro.exec.pool import WorkerPool, run_serial

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ExecutionPolicy",
    "add_execution_arguments",
    "execute_jobs",
    "policy_from_args",
]

#: Where ``--resume`` keeps results when no ``--cache-dir`` is given.
DEFAULT_CACHE_DIR = ".omnc-cache"


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a batch of jobs is executed.

    Attributes:
        jobs: worker processes; 1 runs in-process with no pool.
        cache_dir: directory of the content-addressed result cache;
            ``None`` disables caching entirely.
        resume: when a cache is configured, whether previously stored
            results are *read* (fresh results are always written).
            ``False`` forces recomputation while still recording.
        job_timeout: per-job wall-clock budget in seconds (enforced only
            with ``jobs > 1`` — killing an in-process job is not
            possible); ``None`` disables the timeout.
        retries: extra attempts granted to jobs that time out or crash
            their worker; exceptions are deterministic and never
            retried.
        start_method: multiprocessing start method override (``fork`` /
            ``spawn`` / ``forkserver``); ``None`` picks ``fork`` where
            available.
    """

    jobs: int = 1
    cache_dir: Optional[str] = None
    resume: bool = True
    job_timeout: Optional[float] = None
    retries: int = 1
    start_method: Optional[str] = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise ValueError(
                f"job_timeout must be > 0, got {self.job_timeout}"
            )
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")

    @property
    def parallel(self) -> bool:
        """True when a worker pool will be used."""
        return self.jobs > 1


def execute_jobs(
    specs: Sequence[JobSpec],
    policy: Optional[ExecutionPolicy] = None,
    *,
    registry: Optional[obs.MetricsRegistry] = None,
    tracer: Optional[obs.EventTracer] = None,
) -> List[JobOutcome]:
    """Execute ``specs`` under ``policy``; outcomes in submission order.

    Failures are recorded, not raised: callers decide whether a
    :class:`~repro.exec.job.JobFailure` is fatal.  Progress lands in the
    resolved metrics registry (``exec.jobs_completed`` /
    ``exec.jobs_failed`` / ``exec.cache_hits`` / ``exec.cache_misses``)
    and, when a tracer is supplied, as one ``exec.job`` event per
    outcome.
    """
    policy = policy or ExecutionPolicy()
    metrics = obs.resolve(registry)
    events = obs.resolve_tracer(tracer)
    completed = metrics.counter("exec.jobs_completed", "jobs that produced a value")
    failed = metrics.counter("exec.jobs_failed", "jobs that exhausted every attempt")
    hits = metrics.counter("exec.cache_hits", "jobs satisfied from the result cache")
    misses = metrics.counter("exec.cache_misses", "jobs that had to execute")
    cache = ResultCache(policy.cache_dir) if policy.cache_dir else None

    outcomes: dict[int, JobOutcome] = {}
    remaining: List[tuple[int, JobSpec]] = []
    for index, spec in enumerate(specs):
        if cache is not None and policy.resume:
            hit, value = cache.get(spec.key)
            if hit:
                outcome: JobOutcome = JobResult(
                    key=spec.key,
                    value=value,
                    attempts=0,
                    wall_seconds=0.0,
                    cached=True,
                )
                outcomes[index] = outcome
                hits.inc()
                completed.inc()
                events.emit(
                    "exec.job", key=spec.key, status="cached", attempts=0
                )
                continue
            misses.inc()
        remaining.append((index, spec))

    if remaining:
        def record(spec: JobSpec, outcome: JobOutcome) -> None:
            if isinstance(outcome, JobResult):
                completed.inc()
                if cache is not None:
                    cache.put(spec.key, outcome.value)
                events.emit(
                    "exec.job",
                    key=spec.key,
                    status="ok",
                    attempts=outcome.attempts,
                    wall_seconds=outcome.wall_seconds,
                )
            else:
                failed.inc()
                events.emit(
                    "exec.job",
                    key=spec.key,
                    status=outcome.kind,
                    attempts=outcome.attempts,
                    error=outcome.error,
                )

        batch = [spec for _, spec in remaining]
        if policy.parallel:
            pool = WorkerPool(
                policy.jobs,
                job_timeout=policy.job_timeout,
                retries=policy.retries,
                start_method=policy.start_method,
            )
            fresh = pool.run(batch, on_outcome=record)
        else:
            fresh = run_serial(batch, on_outcome=record)
        for (index, _), outcome in zip(remaining, fresh):
            outcomes[index] = outcome
    return [outcomes[index] for index in range(len(specs))]


def add_execution_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the engine's shared CLI flags to ``parser``.

    The flags map onto :class:`ExecutionPolicy` via
    :func:`policy_from_args`; every campaign-shaped command exposes
    them.
    """
    group = parser.add_argument_group("execution")
    group.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for campaign jobs (default 1 = serial; "
        "results are bit-identical at any worker count)",
    )
    group.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed result cache; completed jobs are stored "
        "here and reused on the next run",
    )
    group.add_argument(
        "--resume",
        action="store_true",
        help="resume from cached results (uses "
        f"{DEFAULT_CACHE_DIR!r} when --cache-dir is not given)",
    )
    group.add_argument(
        "--fresh",
        action="store_true",
        help="ignore existing cache entries (still records new results)",
    )
    group.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job wall-clock budget; overdue jobs are killed, "
        "retried, then recorded as failures (requires --jobs > 1)",
    )
    group.add_argument(
        "--job-retries",
        type=int,
        default=1,
        metavar="N",
        help="extra attempts for jobs that time out or crash "
        "(default 1; exceptions are never retried)",
    )
    group.add_argument(
        "--gf-backend",
        default=None,
        metavar="NAME",
        help="GF(2^8) codec backend for this run ('numpy', 'nibble', "
        "'native', 'numba', or 'best'; default: numpy reference, or "
        "the OMNC_GF_BACKEND environment variable)",
    )


def apply_gf_backend(name: "str | None") -> None:
    """Select the GF(2^8) codec backend ``name`` process-wide (no-op on
    ``None``).

    The selection is exported through ``OMNC_GF_BACKEND`` so campaign
    worker processes inherit it; results are bit-identical across
    backends regardless (CI enforces equivalence), so this never
    changes campaign digests.  Exits with an argparse-style error when
    the name is unknown or unavailable on this machine.
    """
    if name is None:
        return
    from repro.coding.backends import select_backend

    try:
        select_backend(name, export=True)
    except KeyError as exc:
        raise SystemExit(f"error: --gf-backend: {exc.args[0]}") from exc


def policy_from_args(args: argparse.Namespace) -> ExecutionPolicy:
    """Build the :class:`ExecutionPolicy` the parsed CLI flags describe.

    Also applies cross-cutting execution selections carried by the same
    flag group (currently ``--gf-backend``).
    """
    apply_gf_backend(getattr(args, "gf_backend", None))
    cache_dir = args.cache_dir
    if args.resume and cache_dir is None:
        cache_dir = DEFAULT_CACHE_DIR
    return ExecutionPolicy(
        jobs=args.jobs,
        cache_dir=cache_dir,
        resume=not args.fresh,
        job_timeout=args.job_timeout,
        retries=args.job_retries,
    )
