"""Job identity and outcome types of the execution engine.

A *job* is one picklable unit of work: a module-level callable plus a
picklable payload, identified by a stable content hash.  The hash is the
job's identity everywhere — it keys the on-disk result cache, names the
job in progress events, and lets a re-run recognise work that is already
done regardless of worker count or scheduling order.

Outcomes are values, never exceptions: a job that raises, times out or
kills its worker becomes a recorded :class:`JobFailure` so one bad job
cannot abort a campaign of thousands.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence, Union

__all__ = [
    "JobFailure",
    "JobOutcome",
    "JobResult",
    "JobSpec",
    "stable_hash",
]


def _jsonable(value: object) -> object:
    """Canonical JSON-compatible form of ``value`` (recursive).

    Dataclasses render to sorted field dicts, mappings to sorted-key
    dicts, and sequences to lists, so equal payloads always hash equal.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonable(dataclasses.asdict(value))
    if isinstance(value, Mapping):
        return {str(key): _jsonable(item) for key, item in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(
        f"cannot canonicalise {type(value).__name__!r} for hashing; "
        "job payloads must be built from dataclasses, mappings, "
        "sequences and scalars"
    )


def stable_hash(payload: object) -> str:
    """Content hash of a JSON-able payload: canonical form, sha256 hex.

    Stable across processes, interpreter runs and machines — the
    property the result cache and the resume path rely on.
    """
    canonical = json.dumps(
        _jsonable(payload), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class JobSpec:
    """One schedulable unit of work.

    Attributes:
        key: stable content hash identifying the job (see
            :func:`stable_hash`); equal keys mean interchangeable
            results, which is what makes caching and resume sound.
        fn: a **module-level** callable (pickled by reference, so it
            must be importable in a worker process) taking ``payload``.
        payload: the picklable argument handed to ``fn``.
    """

    key: str
    fn: Callable[[Any], Any]
    payload: Any

    def __post_init__(self) -> None:
        if not self.key:
            raise ValueError("job key must be non-empty")
        if not callable(self.fn):
            raise TypeError("job fn must be callable")


@dataclass(frozen=True)
class JobResult:
    """A job that produced a value.

    ``attempts`` is 0 for cache hits (no execution happened this run);
    ``wall_seconds`` is host time and therefore excluded from any
    determinism comparison.
    """

    key: str
    value: Any
    attempts: int
    wall_seconds: float
    cached: bool = False


@dataclass(frozen=True)
class JobFailure:
    """A job that did not produce a value, after all allowed attempts.

    Attributes:
        kind: ``"exception"`` (the job raised — deterministic, never
            retried), ``"timeout"`` (exceeded the per-job budget) or
            ``"crash"`` (the worker process died under it).
        error: exception type name, or the kind for non-exception
            failures.
        message: human-readable description.
        traceback: the worker-side traceback for exceptions, else "".
        attempts: attempts consumed before giving up.
    """

    key: str
    kind: str
    error: str
    message: str
    traceback: str
    attempts: int


JobOutcome = Union[JobResult, JobFailure]


def outcomes_ok(outcomes: Sequence[JobOutcome]) -> bool:
    """True when every outcome is a :class:`JobResult`."""
    return all(isinstance(outcome, JobResult) for outcome in outcomes)
