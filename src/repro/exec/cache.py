"""Content-addressed on-disk result cache.

Results are stored one file per job under ``<root>/<key[:2]>/<key>.pkl``
— the two-character fan-out keeps directories small at paper scale
(300+ sessions per campaign, many campaigns per sweep).  Writes are
atomic (temp file + ``os.replace``), so a campaign killed mid-write
never leaves a truncated entry behind: the next run sees either a
complete result or a miss.

Because keys are *content* hashes of the job payload (see
:func:`repro.exec.job.stable_hash`), resume-after-interruption and
incremental re-runs fall out for free: re-submitting the same campaign
skips every job already on disk, and changing one sweep knob only
invalidates the jobs whose payload actually changed.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import Any, Iterator, Tuple, Union

__all__ = ["CACHE_SCHEMA", "ResultCache"]

#: Bump when the stored document shape (or the meaning of cached values)
#: changes; mismatched entries read as misses and are overwritten.
CACHE_SCHEMA = 1


class ResultCache:
    """Pickle-backed store mapping job keys to result values."""

    def __init__(self, root: Union[str, Path]) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)

    @property
    def root(self) -> Path:
        """The cache directory."""
        return self._root

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (existing or not)."""
        if not key or any(ch in key for ch in "/\\"):
            raise ValueError(f"invalid cache key {key!r}")
        return self._root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Tuple[bool, Any]:
        """``(True, value)`` on a hit, ``(False, None)`` on a miss.

        Corrupt or schema-mismatched entries count as misses (and
        corrupt files are removed so the slot heals on the next put).
        """
        path = self.path_for(key)
        try:
            blob = path.read_bytes()
        except OSError:
            return False, None
        try:
            document = pickle.loads(blob)
        except Exception:
            path.unlink(missing_ok=True)
            return False, None
        if (
            not isinstance(document, dict)
            or document.get("schema") != CACHE_SCHEMA
            or document.get("key") != key
        ):
            return False, None
        return True, document.get("value")

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` atomically."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {"schema": CACHE_SCHEMA, "key": key, "value": value}
        temporary = path.parent / f".{key}.{os.getpid()}.tmp"
        temporary.write_bytes(pickle.dumps(document, protocol=4))
        os.replace(temporary, path)

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def keys(self) -> Iterator[str]:
        """All stored job keys (arbitrary order)."""
        for entry in sorted(self._root.glob("*/*.pkl")):
            yield entry.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def clear(self) -> int:
        """Drop every entry; returns how many were removed."""
        removed = 0
        for entry in sorted(self._root.glob("*/*.pkl")):
            entry.unlink(missing_ok=True)
            removed += 1
        return removed
