"""Crash-isolated worker pool with per-job timeouts and bounded retry.

``multiprocessing.Pool`` cannot kill a hung task or survive a worker
that dies mid-job, so the pool here is built directly on processes and
pipes: the parent assigns one job to one worker at a time and therefore
always knows which job a dead or overdue worker was holding.  That is
what turns the three failure modes into recorded outcomes instead of a
dead campaign:

* a job that **raises** reports the exception back and the worker keeps
  going — deterministic failures are never retried;
* a job that **exceeds the timeout** gets its worker terminated and
  replaced; the job is retried up to the retry budget, then recorded as
  a ``timeout`` failure;
* a worker that **crashes** (segfault, ``os._exit``, OOM-kill) is
  detected by pipe hangup and replaced the same way, with the job it
  held retried, then recorded as a ``crash`` failure.

Scheduling order never leaks into results: outcomes are keyed by
submission index and returned in submission order, and jobs carry their
own RNG derivations, so a pool run is bit-identical to a serial loop.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import Connection, wait as _wait_connections
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.exec.job import JobFailure, JobOutcome, JobResult, JobSpec

__all__ = [
    "PersistentWorkerGroup",
    "WorkerCallError",
    "WorkerPool",
    "run_serial",
]

#: Poll granularity (seconds) when no per-job timeout bounds the wait.
_IDLE_TICK = 1.0
#: Grace period for process joins during shutdown/replacement.
_JOIN_GRACE = 5.0

OutcomeCallback = Callable[[JobSpec, JobOutcome], None]


def _worker_main(conn: Connection) -> None:
    """Worker loop: receive ``(index, fn, payload)``, send outcomes.

    Runs until the parent sends ``None`` or the pipe closes.  Exceptions
    from the job are reported as data; ``SystemExit``/``os._exit`` and
    real crashes surface to the parent as a pipe hangup.
    """
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        index, fn, payload = message
        try:
            value = fn(payload)
        except Exception as error:
            conn.send(
                (
                    index,
                    "error",
                    (type(error).__name__, str(error), traceback.format_exc()),
                )
            )
        else:
            conn.send((index, "ok", value))
    conn.close()


def run_serial(
    specs: Sequence[JobSpec],
    *,
    on_outcome: Optional[OutcomeCallback] = None,
) -> List[JobOutcome]:
    """Execute ``specs`` in-process, in order — the ``jobs=1`` path.

    Semantically identical to a one-worker pool minus process isolation:
    exceptions become ``exception`` failures, but timeouts and crash
    containment need real worker processes.
    """
    outcomes: List[JobOutcome] = []
    for spec in specs:
        started = time.perf_counter()
        try:
            value = spec.fn(spec.payload)
        except Exception as error:
            outcome: JobOutcome = JobFailure(
                key=spec.key,
                kind="exception",
                error=type(error).__name__,
                message=str(error),
                traceback=traceback.format_exc(),
                attempts=1,
            )
        else:
            outcome = JobResult(
                key=spec.key,
                value=value,
                attempts=1,
                wall_seconds=time.perf_counter() - started,
            )
        outcomes.append(outcome)
        if on_outcome is not None:
            on_outcome(spec, outcome)
    return outcomes


def _persistent_worker_main(
    conn: Connection, factory: Callable[[Any], Any], payload: Any
) -> None:
    """Stateful worker loop: build state once, dispatch method calls.

    Unlike :func:`_worker_main` (one self-contained job per message),
    this loop holds ``factory(payload)`` alive across messages — the
    substrate for shard workers that keep per-node runtimes, RNG streams
    and neighbor structures warm between slot barriers.  Each message is
    ``(method, argument)``; the reply is ``("ok", value)`` or
    ``("error", (type, message, traceback))``.  Crashes surface to the
    parent as a pipe hangup, exactly like the stateless pool.
    """
    try:
        state = factory(payload)
    except Exception as error:
        conn.send(
            ("error", (type(error).__name__, str(error), traceback.format_exc()))
        )
        conn.close()
        return
    conn.send(("ok", None))
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        method, argument = message
        try:
            value = getattr(state, method)(argument)
        except Exception as error:
            conn.send(
                (
                    "error",
                    (type(error).__name__, str(error), traceback.format_exc()),
                )
            )
        else:
            conn.send(("ok", value))
    conn.close()


class WorkerCallError(RuntimeError):
    """A persistent worker raised (or died) while serving a call."""

    def __init__(self, worker: int, method: str, detail: str) -> None:
        super().__init__(
            f"persistent worker {worker} failed during {method!r}: {detail}"
        )
        self.worker = worker
        self.method = method
        self.detail = detail


class PersistentWorkerGroup:
    """Long-lived stateful workers driven by method-dispatch calls.

    Built by :meth:`WorkerPool.persistent`.  Where the pool assigns one
    self-contained :class:`JobSpec` per message, the group initializes
    each worker once with ``factory(payload)`` and then exchanges small
    per-call messages against that warm state — the execution shape of
    the sharded slot loop, whose per-slot barrier traffic (lottery keys,
    boundary offers) is tiny next to the runtimes and neighbor
    structures that stay resident in the worker.

    Failure model: a worker that raises reports the exception (raised
    here as :class:`WorkerCallError`); a worker that dies is detected by
    pipe hangup and also raised — there is no retry, because shard state
    is stateful and cannot be re-run from a message.
    """

    def __init__(
        self,
        factory: Callable[[Any], Any],
        payloads: Sequence[Any],
        *,
        ctx: Any,
    ) -> None:
        if not payloads:
            raise ValueError("at least one worker payload is required")
        self._procs: List[Any] = []
        self._conns: List[Connection] = []
        self._closed = False
        try:
            for payload in payloads:
                parent_conn, child_conn = ctx.Pipe()
                process = ctx.Process(
                    target=_persistent_worker_main,
                    args=(child_conn, factory, payload),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._procs.append(process)
                self._conns.append(parent_conn)
            # Collect the init acks up front so a factory that raises
            # fails construction, not the first call.
            for index in range(len(self._conns)):
                self._receive(index, "__init__")
        except BaseException:
            self.close()
            raise

    @property
    def size(self) -> int:
        """Number of live workers."""
        return len(self._procs)

    def call_all(
        self, method: str, arguments: Optional[Sequence[Any]] = None
    ) -> List[Any]:
        """Invoke ``method`` on every worker; results in worker order.

        ``arguments[i]`` goes to worker ``i`` (``None`` broadcasts
        ``None`` to all).  All requests are written before any reply is
        awaited, so workers execute the phase concurrently — one
        pipelined barrier round-trip.
        """
        if self._closed:
            raise RuntimeError("worker group is closed")
        if arguments is None:
            arguments = [None] * self.size
        if len(arguments) != self.size:
            raise ValueError(
                f"expected {self.size} argument(s), got {len(arguments)}"
            )
        for conn, argument in zip(self._conns, arguments):
            conn.send((method, argument))
        return [self._receive(index, method) for index in range(self.size)]

    def call_one(self, worker: int, method: str, argument: Any = None) -> Any:
        """Invoke ``method`` on one worker and await its reply."""
        if self._closed:
            raise RuntimeError("worker group is closed")
        self._conns[worker].send((method, argument))
        return self._receive(worker, method)

    def _receive(self, worker: int, method: str) -> Any:
        try:
            status, data = self._conns[worker].recv()
        except (EOFError, OSError):
            exitcode = self._procs[worker].exitcode
            raise WorkerCallError(
                worker, method, f"worker process died (exit code {exitcode})"
            ) from None
        if status == "error":
            error, message, trace = data
            raise WorkerCallError(
                worker, method, f"{error}: {message}\n{trace}"
            )
        return data

    def close(self) -> None:
        """Shut every worker down; idempotent."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for process in self._procs:
            process.join(_JOIN_GRACE)
            if process.is_alive():
                process.terminate()
                process.join(_JOIN_GRACE)
            if process.is_alive():  # pragma: no cover - hard stragglers
                process.kill()
                process.join(_JOIN_GRACE)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    def __enter__(self) -> "PersistentWorkerGroup":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()


@dataclass
class _Worker:
    """One worker process and the job (if any) it currently holds."""

    process: Any  # multiprocessing.Process (context-specific class)
    conn: Connection
    index: Optional[int] = None  # submission index of the assigned job
    attempt: int = 0
    started: float = 0.0  # monotonic assignment time

    @property
    def busy(self) -> bool:
        return self.index is not None


class WorkerPool:
    """Fixed-size process pool executing :class:`JobSpec` batches."""

    def __init__(
        self,
        workers: int,
        *,
        job_timeout: Optional[float] = None,
        retries: int = 1,
        start_method: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if job_timeout is not None and job_timeout <= 0:
            raise ValueError(f"job_timeout must be > 0, got {job_timeout}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if start_method is None:
            # fork is dramatically cheaper when available (no re-import of
            # numpy/scipy per worker); spawn is the portable fallback.
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._workers = workers
        self._job_timeout = job_timeout
        self._retries = retries
        self._ctx = multiprocessing.get_context(start_method)

    @property
    def workers(self) -> int:
        """Configured worker count."""
        return self._workers

    def persistent(
        self, factory: Callable[[Any], Any], payloads: Sequence[Any]
    ) -> PersistentWorkerGroup:
        """Spawn long-lived stateful workers sharing this pool's context.

        One worker per payload; each holds ``factory(payload)`` alive
        across calls.  Used by the sharded emulator to keep shard state
        (runtimes, RNG streams, neighbor structures) resident between
        slot barriers instead of shipping it with every job.
        """
        return PersistentWorkerGroup(factory, payloads, ctx=self._ctx)

    def run(
        self,
        jobs: Sequence[JobSpec],
        *,
        on_outcome: Optional[OutcomeCallback] = None,
    ) -> List[JobOutcome]:
        """Execute every job; outcomes in submission order.

        ``on_outcome`` fires in *completion* order (progress reporting);
        the returned list is always in submission order regardless of
        scheduling.
        """
        specs = list(jobs)
        if not specs:
            return []
        outcomes: Dict[int, JobOutcome] = {}
        # (submission index, attempt number) — attempt counts from 1.
        pending: Deque[Tuple[int, int]] = deque(
            (index, 1) for index in range(len(specs))
        )
        crew: List[_Worker] = [
            self._spawn() for _ in range(min(self._workers, len(specs)))
        ]
        try:
            while len(outcomes) < len(specs):
                self._assign(crew, pending, specs)
                busy = [worker for worker in crew if worker.busy]
                if not busy:  # pragma: no cover - defensive
                    raise RuntimeError("pool stalled with work outstanding")
                ready = set(
                    _wait_connections(
                        [worker.conn for worker in busy],
                        self._wait_timeout(busy),
                    )
                )
                for position, worker in enumerate(crew):
                    if worker.busy and worker.conn in ready:
                        self._collect(
                            position, crew, specs, pending, outcomes, on_outcome
                        )
                self._expire_overdue(crew, specs, pending, outcomes, on_outcome)
        finally:
            self._shutdown(crew)
        return [outcomes[index] for index in range(len(specs))]

    # -- internals ---------------------------------------------------------

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        process.start()
        child_conn.close()
        return _Worker(process=process, conn=parent_conn)

    def _assign(
        self,
        crew: List[_Worker],
        pending: Deque[Tuple[int, int]],
        specs: List[JobSpec],
    ) -> None:
        for worker in crew:
            if not pending:
                break
            if worker.busy:
                continue
            index, attempt = pending.popleft()
            spec = specs[index]
            worker.index = index
            worker.attempt = attempt
            worker.started = time.monotonic()
            worker.conn.send((index, spec.fn, spec.payload))

    def _wait_timeout(self, busy: Sequence[_Worker]) -> float:
        if self._job_timeout is None:
            return _IDLE_TICK
        now = time.monotonic()
        remaining = min(
            worker.started + self._job_timeout - now for worker in busy
        )
        return max(min(remaining, _IDLE_TICK), 0.01)

    def _collect(
        self,
        position: int,
        crew: List[_Worker],
        specs: List[JobSpec],
        pending: Deque[Tuple[int, int]],
        outcomes: Dict[int, JobOutcome],
        on_outcome: Optional[OutcomeCallback],
    ) -> None:
        worker = crew[position]
        assert worker.index is not None
        index, attempt = worker.index, worker.attempt
        spec = specs[index]
        try:
            reported_index, status, data = worker.conn.recv()
        except (EOFError, OSError):
            # The worker died under this job: replace it, retry the job.
            self._dispose(worker)
            crew[position] = self._spawn()
            self._record_attempt_failure(
                spec,
                index,
                attempt,
                kind="crash",
                message=(
                    f"worker process died (exit code "
                    f"{worker.process.exitcode}) while running the job"
                ),
                pending=pending,
                outcomes=outcomes,
                on_outcome=on_outcome,
            )
            return
        assert reported_index == index
        elapsed = time.monotonic() - worker.started
        worker.index = None
        if status == "ok":
            outcome: JobOutcome = JobResult(
                key=spec.key,
                value=data,
                attempts=attempt,
                wall_seconds=elapsed,
            )
        else:
            error, message, trace = data
            # Exceptions are deterministic given the payload: retrying
            # would reproduce them, so they consume no retry budget.
            outcome = JobFailure(
                key=spec.key,
                kind="exception",
                error=error,
                message=message,
                traceback=trace,
                attempts=attempt,
            )
        outcomes[index] = outcome
        if on_outcome is not None:
            on_outcome(spec, outcome)

    def _expire_overdue(
        self,
        crew: List[_Worker],
        specs: List[JobSpec],
        pending: Deque[Tuple[int, int]],
        outcomes: Dict[int, JobOutcome],
        on_outcome: Optional[OutcomeCallback],
    ) -> None:
        if self._job_timeout is None:
            return
        now = time.monotonic()
        for position, worker in enumerate(crew):
            if not worker.busy or now - worker.started <= self._job_timeout:
                continue
            if worker.conn.poll(0):
                # Finished just after the wait returned — collect, don't kill.
                self._collect(
                    position, crew, specs, pending, outcomes, on_outcome
                )
                continue
            assert worker.index is not None
            index, attempt = worker.index, worker.attempt
            self._dispose(worker)
            crew[position] = self._spawn()
            self._record_attempt_failure(
                specs[index],
                index,
                attempt,
                kind="timeout",
                message=(
                    f"job exceeded the per-job timeout of "
                    f"{self._job_timeout:g}s (attempt {attempt})"
                ),
                pending=pending,
                outcomes=outcomes,
                on_outcome=on_outcome,
            )

    def _record_attempt_failure(
        self,
        spec: JobSpec,
        index: int,
        attempt: int,
        *,
        kind: str,
        message: str,
        pending: Deque[Tuple[int, int]],
        outcomes: Dict[int, JobOutcome],
        on_outcome: Optional[OutcomeCallback],
    ) -> None:
        """Retry a crashed/overdue job, or record its final failure."""
        if attempt <= self._retries:
            pending.appendleft((index, attempt + 1))
            return
        outcome = JobFailure(
            key=spec.key,
            kind=kind,
            error=kind,
            message=message,
            traceback="",
            attempts=attempt,
        )
        outcomes[index] = outcome
        if on_outcome is not None:
            on_outcome(spec, outcome)

    def _dispose(self, worker: _Worker) -> None:
        """Forcefully stop one worker and release its pipe."""
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(_JOIN_GRACE)
        if worker.process.is_alive():  # pragma: no cover - hard stragglers
            worker.process.kill()
            worker.process.join(_JOIN_GRACE)
        worker.conn.close()

    def _shutdown(self, crew: List[_Worker]) -> None:
        for worker in crew:
            if worker.process.is_alive() and not worker.busy:
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
        for worker in crew:
            worker.process.join(0.5 if worker.busy else _JOIN_GRACE)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(_JOIN_GRACE)
            if worker.process.is_alive():  # pragma: no cover
                worker.process.kill()
                worker.process.join(_JOIN_GRACE)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
