"""Deterministic parallel execution engine.

The engine turns campaign-shaped work (many independent jobs, each a
pure function of a picklable payload) into something that runs as fast
as the hardware allows without giving up reproducibility:

* :mod:`repro.exec.job` — content-hashed :class:`JobSpec` identity plus
  value-style outcomes (:class:`JobResult` / :class:`JobFailure`);
* :mod:`repro.exec.cache` — content-addressed on-disk
  :class:`ResultCache` giving free resume and incremental re-runs;
* :mod:`repro.exec.pool` — a crash-isolated :class:`WorkerPool` with
  per-job timeouts and bounded retry;
* :mod:`repro.exec.engine` — :class:`ExecutionPolicy`,
  :func:`execute_jobs`, and the shared CLI flags.

The determinism contract: a job's randomness derives from its payload
(never from shared mutable streams), so ``jobs=1`` and ``jobs=N``
produce bit-identical values in the same submission order.  The
experiment layer (:mod:`repro.experiments.common`) is built on exactly
that contract.
"""

from repro.exec.cache import CACHE_SCHEMA, ResultCache
from repro.exec.engine import (
    DEFAULT_CACHE_DIR,
    ExecutionPolicy,
    add_execution_arguments,
    apply_gf_backend,
    execute_jobs,
    policy_from_args,
)
from repro.exec.job import (
    JobFailure,
    JobOutcome,
    JobResult,
    JobSpec,
    stable_hash,
)
from repro.exec.pool import (
    PersistentWorkerGroup,
    WorkerCallError,
    WorkerPool,
    run_serial,
)

__all__ = [
    "CACHE_SCHEMA",
    "DEFAULT_CACHE_DIR",
    "ExecutionPolicy",
    "JobFailure",
    "JobOutcome",
    "JobResult",
    "JobSpec",
    "PersistentWorkerGroup",
    "ResultCache",
    "WorkerCallError",
    "WorkerPool",
    "add_execution_arguments",
    "apply_gf_backend",
    "execute_jobs",
    "policy_from_args",
    "run_serial",
    "stable_hash",
]
