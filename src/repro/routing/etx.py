"""The ETX (expected transmission count) metric of Couto et al. [9].

For a link (i, j) with one-way reception probability ``p_ij`` the paper
uses ``ETX_ij = 1 / p_ij`` — the expected number of transmissions to get
one packet across under MAC retransmissions.  A path metric is the sum of
its link ETX values.

Deployed systems *measure* p_ij by broadcasting probe packets and taking
"the ratio of correctly received packets over the number that are sent".
:class:`LinkProbeEstimator` reproduces that measurement process against
the ground-truth network so that protocols can optionally run on measured
rather than oracle qualities (the paper assumes link qualities are stable
over the session; Sec. 4).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.topology.graph import Link, WirelessNetwork
from repro.util.rng import RngLike, as_rng
from repro.util.validation import check_positive


def link_etx(probability: float) -> float:
    """ETX of a single link: ``1 / p``; infinite for a dead link."""
    if probability < 0 or probability > 1:
        raise ValueError(f"probability must be in [0, 1], got {probability}")
    if probability == 0:
        return float("inf")
    return 1.0 / probability


def path_etx(network: WirelessNetwork, path: Tuple[int, ...]) -> float:
    """Sum of link ETX values along ``path`` (a node sequence)."""
    if len(path) < 2:
        return 0.0
    total = 0.0
    for i, j in zip(path, path[1:]):
        p = network.probability(i, j)
        if p == 0:
            return float("inf")
        total += 1.0 / p
    return total


def etx_weights(network: WirelessNetwork) -> Dict[Link, float]:
    """ETX weight for every directed link of ``network``."""
    return {(i, j): 1.0 / p for i, j, p in network.links()}


class LinkProbeEstimator:
    """Probe-based measurement of link reception probabilities.

    Every node broadcasts ``probe_count`` probes; each in-range receiver
    counts successes and estimates ``p_hat = received / sent``.  A link
    whose estimate is zero (all probes lost) is treated as absent — real
    protocols cannot use a link they never observed.
    """

    def __init__(
        self,
        network: WirelessNetwork,
        *,
        probe_count: int = 100,
        rng: RngLike = None,
    ) -> None:
        if probe_count <= 0:
            raise ValueError(f"probe_count must be > 0, got {probe_count}")
        self._network = network
        self._probe_count = probe_count
        self._rng = as_rng(rng)
        self._estimates: Optional[Dict[Link, float]] = None

    @property
    def probe_count(self) -> int:
        """Probes broadcast per node."""
        return self._probe_count

    def measure(self) -> Dict[Link, float]:
        """Run the probing round once and cache the estimates."""
        if self._estimates is None:
            estimates: Dict[Link, float] = {}
            for i, j, p in self._network.links():
                received = self._rng.binomial(self._probe_count, p)
                if received > 0:
                    estimates[(i, j)] = received / self._probe_count
            self._estimates = estimates
        return dict(self._estimates)

    def estimated_probability(self, i: int, j: int) -> float:
        """Measured p_hat for link (i, j); 0 if never observed."""
        return self.measure().get((i, j), 0.0)

    def estimated_etx(self, i: int, j: int) -> float:
        """Measured ETX for link (i, j)."""
        return link_etx(self.estimated_probability(i, j))

    def max_absolute_error(self) -> float:
        """Largest |p_hat - p| over observed links — probing accuracy."""
        errors = [
            abs(p_hat - self._network.probability(i, j))
            for (i, j), p_hat in self.measure().items()
        ]
        return max(errors) if errors else 0.0


def expected_probe_error(probability: float, probe_count: int) -> float:
    """Standard error of the probe estimator: sqrt(p(1-p)/k).

    Useful for sizing ``probe_count`` in experiments; the paper's stable
    link assumption means one probing round per session suffices.
    """
    check_positive("probe_count", probe_count)
    if not 0 <= probability <= 1:
        raise ValueError(f"probability must be in [0,1], got {probability}")
    return float(np.sqrt(probability * (1 - probability) / probe_count))
