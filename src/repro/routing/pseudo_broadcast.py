"""Pseudo-broadcast (Katti et al., "XORs in the Air").

802.11 broadcast frames are unacknowledged and hence unreliable; the
pseudo-broadcast trick sends a *unicast* frame (which is MAC-acked and
retransmitted) to one designated neighbor while all other neighbors pick
the packet up in promiscuous mode.  The paper uses it during node
selection "to obtain deterministic information about the proximity ...
which ensures reliable broadcast to each neighboring node with minimal
cost" (Sec. 4).

This module computes the *cost model* of pseudo-broadcast over our lossy
links and provides a reliable-flood primitive built on it; the emulator
uses the cost to account for control-plane overhead and the flood result
to seed node selection with consistent distance information.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.topology.graph import WirelessNetwork


@dataclass(frozen=True)
class PseudoBroadcastCost:
    """Expected cost of one reliable neighborhood broadcast from a node.

    Attributes:
        transmissions: expected number of MAC transmissions (the unicast
            retransmits to the weakest designated receiver dominate).
        covered: neighbors expected to receive at least one copy.
    """

    transmissions: float
    covered: FrozenSet[int]


def neighborhood_broadcast_cost(
    network: WirelessNetwork, sender: int, *, residual_threshold: float = 0.01
) -> PseudoBroadcastCost:
    """Expected transmissions for ``sender`` to reach all its out-neighbors.

    Strategy (as in the reference implementation): repeatedly unicast to
    the not-yet-covered neighbor with the *best* link; every retransmission
    also gives other uncovered neighbors an overhearing chance.  We model
    the expectation greedily: each phase targets the best uncovered
    neighbor and runs ``1/p`` expected transmissions, during which another
    uncovered neighbor ``k`` stays uncovered with probability
    ``(1-p_k)^(1/p)``.  Phases repeat until every neighbor's residual
    miss-probability drops below ``residual_threshold``.
    """
    uncovered: Dict[int, float] = {}  # neighbor -> probability still missed
    for j in network.out_neighbors(sender):
        uncovered[j] = 1.0
    if not uncovered:
        return PseudoBroadcastCost(transmissions=0.0, covered=frozenset())

    total_tx = 0.0
    covered: Set[int] = set()
    # Bounded loop: each phase definitively covers its target.
    for _ in range(len(uncovered)):
        pending = {j: r for j, r in uncovered.items() if r > residual_threshold}
        if not pending:
            break
        target = max(pending, key=lambda j: network.probability(sender, j))
        p_target = network.probability(sender, target)
        expected_tx = 1.0 / p_target
        total_tx += expected_tx
        for j in list(uncovered):
            p_j = network.probability(sender, j)
            uncovered[j] *= (1.0 - p_j) ** expected_tx
        uncovered[target] = 0.0
        covered.add(target)
    covered.update(j for j, r in uncovered.items() if r <= residual_threshold)
    return PseudoBroadcastCost(
        transmissions=total_tx, covered=frozenset(covered)
    )


@dataclass(frozen=True)
class FloodResult:
    """Outcome of a network-wide reliable flood.

    Attributes:
        origin: flooding node.
        reached: nodes that received the flooded information.
        total_transmissions: expected MAC transmissions spent, summed over
            all forwarding nodes — the control overhead the paper accepts
            as "a certain amount of overhead" per (re-)initialization.
        forward_order: order in which nodes first forwarded.
    """

    origin: int
    reached: FrozenSet[int]
    total_transmissions: float
    forward_order: Tuple[int, ...]


def reliable_flood(
    network: WirelessNetwork,
    origin: int,
    *,
    eligible: Optional[FrozenSet[int]] = None,
) -> FloodResult:
    """Flood from ``origin`` with per-hop pseudo-broadcast reliability.

    ``eligible`` optionally restricts which receivers continue forwarding
    (node selection forwards only at nodes closer to the destination).
    Delivery itself is deterministic — that is the point of
    pseudo-broadcast — so the result is the reachable set plus its cost.
    """
    if not 0 <= origin < network.node_count:
        raise ValueError(f"origin {origin} outside the network")
    reached: Set[int] = {origin}
    order: List[int] = []
    total_tx = 0.0
    frontier = [origin]
    while frontier:
        node = frontier.pop(0)
        if eligible is not None and node != origin and node not in eligible:
            continue  # receives but does not forward
        cost = neighborhood_broadcast_cost(network, node)
        total_tx += cost.transmissions
        order.append(node)
        for j in cost.covered:
            if j not in reached:
                reached.add(j)
                frontier.append(j)
    return FloodResult(
        origin=origin,
        reached=frozenset(reached),
        total_transmissions=total_tx,
        forward_order=tuple(order),
    )
