"""Shortest paths: centralized Dijkstra and distributed Bellman-Ford.

Both entry points operate on arbitrary non-negative link weights keyed by
directed link, so the same code serves

* ETX routing (weights = 1/p_ij),
* the node-selection distance flood (ETX distance to the destination),
* SUB1 of the rate-control decomposition (weights = Lagrange prices
  lambda_ij), which the paper solves "in a distributed manner".

:class:`DistributedBellmanFord` mirrors how the protocol would actually
compute distances in the field: each node repeatedly exchanges distance
vectors with neighbors until no estimate changes.  Its results agree with
Dijkstra (tests enforce this); the emulation uses whichever is cheaper.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

Link = Tuple[int, int]

_INF = float("inf")


@dataclass
class ShortestPathResult:
    """Distances and predecessor tree from one Dijkstra/Bellman-Ford run.

    ``distance[v]`` is the weight of the best path; unreachable nodes are
    absent.  ``predecessor[v]`` gives the upstream hop toward the source
    of the computation.
    """

    source: int
    distance: Dict[int, float] = field(default_factory=dict)
    predecessor: Dict[int, int] = field(default_factory=dict)

    def path_to(self, target: int) -> Optional[Tuple[int, ...]]:
        """Reconstruct the node sequence source..target, or None."""
        if target not in self.distance:
            return None
        hops: List[int] = [target]
        node = target
        while node != self.source:
            node = self.predecessor[node]
            hops.append(node)
        return tuple(reversed(hops))

    def hop_count(self, target: int) -> Optional[int]:
        """Number of hops on the best path, or None if unreachable."""
        path = self.path_to(target)
        if path is None:
            return None
        return len(path) - 1


def dijkstra(
    nodes: Iterable[int],
    weights: Mapping[Link, float],
    source: int,
) -> ShortestPathResult:
    """Single-source shortest paths with non-negative weights.

    ``weights`` maps directed links (i, j) to costs; absent links do not
    exist.  Raises ``ValueError`` on a negative weight.
    """
    node_set = set(nodes)
    if source not in node_set:
        raise ValueError(f"source {source} not among nodes")
    adjacency: Dict[int, List[Tuple[int, float]]] = {n: [] for n in sorted(node_set)}
    for (i, j), w in weights.items():
        if w < 0:
            raise ValueError(f"negative weight on link ({i},{j}): {w}")
        if i in node_set and j in node_set:
            adjacency[i].append((j, w))

    result = ShortestPathResult(source=source)
    result.distance[source] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, source)]
    settled: set = set()
    while heap:
        dist, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        for neighbor, weight in adjacency[node]:
            candidate = dist + weight
            if candidate < result.distance.get(neighbor, _INF):
                result.distance[neighbor] = candidate
                result.predecessor[neighbor] = node
                heapq.heappush(heap, (candidate, neighbor))
    return result


def dijkstra_to_destination(
    nodes: Iterable[int],
    weights: Mapping[Link, float],
    destination: int,
) -> ShortestPathResult:
    """Shortest distance *to* ``destination`` from every node.

    Runs Dijkstra on the reversed graph; ``distance[v]`` is then the cost
    of v's best path toward the destination — the quantity each node
    needs for node selection ("each node needs to compute its distance to
    the destination", Sec. 4).  ``predecessor[v]`` is v's next hop toward
    the destination.
    """
    reversed_weights = {(j, i): w for (i, j), w in weights.items()}
    reversed_result = dijkstra(nodes, reversed_weights, destination)
    result = ShortestPathResult(source=destination)
    result.distance = reversed_result.distance
    result.predecessor = reversed_result.predecessor
    return result


class DistributedBellmanFord:
    """Distance-vector computation by iterative neighbor exchange.

    Each node holds an estimate of its distance to the destination and a
    next hop.  One :meth:`round` has every node pull its neighbors'
    current estimates (the message exchange) and relax.  Convergence is
    reached when a round changes nothing; with non-negative weights this
    takes at most |V| - 1 rounds.
    """

    def __init__(
        self,
        nodes: Iterable[int],
        weights: Mapping[Link, float],
        destination: int,
    ) -> None:
        self._nodes = sorted(set(nodes))
        if destination not in self._nodes:
            raise ValueError(f"destination {destination} not among nodes")
        for (i, j), w in weights.items():
            if w < 0:
                raise ValueError(f"negative weight on link ({i},{j}): {w}")
        self._weights = dict(weights)
        self._destination = destination
        self._estimate: Dict[int, float] = {n: _INF for n in self._nodes}
        self._estimate[destination] = 0.0
        self._next_hop: Dict[int, Optional[int]] = {n: None for n in self._nodes}
        self._rounds = 0
        self._converged = False

    @property
    def rounds(self) -> int:
        """Message-exchange rounds executed so far."""
        return self._rounds

    @property
    def converged(self) -> bool:
        """True once a round produced no change."""
        return self._converged

    def round(self) -> bool:
        """Run one synchronous exchange round; returns True if anything
        changed."""
        changed = False
        snapshot = dict(self._estimate)  # nodes read last round's values
        for (i, j), w in self._weights.items():
            through = snapshot.get(j, _INF)
            if through == _INF:
                continue
            candidate = w + through
            if candidate < self._estimate[i] - 1e-15:
                self._estimate[i] = candidate
                self._next_hop[i] = j
                changed = True
        self._rounds += 1
        if not changed:
            self._converged = True
        return changed

    def run(self, max_rounds: Optional[int] = None) -> "DistributedBellmanFord":
        """Iterate rounds to convergence (or ``max_rounds``)."""
        limit = max_rounds if max_rounds is not None else len(self._nodes)
        for _ in range(limit):
            if not self.round():
                break
        return self

    def distance(self, node: int) -> float:
        """Current distance estimate of ``node`` to the destination."""
        return self._estimate[node]

    def next_hop(self, node: int) -> Optional[int]:
        """Current next hop of ``node`` toward the destination."""
        return self._next_hop[node]

    def distances(self) -> Dict[int, float]:
        """All finite distance estimates."""
        return {n: d for n, d in self._estimate.items() if d < _INF}

    def path_from(self, node: int) -> Optional[Tuple[int, ...]]:
        """Follow next hops from ``node`` to the destination."""
        if self._estimate[node] == _INF:
            return None
        path = [node]
        current = node
        seen = {node}
        while current != self._destination:
            nxt = self._next_hop[current]
            if nxt is None or nxt in seen:
                return None  # not yet converged / transient loop
            path.append(nxt)
            seen.add(nxt)
            current = nxt
        return tuple(path)
