"""Routing substrate: ETX metric, shortest paths, node selection.

* :mod:`repro.routing.etx` — the ETX metric and probe-based measurement.
* :mod:`repro.routing.shortest_path` — centralized Dijkstra plus the
  distributed Bellman-Ford exchange that a deployed protocol would run.
* :mod:`repro.routing.node_selection` — forwarder selection producing the
  distance-decreasing DAG that carries all multipath traffic.
* :mod:`repro.routing.pseudo_broadcast` — the reliable neighborhood
  broadcast (Katti et al.) used by the node-selection flood.
"""

from repro.routing.etx import (
    LinkProbeEstimator,
    etx_weights,
    expected_probe_error,
    link_etx,
    path_etx,
)
from repro.routing.node_selection import (
    ForwarderSet,
    NodeSelectionError,
    select_forwarders,
)
from repro.routing.pseudo_broadcast import (
    FloodResult,
    PseudoBroadcastCost,
    neighborhood_broadcast_cost,
    reliable_flood,
)
from repro.routing.shortest_path import (
    DistributedBellmanFord,
    ShortestPathResult,
    dijkstra,
    dijkstra_to_destination,
)

__all__ = [
    "DistributedBellmanFord",
    "FloodResult",
    "ForwarderSet",
    "LinkProbeEstimator",
    "NodeSelectionError",
    "PseudoBroadcastCost",
    "ShortestPathResult",
    "dijkstra",
    "dijkstra_to_destination",
    "etx_weights",
    "expected_probe_error",
    "link_etx",
    "neighborhood_broadcast_cost",
    "path_etx",
    "reliable_flood",
    "select_forwarders",
]
