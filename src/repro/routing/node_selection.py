"""Node selection: choose the forwarders that may contribute to a unicast.

The paper's procedure (Sec. 3.2 and Sec. 4):

1. every node computes its ETX distance to the destination (shortest
   path over link ETX weights);
2. the source floods a packet carrying distance information using
   *pseudo-broadcast* (Katti et al.) so each neighbor reliably learns it;
3. a node is selected iff it is **closer to the destination than its
   predecessor** — i.e. it lies on some strictly distance-decreasing
   route from the source — and it can actually be reached from the source
   through already-selected nodes.

The selected set induces a DAG when links are oriented from larger to
smaller ETX distance; all multipath structure in OMNC/MORE lives on this
DAG ("the multiple opportunistic paths are constructed implicitly").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.routing.etx import etx_weights
from repro.routing.shortest_path import dijkstra_to_destination
from repro.topology.graph import Link, WirelessNetwork


@dataclass(frozen=True)
class ForwarderSet:
    """Result of node selection for one unicast session.

    Attributes:
        source: session source node.
        destination: session destination node.
        nodes: selected node set (always contains source and destination).
        etx_distance: each selected node's ETX distance to the
            destination.
        dag_links: directed links of the forwarding DAG: (i, j) with both
            endpoints selected and ``etx_distance[j] < etx_distance[i]``.
    """

    source: int
    destination: int
    nodes: FrozenSet[int]
    etx_distance: Dict[int, float]
    dag_links: Tuple[Link, ...]

    @property
    def relay_count(self) -> int:
        """Selected intermediate forwarders (source/destination excluded)."""
        return len(self.nodes) - 2

    def downstream(self, node: int) -> Tuple[int, ...]:
        """Selected nodes reachable from ``node`` by one DAG link."""
        return tuple(j for (i, j) in self.dag_links if i == node)

    def upstream(self, node: int) -> Tuple[int, ...]:
        """Selected nodes with a DAG link into ``node``."""
        return tuple(i for (i, j) in self.dag_links if j == node)

    def ordered_by_distance(self) -> Tuple[int, ...]:
        """Selected nodes ordered from closest to the destination outward.

        This is the forwarder ordering MORE's credit computation uses.
        """
        return tuple(
            sorted(self.nodes, key=lambda n: (self.etx_distance[n], n))
        )


class NodeSelectionError(ValueError):
    """Raised when no usable forwarder set exists for a session."""


def select_forwarders(
    network: WirelessNetwork,
    source: int,
    destination: int,
    *,
    weights: Dict[Link, float] | None = None,
    max_distance_factor: float | None = None,
) -> ForwarderSet:
    """Run the node-selection procedure for one unicast session.

    Args:
        network: the full topology.
        source: source node id.
        destination: destination node id.
        weights: optional measured ETX weights; defaults to oracle
            ``1/p_ij`` from the network.
        max_distance_factor: if given, additionally prune nodes whose ETX
            distance exceeds ``factor * etx_distance[source]`` — a common
            guard against dragging in far-away low-value forwarders.  The
            paper does not apply one; ``None`` matches the paper.

    Raises:
        NodeSelectionError: if the destination is unreachable from the
            source over the lossy graph.
    """
    if source == destination:
        raise NodeSelectionError("source and destination must differ")
    for node in (source, destination):
        if not 0 <= node < network.node_count:
            raise NodeSelectionError(f"node {node} outside the network")

    link_weights = weights if weights is not None else etx_weights(network)
    to_destination = dijkstra_to_destination(
        network.nodes(), link_weights, destination
    )
    if source not in to_destination.distance:
        raise NodeSelectionError(
            f"destination {destination} unreachable from source {source}"
        )
    source_distance = to_destination.distance[source]

    # Candidate filter: strictly closer to the destination than the
    # source, or the source itself.  (A node farther than the source can
    # never sit on a distance-decreasing route from it.)
    candidates = {
        node
        for node, dist in to_destination.distance.items()
        if dist < source_distance
    }
    candidates.add(source)
    if max_distance_factor is not None:
        cap = max_distance_factor * source_distance
        candidates = {
            node
            for node in sorted(candidates)
            if to_destination.distance[node] <= cap or node == source
        }

    # Reachability flood from the source over distance-decreasing links —
    # this is the broadcast step: a receiver keeps forwarding only if it
    # is closer to the destination than the sender it heard.
    reached = _flood_decreasing(network, source, candidates, to_destination.distance)
    if destination not in reached:
        raise NodeSelectionError(
            f"no distance-decreasing route from {source} to {destination}"
        )

    # Keep only nodes that can still pass information onward: every
    # selected node except the destination needs a DAG link to another
    # selected node.  Iterate because removals can cascade.
    selected = set(reached)
    while True:
        dag = _dag_links(network, selected, to_destination.distance)
        has_out = {i for (i, j) in sorted(dag)}
        dead = {
            n for n in sorted(selected) if n != destination and n not in has_out
        }
        if not dead:
            break
        if source in dead:
            raise NodeSelectionError(
                f"source {source} lost all forwarding links during pruning"
            )
        selected -= dead

    distances = {n: to_destination.distance[n] for n in sorted(selected)}
    return ForwarderSet(
        source=source,
        destination=destination,
        nodes=frozenset(selected),
        etx_distance=distances,
        dag_links=tuple(sorted(dag)),
    )


def _flood_decreasing(
    network: WirelessNetwork,
    source: int,
    candidates: Set[int],
    distance: Dict[int, float],
) -> Set[int]:
    """BFS from the source over links that strictly decrease ETX distance."""
    reached = {source}
    frontier: List[int] = [source]
    while frontier:
        node = frontier.pop()
        for neighbor in network.out_neighbors(node):
            if neighbor in reached or neighbor not in candidates:
                continue
            if distance.get(neighbor, float("inf")) < distance[node]:
                reached.add(neighbor)
                frontier.append(neighbor)
    return reached


def _dag_links(
    network: WirelessNetwork,
    selected: Set[int],
    distance: Dict[int, float],
) -> List[Link]:
    """Directed links among ``selected`` oriented toward the destination."""
    links: List[Link] = []
    for i, j, _ in network.links():
        if i in selected and j in selected and distance[j] < distance[i]:
            links.append((i, j))
    return links
