"""Section 4 claim — accelerated network coding is 3-5x the baseline.

The paper replaces the lookup-table byte-at-a-time codec with an
SSE2-accelerated row-at-a-time multiply and reports 3-5x higher coding
efficiency "depending on the size of a generation and a data block".
Our accelerated engine vectorizes whole rows with numpy; the baseline is
a faithful byte-at-a-time pure-Python codec.  This experiment measures
both on the encode + progressive-decode pipeline across the generation
and block sizes the paper varies.

Run as a module::

    python -m repro.experiments.coding_speed
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.coding.decoder import ProgressiveDecoder
from repro.coding.encoder import SourceEncoder
from repro.coding.generation import GenerationParams, random_generation
from repro.coding.gf256 import GF256
from repro.coding.matrix import FieldType
from repro.coding.gf256_baseline import GF256Baseline
from repro.util.rng import as_rng


@dataclass(frozen=True)
class CodingSpeedPoint:
    """One (generation size, block size) measurement."""

    blocks: int
    block_size: int
    accelerated_mbps: float
    baseline_mbps: float

    @property
    def speedup(self) -> float:
        """Accelerated over baseline throughput."""
        if self.baseline_mbps == 0:
            return float("inf")
        return self.accelerated_mbps / self.baseline_mbps


def measure_codec(
    field: FieldType,
    blocks: int,
    block_size: int,
    *,
    seed: int = 7,
    repeats: int = 1,
    batch: int = 1,
) -> float:
    """Encode and progressively decode one generation; return MB/s.

    Throughput counts the payload bytes processed by the full pipeline
    (encode at the source + Gauss-Jordan absorption at the destination),
    matching the paper's end-to-end "coding efficiency".  ``batch`` sets
    how many packets move through the pipeline per step: 1 exercises the
    per-packet API, larger values the batched kernels
    (``next_packets``/``add_packets``).
    """
    rng = as_rng(seed)
    params = GenerationParams(blocks=blocks, block_size=block_size)
    generation = random_generation(0, params, rng)
    best = float("inf")
    for _ in range(repeats):
        encoder = SourceEncoder(1, generation, rng, field=field)
        decoder = ProgressiveDecoder(blocks, block_size, field=field)
        started = time.perf_counter()  # repro: ignore[RPR002] measured claim is wall time
        while not decoder.is_complete:
            if batch > 1:
                decoder.add_packets(encoder.next_packets(batch))
            else:
                decoder.add_packet(encoder.next_packet())
        elapsed = time.perf_counter() - started  # repro: ignore[RPR002]
        best = min(best, elapsed)
    payload = blocks * block_size
    return payload / best / 1e6


def run_coding_speed(
    shapes: List[Tuple[int, int]] | None = None,
) -> List[CodingSpeedPoint]:
    """Measure both codecs across generation/block shapes."""
    if shapes is None:
        shapes = [(16, 256), (32, 512), (40, 1024), (64, 1024)]
    points = []
    for blocks, block_size in shapes:
        # Both codecs get generation-sized batches so the comparison
        # isolates the field arithmetic, not the feeding pattern.
        accelerated = measure_codec(GF256, blocks, block_size, batch=blocks)
        baseline = measure_codec(GF256Baseline, blocks, block_size, batch=blocks)
        points.append(
            CodingSpeedPoint(
                blocks=blocks,
                block_size=block_size,
                accelerated_mbps=accelerated,
                baseline_mbps=baseline,
            )
        )
    return points


def main() -> None:
    print("Coding speed — accelerated (numpy rows) vs baseline (pure Python)")
    print(f"{'generation':>12s} {'accel MB/s':>12s} {'base MB/s':>12s} {'speedup':>9s}")
    for point in run_coding_speed():
        label = f"{point.blocks}x{point.block_size}"
        print(
            f"{label:>12s} {point.accelerated_mbps:12.2f} "
            f"{point.baseline_mbps:12.3f} {point.speedup:8.1f}x"
        )
    print("paper claim: 3-5x over the lookup-table baseline")


if __name__ == "__main__":
    main()
