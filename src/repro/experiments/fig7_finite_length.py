"""Figure 7 (extension) — finite-length-aware generation sizing.

The paper fixes the generation size at n = 40 blocks and treats coding
as asymptotically reliable.  At finite n over GF(2^8) neither half of
that bargain is free: every decoded generation costs a little over n
received packets (the full-rank overhead), each coded packet carries an
n-byte coefficient header, and lossy links turn "a little over n" into
a binomial tail that grows with n.  The finite-length model in
:mod:`repro.coding.finite_length` prices those effects in closed form;
this experiment checks the model against the emulator and shows what
acting on it buys:

* **Panel A — decode cost.**  Monte-Carlo runs of the coding layer
  alone (encoder -> i.i.d. lossy channel -> progressive decoder)
  measure ``decoder.rows_eliminated`` and ``decoder.overhead_packets``
  for dense vs. systematic encoding, next to the model's expected
  overhead curves over the candidate generation sizes.  On a lossless
  channel systematic encoding never touches the elimination kernel, so
  the measured elimination count collapses (the acceptance bar is a
  >= 5x reduction) while payloads stay byte-identical.

* **Panel B — goodput under loss.**  The Sec. 3.2 diamond S -> {u, v}
  -> T with every link at delivery probability 1 - loss runs a fixed
  airtime window per loss rate, under three coding arms: the paper's
  static n = 40, per-loss adaptive n (the model's
  :func:`~repro.coding.finite_length.optimal_blocks`), and systematic
  n = 40.  Goodput is decoded payload over the whole window, so a
  generation that never reaches full rank counts as zero — exactly the
  finite-length failure mode the adaptive arm avoids at high loss.

Arms are dispatched as cacheable jobs; run as a module to print both
panels::

    python -m repro.experiments.fig7_finite_length
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.coding.decoder import ProgressiveDecoder
from repro.coding.encoder import SourceEncoder
from repro.coding.finite_length import (
    DEFAULT_CANDIDATES,
    expected_decode_packets,
    optimal_blocks,
    overhead_ratio,
)
from repro.coding.generation import GenerationParams, random_generation
from repro.emulator.session import SessionConfig, SessionResult
from repro.emulator.shard import run_sharded_session
from repro.exec import (
    ExecutionPolicy,
    JobResult,
    JobSpec,
    add_execution_arguments,
    execute_jobs,
    policy_from_args,
    stable_hash,
)
from repro.protocols.base import CodingParams
from repro.protocols.omnc import plan_omnc
from repro.topology.graph import WirelessNetwork
from repro.topology.random_network import diamond_topology
from repro.util.rng import RngFactory

#: Bump when the finite-length computation changes in a way that
#: invalidates previously cached Fig. 7 job results.
FIG7_JOB_SCHEMA = 1

#: The coding arms of panel B, in presentation order.
ARMS = ("static", "adaptive", "systematic")


@dataclass(frozen=True)
class Fig7Config:
    """Knobs of the finite-length experiment.

    ``smoke()`` returns a reduced configuration for CI: same shape,
    a fraction of the emulated time and Monte-Carlo trials.
    """

    static_blocks: int = 40
    block_size: int = 1024
    losses: Tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)
    window_seconds: float = 120.0
    decode_trials: int = 50
    decode_blocks: int = 40
    seed: int = 2008
    candidates: Tuple[int, ...] = DEFAULT_CANDIDATES

    @classmethod
    def smoke(cls) -> "Fig7Config":
        """CI-sized run: short window, few trials, sparse loss sweep."""
        return cls(
            block_size=256,
            losses=(0.0, 0.3),
            window_seconds=30.0,
            decode_trials=10,
            decode_blocks=16,
        )


@dataclass(frozen=True)
class DecodeCostPoint:
    """Panel A: measured decode cost of one (loss, encoding) cell.

    Attributes:
        loss: i.i.d. packet-loss probability of the channel.
        systematic: whether the source encoded systematically.
        eliminations_per_generation: mean rows that went through the
            elimination kernel per decoded generation (measured
            ``decoder.rows_eliminated``).
        overhead_per_generation: mean non-innovative packets absorbed
            per decoded generation (measured ``decoder.overhead_packets``).
        payloads_identical: every trial's decoded matrix matched the
            source generation byte for byte.
    """

    loss: float
    systematic: bool
    eliminations_per_generation: float
    overhead_per_generation: float
    payloads_identical: bool


@dataclass(frozen=True)
class GoodputPoint:
    """Panel B: one coding arm's outcome at one loss rate.

    Attributes:
        loss: per-link loss probability on the diamond.
        arm: "static" | "adaptive" | "systematic".
        blocks: the generation size the arm ran with.
        systematic: whether the arm encoded systematically.
        goodput_bps: decoded payload over the whole airtime window (B/s).
        generations_decoded: full generations recovered in the window.
    """

    loss: float
    arm: str
    blocks: int
    systematic: bool
    goodput_bps: float
    generations_decoded: int


@dataclass(frozen=True)
class Fig7Result:
    """Both panels of the finite-length experiment.

    Attributes:
        config: the experiment configuration.
        model_overhead: ``overhead_ratio(n, loss)`` per loss rate over
            the candidate generation sizes (the model curves of panel A).
        decode_costs: measured decode-cost cells, keyed (loss, systematic).
        goodput: measured goodput cells, keyed (loss, arm).
    """

    config: Fig7Config
    model_overhead: Dict[float, Tuple[Tuple[int, float], ...]]
    decode_costs: Dict[Tuple[float, bool], DecodeCostPoint]
    goodput: Dict[Tuple[float, str], GoodputPoint]

    def elimination_reduction(self, loss: float = 0.0) -> float:
        """How many times fewer rows systematic eliminates at ``loss``.

        Systematic measures exactly zero on a lossless channel; the
        denominator is floored at one row so the ratio reads as a
        conservative "at least this many times fewer".
        """
        dense = self.decode_costs[(loss, False)].eliminations_per_generation
        systematic = self.decode_costs[(loss, True)].eliminations_per_generation
        return dense / max(systematic, 1.0)


def arm_coding(arm: str, loss: float, config: Fig7Config) -> CodingParams:
    """The coding decision each arm rides into the session plan."""
    if arm == "static":
        return CodingParams(blocks=config.static_blocks)
    if arm == "adaptive":
        blocks = optimal_blocks(
            loss,
            block_size=config.block_size,
            candidates=config.candidates,
        )
        return CodingParams(blocks=blocks)
    if arm == "systematic":
        return CodingParams(blocks=config.static_blocks, systematic=True)
    raise ValueError(f"unknown arm {arm!r}")


@dataclass(frozen=True)
class Fig7DecodeJob:
    """One Monte-Carlo decode-cost measurement, as a cacheable job."""

    config: Fig7Config
    loss: float
    systematic: bool

    def cache_key(self) -> str:
        """Stable content hash of this measurement."""
        return stable_hash(
            {
                "kind": "fig7-decode-cost",
                "schema": FIG7_JOB_SCHEMA,
                "config": self.config,
                "loss": self.loss,
                "systematic": self.systematic,
            }
        )


def execute_fig7_decode_job(job: Fig7DecodeJob) -> DecodeCostPoint:
    """Measure decode cost at the coding layer: encoder -> loss -> decoder.

    Every (loss, systematic) cell uses the same seed, so dense and
    systematic face identical source payloads and channel erasures —
    the measured elimination gap is the encoding's alone.
    """
    config = job.config
    params = GenerationParams(
        blocks=config.decode_blocks, block_size=config.block_size
    )
    rng = RngFactory(config.seed)
    source_rng = rng.derive("fig7-source")
    channel_rng = rng.derive("fig7-channel")
    eliminations = 0.0
    overhead = 0.0
    identical = True
    for trial in range(config.decode_trials):
        generation = random_generation(trial, params, source_rng)
        encoder = SourceEncoder(
            1,
            generation,
            rng.derive("fig7-coding", trial),
            systematic=job.systematic,
        )
        registry = obs.MetricsRegistry()
        decoder = ProgressiveDecoder(
            params.blocks, params.block_size, registry=registry
        )
        while not decoder.is_complete:
            packet = encoder.next_packet()
            if channel_rng.random() < job.loss:
                continue
            decoder.add_packet(packet)
        if not np.array_equal(decoder.decode(), generation.matrix):
            identical = False
        eliminations += registry.value("decoder.rows_eliminated")
        scope = registry.attach("decoder")
        overhead += scope.histogram("overhead_packets").sum
    trials = float(config.decode_trials)
    return DecodeCostPoint(
        loss=job.loss,
        systematic=job.systematic,
        eliminations_per_generation=eliminations / trials,
        overhead_per_generation=overhead / trials,
        payloads_identical=identical,
    )


@dataclass(frozen=True)
class Fig7GoodputJob:
    """One coding arm's fixed-window run on the diamond, as a job.

    ``shards`` participates in the cache key: the serial and sharded CI
    runs must each execute (and then byte-compare), not share a cache
    entry.
    """

    config: Fig7Config
    loss: float
    arm: str
    shards: int = 1

    def cache_key(self) -> str:
        """Stable content hash of this arm run."""
        return stable_hash(
            {
                "kind": "fig7-goodput",
                "schema": FIG7_JOB_SCHEMA,
                "config": self.config,
                "loss": self.loss,
                "arm": self.arm,
                "shards": self.shards,
            }
        )


def fig7_network(loss: float) -> WirelessNetwork:
    """The panel-B topology: the Sec. 3.2 diamond at uniform link loss."""
    p = 1.0 - loss
    return diamond_topology(p_su=p, p_sv=p, p_ut=p, p_vt=p)


def execute_fig7_goodput_job(job: Fig7GoodputJob) -> GoodputPoint:
    """Run one coding arm for the full airtime window on the diamond."""
    config = job.config
    network = fig7_network(job.loss)
    coding = arm_coding(job.arm, job.loss, config)
    plan = replace(plan_omnc(network, 0, 3), coding=coding)
    session_config = SessionConfig(
        blocks=coding.blocks,
        block_size=config.block_size,
        max_seconds=config.window_seconds,
        target_generations=0,
        coding_fidelity="exact",
    )
    result: SessionResult = run_sharded_session(
        network,
        plan,
        shards=job.shards,
        config=session_config,
        rng=RngFactory(config.seed),
    )
    duration = result.duration if result.duration > 0 else 1.0
    goodput = result.packets_delivered * config.block_size / duration
    return GoodputPoint(
        loss=job.loss,
        arm=job.arm,
        blocks=coding.blocks,
        systematic=coding.systematic,
        goodput_bps=goodput,
        generations_decoded=result.generations_decoded,
    )


def run_fig7(
    config: Optional[Fig7Config] = None,
    *,
    shards: int = 1,
    registry: Optional[obs.MetricsRegistry] = None,
    policy: Optional[ExecutionPolicy] = None,
) -> Fig7Result:
    """Run both panels; every cell is an independent cacheable job."""
    config = config or Fig7Config()
    decode_jobs = [
        Fig7DecodeJob(config=config, loss=loss, systematic=systematic)
        for loss in config.losses
        for systematic in (False, True)
    ]
    goodput_jobs = [
        Fig7GoodputJob(config=config, loss=loss, arm=arm, shards=shards)
        for loss in config.losses
        for arm in ARMS
    ]
    jobs: List[JobSpec] = [
        JobSpec(key=job.cache_key(), fn=execute_fig7_decode_job, payload=job)
        for job in decode_jobs
    ]
    jobs += [
        JobSpec(key=job.cache_key(), fn=execute_fig7_goodput_job, payload=job)
        for job in goodput_jobs
    ]
    outcomes = execute_jobs(jobs, policy, registry=registry)
    for job_spec, outcome in zip(jobs, outcomes):
        if not isinstance(outcome, JobResult):
            raise RuntimeError(
                f"fig7 job {job_spec.key[:12]} failed: {outcome.error}: "
                f"{outcome.message}"
            )
    decode_costs: Dict[Tuple[float, bool], DecodeCostPoint] = {}
    goodput: Dict[Tuple[float, str], GoodputPoint] = {}
    for job_decode, outcome in zip(decode_jobs, outcomes[: len(decode_jobs)]):
        assert isinstance(outcome, JobResult)
        decode_costs[(job_decode.loss, job_decode.systematic)] = outcome.value
    for job_goodput, outcome in zip(
        goodput_jobs, outcomes[len(decode_jobs) :]
    ):
        assert isinstance(outcome, JobResult)
        goodput[(job_goodput.loss, job_goodput.arm)] = outcome.value
    model_overhead = {
        loss: tuple(
            (n, overhead_ratio(n, loss, block_size=config.block_size))
            for n in config.candidates
        )
        for loss in config.losses
    }
    return Fig7Result(
        config=config,
        model_overhead=model_overhead,
        decode_costs=decode_costs,
        goodput=goodput,
    )


def main(
    smoke: bool = False,
    shards: int = 1,
    policy: Optional[ExecutionPolicy] = None,
) -> None:
    """Print both panels of the finite-length comparison."""
    config = Fig7Config.smoke() if smoke else Fig7Config()
    result = run_fig7(config, shards=shards, policy=policy)
    print("Figure 7 — finite-length-aware generation sizing")
    print(
        f"panel A: n={config.decode_blocks}, m={config.block_size} B, "
        f"{config.decode_trials} generations per cell "
        f"(model E[packets] = {expected_decode_packets(config.decode_blocks):.3f})"
    )
    header = (
        f"{'loss':>5s} {'enc':>10s} {'elim/gen':>9s} {'ovh/gen':>8s} "
        f"{'payload':>8s}"
    )
    print(header)
    for loss in config.losses:
        for systematic in (False, True):
            point = result.decode_costs[(loss, systematic)]
            print(
                f"{loss:5.2f} {'systematic' if systematic else 'dense':>10s} "
                f"{point.eliminations_per_generation:9.1f} "
                f"{point.overhead_per_generation:8.2f} "
                f"{'ok' if point.payloads_identical else 'MISMATCH':>8s}"
            )
    print(
        f"systematic elimination reduction at zero loss: "
        f"{result.elimination_reduction(0.0):.1f}x"
    )
    print()
    print(
        f"panel B: diamond, {config.window_seconds:.0f} s window per cell, "
        f"goodput = decoded payload / window"
    )
    print(f"{'loss':>5s}" + "".join(f" {arm:>16s}" for arm in ARMS))
    for loss in config.losses:
        cells = []
        for arm in ARMS:
            point = result.goodput[(loss, arm)]
            cells.append(f"{point.goodput_bps:9.0f} (n={point.blocks:3d})")
        print(f"{loss:5.2f}" + "".join(f" {cell:>16s}" for cell in cells))
    print()
    print("model overhead ratio (per-block wire bytes / payload - 1):")
    print(f"{'loss':>5s}" + "".join(f" {f'n={n}':>8s}" for n in config.candidates))
    for loss in config.losses:
        row = "".join(
            f" {ratio:8.3f}" if ratio != float("inf") else f" {'inf':>8s}"
            for _n, ratio in result.model_overhead[loss]
        )
        print(f"{loss:5.2f}" + row)


def _module_main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="worker shards per emulated session (1 = serial oracle)",
    )
    add_execution_arguments(parser)
    args = parser.parse_args(argv)
    main(smoke=args.smoke, shards=args.shards, policy=policy_from_args(args))


if __name__ == "__main__":
    _module_main()
