"""Figure 3 — distribution of time-averaged queue sizes.

The paper samples each node's broadcast queue, time-averages it, and
plots the per-node distribution for OMNC and MORE in the lossy network.
Headline numbers: OMNC's overall average is 0.63 (most nodes < 1);
MORE's is 22 — the rate-control-vs-none contrast that explains the
throughput results.

Run as a module::

    python -m repro.experiments.fig3_queue
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.emulator.stats import DistributionSummary, ascii_cdf, summarize
from repro.exec import (
    ExecutionPolicy,
    add_execution_arguments,
    policy_from_args,
)
from repro.experiments.common import (
    CampaignConfig,
    CampaignResult,
    run_campaign,
)

QUEUE_PROTOCOLS = ("omnc", "more", "oldmore")

PAPER_MEAN_QUEUES = {"omnc": 0.63, "more": 22.0}


@dataclass(frozen=True)
class Fig3Result:
    """Per-node queue-size distributions per protocol."""

    distributions: Dict[str, DistributionSummary]
    campaign: CampaignResult

    def mean_queue(self, protocol: str) -> float:
        """Overall average of per-node time-averaged queues."""
        return self.distributions[protocol].mean


def run_fig3(
    config: Optional[CampaignConfig] = None,
    *,
    policy: Optional[ExecutionPolicy] = None,
) -> Fig3Result:
    """Run the Fig. 3 queue campaign (lossy network)."""
    if config is None:
        config = CampaignConfig.from_environment(quality="lossy")
    campaign = run_campaign(config, policy=policy)
    distributions = {
        protocol: summarize(campaign.per_node_queues(protocol))
        for protocol in QUEUE_PROTOCOLS
    }
    return Fig3Result(distributions=distributions, campaign=campaign)


def report(result: Fig3Result) -> None:
    """Print the Fig. 3 summary and CDFs."""
    print("Figure 3 — per-node time-averaged queue size (lossy network)")
    for protocol in QUEUE_PROTOCOLS:
        summary = result.distributions[protocol]
        paper = PAPER_MEAN_QUEUES.get(protocol)
        note = f" (paper {paper})" if paper is not None else ""
        below_one = summary.fraction_below(1.0)
        print(
            f"  {protocol:8s} mean {summary.mean:6.2f}{note}  "
            f"median {summary.median:5.2f}  P(q<1) = {below_one:.2f}"
        )
    for protocol in QUEUE_PROTOCOLS:
        print()
        print(ascii_cdf(result.distributions[protocol], label=f"{protocol} queue CDF"))


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    add_execution_arguments(parser)
    args = parser.parse_args(argv)
    report(run_fig3(policy=policy_from_args(args)))


if __name__ == "__main__":
    main()
