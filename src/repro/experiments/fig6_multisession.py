"""Figure 6 (extension) — concurrent unicasts: throughput and fairness.

The paper's conclusion claims the rate-control framework "can be
flexibly extended to other scenarios such as the multiple-unicast
case"; this experiment runs that extension end to end.  N concurrent
unicast sessions share one lossy mesh and its MAC airtime:

* **omnc-multi** — the sessions are planned *jointly* by the
  proportional-fair multi-session decomposition
  (:func:`repro.protocols.omnc.plan_omnc_multi`): one shared
  congestion price per node splits the airtime at planning time;
* **more-per-flow** — each flow runs the MORE heuristic in isolation
  (the protocol has no notion of other flows) and the flows fight over
  airtime at run time.

Both sides then execute in the same multi-session emulator
(:func:`repro.emulator.multisession.run_multi_session`) under
identical randomness.  The figure reports aggregate throughput and the
Jain fairness index versus N: joint planning keeps weak sessions alive
(fairness) while matching or beating the aggregate of capacity-blind
per-flow planning once contention bites (N >= 4).

A second panel demonstrates the inter-session XOR relay on the COPE
"Alice and Bob" topology — two opposing flows through one relay, with
and without XOR coding — and reports the airtime saved.  Run as a
module to print both::

    python -m repro.experiments.fig6_multisession
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.emulator.multisession import MultiSessionOutcome, run_multi_session
from repro.emulator.session import SessionConfig
from repro.exec import (
    ExecutionPolicy,
    JobResult,
    JobSpec,
    add_execution_arguments,
    execute_jobs,
    policy_from_args,
    stable_hash,
)
from repro.protocols.base import SessionPlan
from repro.protocols.intersession import plan_intersession_pairs
from repro.protocols.more import plan_more
from repro.protocols.omnc import plan_omnc_multi
from repro.routing.node_selection import NodeSelectionError
from repro.topology.graph import WirelessNetwork
from repro.topology.random_network import random_network
from repro.util.rng import RngFactory

_PROTOCOLS = ("omnc-multi", "more-per-flow")


@dataclass(frozen=True)
class Fig6Config:
    """Knobs of the multi-session experiment.

    The defaults are the *reference topology*: a 24-node mesh dense
    enough (average 9 in-range neighbors) that four or more concurrent
    flows genuinely contend, which is where joint planning pays.
    ``smoke()`` returns a CI-sized configuration: same shape, fewer
    sessions, a fraction of the emulated time.
    """

    node_count: int = 24
    density: float = 9.0
    topology_seed: int = 5
    session_seed: int = 2008
    session_counts: Tuple[int, ...] = (1, 2, 4, 8)
    duration: float = 40.0
    blocks: int = 8
    block_size: int = 256
    # Alice-Bob XOR panel: a 3-node chain, all nodes in carrier-sense
    # range (the ideal MAC serializes them), no direct A<->B link.
    xor_spacing: float = 60.0
    xor_range: float = 130.0
    xor_link_quality: float = 0.85
    xor_generations: int = 6
    xor_duration: float = 60.0

    @classmethod
    def smoke(cls) -> "Fig6Config":
        """CI-sized run: 3 concurrent sessions, ~5x less airtime."""
        return cls(
            session_counts=(1, 3),
            duration=8.0,
            xor_generations=3,
            xor_duration=20.0,
        )

    def session_config(self) -> SessionConfig:
        """The emulation config shared by every mesh run."""
        return SessionConfig(
            max_seconds=self.duration,
            target_generations=0,
            blocks=self.blocks,
            block_size=self.block_size,
        )


@dataclass(frozen=True)
class Fig6Point:
    """Both protocols' outcomes at one session count."""

    session_count: int
    outcomes: Dict[str, MultiSessionOutcome]

    def aggregate(self, protocol: str) -> float:
        """Aggregate throughput in bytes/second."""
        return self.outcomes[protocol].aggregate_throughput_bps

    def fairness(self, protocol: str) -> float:
        """Jain fairness index across the sessions."""
        return self.outcomes[protocol].fairness


@dataclass(frozen=True)
class Fig6XorResult:
    """The Alice-Bob panel: identical runs, XOR relay on and off."""

    baseline: MultiSessionOutcome
    xor: MultiSessionOutcome

    @property
    def airtime_saving(self) -> float:
        """Fraction of transmissions the XOR relay saved."""
        if self.baseline.transmissions == 0:
            return 0.0
        return 1.0 - self.xor.transmissions / self.baseline.transmissions


@dataclass(frozen=True)
class Fig6Result:
    """The full figure: the fairness sweep plus the XOR panel."""

    config: Fig6Config
    endpoints: Tuple[Tuple[int, int], ...]
    points: Tuple[Fig6Point, ...]
    xor_demo: Fig6XorResult


def fig6_network(config: Fig6Config) -> WirelessNetwork:
    """The reference mesh — a pure function of the config."""
    return random_network(
        config.node_count,
        neighbors_per_node=config.density,
        rng=config.topology_seed,
    )


def fig6_endpoints(
    network: WirelessNetwork, count: int, *, layout: str = "disjoint"
) -> Tuple[Tuple[int, int], ...]:
    """Deterministic MORE-feasible endpoint pairs, in a chosen layout.

    Scans sources ascending and destinations descending so the chosen
    pairs are a pure function of the topology; every pair admits a
    MORE plan (and hence an OMNC plan — same forwarder selection).

    Layouts:

    * ``"disjoint"`` (default) — node-disjoint pairs: independent
      sessions that only contend for airtime.
    * ``"opposing"`` — consecutive sessions run the *same* endpoints in
      opposite directions ((s, d), (d, s), ...), manufacturing
      COPE-style bidirectional exchanges on the random mesh: relays
      shared by a session pair carry traffic both ways, which is the
      eligibility condition of
      :func:`repro.protocols.intersession.plan_intersession_pairs` —
      inter-session XOR fires outside the hand-built Alice-Bob chain.
      Endpoint *pairs* stay node-disjoint from each other; both flow
      directions must be plannable, and among a source's feasible
      destinations the first whose two directed plans share an
      XOR-eligible relay wins (falling back to plain feasibility when
      the mesh offers no such relay for that source).
    """
    if layout not in ("disjoint", "opposing"):
        raise ValueError(f"unknown endpoint layout {layout!r}")
    pairs: List[Tuple[int, int]] = []
    used: set[int] = set()
    for source in range(network.node_count):
        if len(pairs) >= count:
            break
        if source in used:
            continue
        chosen: Tuple[int, int] | None = None
        fallback: Tuple[int, int] | None = None
        for destination in range(network.node_count - 1, -1, -1):
            if destination == source or destination in used:
                continue
            try:
                forward = plan_more(network, source, destination)
                reverse = (
                    plan_more(network, destination, source)
                    if layout == "opposing"
                    else None
                )
            except NodeSelectionError:
                continue
            if layout == "disjoint":
                chosen = (source, destination)
                break
            assert reverse is not None
            if plan_intersession_pairs({1: forward, 2: reverse}):
                chosen = (source, destination)
                break
            if fallback is None:
                fallback = (source, destination)
        if chosen is None:
            chosen = fallback
        if chosen is None:
            continue
        pairs.append(chosen)
        if layout == "opposing" and len(pairs) < count:
            pairs.append((chosen[1], chosen[0]))
        used.update(chosen)
    if len(pairs) < count:
        raise RuntimeError(
            f"only {len(pairs)} {layout} feasible sessions on the "
            f"experiment network, needed {count}"
        )
    return tuple(pairs)


def alice_bob_network(config: Fig6Config) -> WirelessNetwork:
    """The COPE relay chain: A(0) -- R(1) -- B(2), no direct A-B link.

    All three nodes sit within carrier-sense range, so the ideal MAC
    serializes their transmissions (no hidden-terminal blanking at the
    relay); information still has to cross via R because A and B share
    no link.
    """
    spacing = config.xor_spacing
    positions = [[0.0, 0.0], [spacing, 0.0], [2 * spacing, 0.0]]
    quality = config.xor_link_quality
    links = {
        (0, 1): quality,
        (1, 0): quality,
        (1, 2): quality,
        (2, 1): quality,
    }
    return WirelessNetwork(positions, links, config.xor_range)


#: Bump when the multi-session emulation changes in a way that
#: invalidates previously cached Fig. 6 job results.
FIG6_JOB_SCHEMA = 1


@dataclass(frozen=True)
class Fig6Job:
    """One protocol at one session count, as a cacheable job."""

    config: Fig6Config
    protocol: str
    session_count: int

    def cache_key(self) -> str:
        """Stable content hash of this run."""
        return stable_hash(
            {
                "kind": "fig6-multisession",
                "schema": FIG6_JOB_SCHEMA,
                "config": self.config,
                "protocol": self.protocol,
                "session_count": self.session_count,
            }
        )


@dataclass(frozen=True)
class Fig6XorJob:
    """One Alice-Bob run, with or without the XOR relay."""

    config: Fig6Config
    use_xor: bool

    def cache_key(self) -> str:
        """Stable content hash of this run."""
        return stable_hash(
            {
                "kind": "fig6-xor-demo",
                "schema": FIG6_JOB_SCHEMA,
                "config": self.config,
                "use_xor": self.use_xor,
            }
        )


def _mesh_plans(
    config: Fig6Config, protocol: str, session_count: int
) -> Dict[int, SessionPlan]:
    network = fig6_network(config)
    endpoints = fig6_endpoints(network, max(config.session_counts))
    chosen = {
        sid: endpoints[sid - 1] for sid in range(1, session_count + 1)
    }
    if protocol == "omnc-multi":
        return dict(plan_omnc_multi(network, chosen).plans)
    if protocol == "more-per-flow":
        return {
            sid: plan_more(network, source, destination)
            for sid, (source, destination) in chosen.items()
        }
    raise ValueError(f"unknown fig6 protocol {protocol!r}")


def execute_fig6_job(job: Fig6Job) -> MultiSessionOutcome:
    """Emulate one protocol at one session count on the reference mesh."""
    config = job.config
    network = fig6_network(config)
    plans = _mesh_plans(config, job.protocol, job.session_count)
    return run_multi_session(
        network,
        plans,
        config=config.session_config(),
        rng=RngFactory(config.session_seed),
        protocol_label=job.protocol,
    )


def execute_fig6_xor_job(job: Fig6XorJob) -> MultiSessionOutcome:
    """Emulate the Alice-Bob exchange, with or without XOR relaying."""
    config = job.config
    network = alice_bob_network(config)
    plans: Dict[int, SessionPlan] = {
        1: plan_more(network, 0, 2),
        2: plan_more(network, 2, 0),
    }
    xor_pairs = plan_intersession_pairs(plans) if job.use_xor else None
    return run_multi_session(
        network,
        plans,
        config=SessionConfig(
            max_seconds=config.xor_duration,
            target_generations=config.xor_generations,
            blocks=config.blocks,
            block_size=config.block_size,
        ),
        rng=RngFactory(config.session_seed),
        xor_pairs=xor_pairs,
        protocol_label="xor-relay" if job.use_xor else "rlnc-baseline",
    )


def run_fig6(
    config: Optional[Fig6Config] = None,
    *,
    registry: Optional[obs.MetricsRegistry] = None,
    policy: Optional[ExecutionPolicy] = None,
) -> Fig6Result:
    """Run the sweep and the XOR panel; every run identically seeded.

    Each (protocol, N) cell and each XOR arm is an independent cacheable
    job, so ``policy`` can spread them over workers.  A job failure
    surfaces as ``RuntimeError`` — the figure needs every cell.
    """
    config = config or Fig6Config()
    network = fig6_network(config)
    endpoints = fig6_endpoints(network, max(config.session_counts))
    mesh_jobs = [
        Fig6Job(config=config, protocol=protocol, session_count=count)
        for count in config.session_counts
        for protocol in _PROTOCOLS
    ]
    xor_jobs = [
        Fig6XorJob(config=config, use_xor=use_xor)
        for use_xor in (False, True)
    ]
    specs = [
        JobSpec(key=job.cache_key(), fn=execute_fig6_job, payload=job)
        for job in mesh_jobs
    ] + [
        JobSpec(key=job.cache_key(), fn=execute_fig6_xor_job, payload=job)
        for job in xor_jobs
    ]
    outcomes = execute_jobs(specs, policy, registry=registry)
    values: List[MultiSessionOutcome] = []
    for spec, outcome in zip(specs, outcomes):
        if not isinstance(outcome, JobResult):
            raise RuntimeError(
                f"fig6 job failed: {outcome.error}: {outcome.message}"
            )
        values.append(outcome.value)
    points: List[Fig6Point] = []
    cursor = 0
    for count in config.session_counts:
        cell = {}
        for protocol in _PROTOCOLS:
            cell[protocol] = values[cursor]
            cursor += 1
        points.append(Fig6Point(session_count=count, outcomes=cell))
    xor_demo = Fig6XorResult(baseline=values[cursor], xor=values[cursor + 1])
    return Fig6Result(
        config=config,
        endpoints=endpoints,
        points=tuple(points),
        xor_demo=xor_demo,
    )


def main(
    smoke: bool = False, policy: Optional[ExecutionPolicy] = None
) -> None:
    """Print the throughput/fairness table and the XOR panel."""
    config = Fig6Config.smoke() if smoke else Fig6Config()
    result = run_fig6(config, policy=policy)
    print("Figure 6 — concurrent unicasts over shared airtime")
    print(
        f"{config.node_count}-node mesh (avg {config.density:.0f} "
        f"neighbors), {config.duration:.0f} s per run; sessions "
        + ", ".join(
            f"{s}->{d}" for s, d in result.endpoints
        )
    )
    header = (
        f"{'N':>3s}  {'omnc agg B/s':>12s} {'omnc fair':>9s}  "
        f"{'more agg B/s':>12s} {'more fair':>9s}"
    )
    print(header)
    for point in result.points:
        print(
            f"{point.session_count:3d}  "
            f"{point.aggregate('omnc-multi'):12.0f} "
            f"{point.fairness('omnc-multi'):9.3f}  "
            f"{point.aggregate('more-per-flow'):12.0f} "
            f"{point.fairness('more-per-flow'):9.3f}"
        )
    demo = result.xor_demo
    print("Alice-Bob XOR relay (two opposing flows through one relay):")
    print(
        f"  rlnc baseline: {demo.baseline.transmissions} transmissions, "
        f"aggregate {demo.baseline.aggregate_throughput_bps:.0f} B/s"
    )
    print(
        f"  xor relay:     {demo.xor.transmissions} transmissions "
        f"({demo.xor.xor_transmissions} XORed), "
        f"aggregate {demo.xor.aggregate_throughput_bps:.0f} B/s"
    )
    print(f"  airtime saving: {demo.airtime_saving:.1%}")


def _module_main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    add_execution_arguments(parser)
    args = parser.parse_args(argv)
    main(smoke=args.smoke, policy=policy_from_args(args))


if __name__ == "__main__":
    _module_main()
