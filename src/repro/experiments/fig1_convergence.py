"""Figure 1 — convergence of the distributed rate control algorithm.

The paper plots the per-node broadcast rate (bytes/second) against the
iteration index on a small sample topology with channel capacity
10^5 bytes/second and tagged link qualities, observing convergence
"within a few rounds of iterations".

This experiment runs Table 1 on :func:`repro.topology.random_network.
fig1_sample_topology`, records the recovered rate trajectory of every
transmitting node, and reports the iteration at which each trajectory
settles.  Run as a module to print the series::

    python -m repro.experiments.fig1_convergence
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.optimization.problem import session_graph_from_network
from repro.optimization.rate_control import (
    RateControlAlgorithm,
    RateControlConfig,
    RateControlResult,
)
from repro.optimization.sunicast import solve_sunicast
from repro.topology.random_network import fig1_sample_topology

FIG1_CAPACITY = 1e5  # paper: 10^5 bytes/second


@dataclass(frozen=True)
class ConvergenceSeries:
    """One figure-1 curve set.

    Attributes:
        iterations: x-axis (1-based iteration indices).
        rates_bps: per-node broadcast-rate series in bytes/second.
        settled_iteration: first iteration after which every rate stays
            within ``settle_tolerance`` (relative) of its final value.
        lp_throughput_bps: the centralized optimum for reference.
        recovered_throughput_bps: the distributed algorithm's gamma_bar.
    """

    iterations: Tuple[int, ...]
    rates_bps: Dict[int, Tuple[float, ...]]
    settled_iteration: int
    lp_throughput_bps: float
    recovered_throughput_bps: float


def run_fig1(
    config: Optional[RateControlConfig] = None,
    *,
    settle_tolerance: float = 0.05,
    registry: Optional[obs.MetricsRegistry] = None,
    tracer: Optional[obs.EventTracer] = None,
) -> ConvergenceSeries:
    """Produce the Fig. 1 convergence series.

    An ``EventTracer`` additionally captures the full dual-price
    trajectory (``rate_control.iteration`` records) behind the plotted
    primal rates.
    """
    network = fig1_sample_topology(capacity=FIG1_CAPACITY)
    graph = session_graph_from_network(network, 0, 5)
    lp = solve_sunicast(graph)
    result = RateControlAlgorithm(
        graph, config, registry=registry, tracer=tracer
    ).run()
    return _series_from_result(graph.capacity, lp.throughput, result, settle_tolerance)


def _series_from_result(
    capacity: float,
    lp_throughput: float,
    result: RateControlResult,
    settle_tolerance: float,
) -> ConvergenceSeries:
    nodes = [
        n
        for n, final_rate in result.broadcast_rates.items()
        if final_rate > 1e-6 or any(h[n] > 1e-6 for h in result.rate_history)
    ]
    series: Dict[int, List[float]] = {n: [] for n in nodes}
    for snapshot in result.rate_history:
        for n in nodes:
            series[n].append(snapshot[n] * capacity)
    settled = _settled_iteration(series, settle_tolerance)
    return ConvergenceSeries(
        iterations=tuple(range(1, len(result.rate_history) + 1)),
        rates_bps={n: tuple(values) for n, values in series.items()},
        settled_iteration=settled,
        lp_throughput_bps=lp_throughput * capacity,
        recovered_throughput_bps=result.throughput * capacity,
    )


def _settled_iteration(
    series: Dict[int, List[float]], tolerance: float
) -> int:
    """First iteration from which every curve stays near its final value."""
    length = max((len(v) for v in series.values()), default=0)
    if length == 0:
        return 0
    settled = length
    for values in series.values():
        final = values[-1]
        scale = max(abs(final), 1e-9)
        index = length
        for k in range(length - 1, -1, -1):
            if abs(values[k] - final) / scale > tolerance:
                break
            index = k
        settled = max(settled if settled != length else 0, index + 1)
    return settled


def main() -> None:
    """Print the Fig. 1 table: iteration vs per-node rate."""
    series = run_fig1()
    nodes = sorted(series.rates_bps)
    print("Figure 1 — distributed rate control convergence")
    print(
        f"sample topology, capacity {FIG1_CAPACITY:.0f} B/s, "
        "step size theta(t) = 1/(0.5 + 0.1 t)"
    )
    header = "iter " + " ".join(f"b[{n}] (B/s)" for n in nodes)
    print(header)
    total = len(series.iterations)
    shown = sorted(set([0, 1, 2, 4, 9, 19, 39, 59, total - 1]) & set(range(total)))
    for k in shown:
        row = f"{series.iterations[k]:4d} " + " ".join(
            f"{series.rates_bps[n][k]:11.0f}" for n in nodes
        )
        print(row)
    print(f"settled (5% band) at iteration {series.settled_iteration} of {total}")
    print(
        f"LP optimum {series.lp_throughput_bps:.0f} B/s, "
        f"recovered {series.recovered_throughput_bps:.0f} B/s"
    )


if __name__ == "__main__":
    main()
