"""Figure 4 — node utility and path utility ratios.

The paper contrasts how much of the selected forwarder set (node
utility) and of the available path diversity (path utility) each coded
protocol actually uses.  oldMORE "tends to prune a large number of nodes
associated with low quality links" — its ratios sit far below OMNC's and
(new) MORE's, which are similar to each other.

Run as a module::

    python -m repro.experiments.fig4_utility
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.emulator.stats import DistributionSummary, ascii_cdf, summarize
from repro.exec import (
    ExecutionPolicy,
    add_execution_arguments,
    policy_from_args,
)
from repro.experiments.common import (
    CampaignConfig,
    CampaignResult,
    run_campaign,
)

UTILITY_PROTOCOLS = ("omnc", "more", "oldmore")


@dataclass(frozen=True)
class Fig4Result:
    """Node- and path-utility distributions per protocol."""

    node_utility: Dict[str, DistributionSummary]
    path_utility: Dict[str, DistributionSummary]
    campaign: CampaignResult


def run_fig4(
    config: Optional[CampaignConfig] = None,
    *,
    policy: Optional[ExecutionPolicy] = None,
) -> Fig4Result:
    """Run the Fig. 4 utility campaign (lossy network)."""
    if config is None:
        config = CampaignConfig.from_environment(quality="lossy")
    campaign = run_campaign(config, policy=policy)
    node_utility: Dict[str, DistributionSummary] = {}
    path_utility: Dict[str, DistributionSummary] = {}
    for protocol in UTILITY_PROTOCOLS:
        nodes, paths = campaign.utilities(protocol)
        node_utility[protocol] = summarize(nodes)
        path_utility[protocol] = summarize(paths)
    return Fig4Result(
        node_utility=node_utility,
        path_utility=path_utility,
        campaign=campaign,
    )


def report(result: Fig4Result) -> None:
    """Print the Fig. 4 summary and CDFs."""
    print("Figure 4 — node and path utility ratios (lossy network)")
    print(f"{'protocol':10s} {'node util':>10s} {'path util':>10s}")
    for protocol in UTILITY_PROTOCOLS:
        print(
            f"{protocol:10s} {result.node_utility[protocol].mean:10.2f} "
            f"{result.path_utility[protocol].mean:10.3f}"
        )
    for protocol in UTILITY_PROTOCOLS:
        print()
        print(
            ascii_cdf(
                result.node_utility[protocol],
                label=f"{protocol} node-utility CDF",
            )
        )


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    add_execution_arguments(parser)
    args = parser.parse_args(argv)
    report(run_fig4(policy=policy_from_args(args)))


if __name__ == "__main__":
    main()
