"""Figure 5 (extension) — re-planning under drift and node failure.

The paper stops at a static pipeline and notes (Sec. 4) that when link
qualities change, node selection and rate allocation "have to be
re-initiated, which brings a certain amount of overhead".  This
experiment quantifies the trade-off the authors left open: a session
runs under a scenario in which, one third in, link qualities drift and
the plan's busiest relay dies.  Three controllers face it:

* **oblivious** — never re-plans (the paper's pipeline);
* **periodic** — re-plans every k epochs, needed or not;
* **drift-triggered** — re-plans when probed drift crosses a threshold.

Every re-plan charges the measured Sec. 4 control-plane cost
(node-selection flood + rate-control message census) as stalled
airtime, and OMNC warm-starts each re-plan from the previous run's
dual prices.  The headline metric is post-event throughput: the
oblivious plan keeps pushing packets through a dead relay, while the
drift-triggered controller pays one re-initiation and routes around
it.  Run as a module to print the comparison::

    python -m repro.experiments.fig5_adaptation
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.emulator.session import SessionConfig
from repro.exec import (
    ExecutionPolicy,
    JobResult,
    JobSpec,
    add_execution_arguments,
    execute_jobs,
    policy_from_args,
    stable_hash,
)
from repro.protocols.adaptive import make_planner
from repro.protocols.more import plan_more
from repro.protocols.omnc import plan_omnc
from repro.routing.node_selection import NodeSelectionError
from repro.scenario import (
    AdaptiveSessionResult,
    ScenarioEvent,
    ScenarioSpec,
    make_policy,
    run_adaptive_session,
)
from repro.topology.graph import WirelessNetwork
from repro.topology.phy import lossy_phy
from repro.topology.random_network import random_network
from repro.util.rng import RngFactory


@dataclass(frozen=True)
class Fig5Config:
    """Knobs of the adaptation experiment.

    ``smoke()`` returns a reduced configuration for CI: same shape,
    a fraction of the emulated time.
    """

    node_count: int = 40
    seed: int = 2008
    session_seed: int = 7
    duration: float = 240.0
    epoch_seconds: float = 20.0
    drift_sigma: float = 0.5
    drift_threshold: float = 0.02
    periodic_every: int = 2
    protocol: str = "omnc"
    min_forwarders: int = 5

    @classmethod
    def smoke(cls) -> "Fig5Config":
        """CI-sized run: ~100x faster, same scenario shape."""
        return cls(node_count=30, duration=60.0, epoch_seconds=10.0)


@dataclass(frozen=True)
class Fig5Result:
    """The three controllers' outcomes on one scenario.

    Attributes:
        config: the experiment configuration.
        scenario: the event schedule all three runs faced.
        source / destination: session endpoints.
        failed_node: the relay the scenario kills (the initial plan's
            busiest forwarder).
        event_time: when drift + failure strike.
        runs: per-policy adaptive results, keyed "oblivious" /
            "periodic" / "drift".
    """

    config: Fig5Config
    scenario: ScenarioSpec
    source: int
    destination: int
    failed_node: int
    event_time: float
    runs: Dict[str, AdaptiveSessionResult]

    def post_event_throughput(self, policy: str) -> float:
        """Payload throughput after the drift/failure event (B/s)."""
        return self.runs[policy].throughput_after(self.event_time)


def _feasible_pair(
    network: WirelessNetwork, min_forwarders: int
) -> Tuple[int, int]:
    """A deterministic session pair with a non-trivial forwarder set."""
    for source in range(network.node_count):
        for destination in range(network.node_count - 1, -1, -1):
            if source == destination:
                continue
            try:
                plan = plan_more(network, source, destination)
            except NodeSelectionError:
                continue
            if len(plan.forwarders.nodes) >= min_forwarders:
                return source, destination
    raise RuntimeError("no feasible session on the experiment network")


def build_scenario(
    network: WirelessNetwork,
    source: int,
    destination: int,
    config: Fig5Config,
) -> Tuple[ScenarioSpec, int]:
    """The failover scenario: drift plus death of the busiest relay.

    The failed node is chosen from the *initial* OMNC plan — the relay
    carrying the highest allocated rate — so an oblivious controller is
    guaranteed to be left leaning on a dead node.
    """
    plan = plan_omnc(network, source, destination)
    relays = {
        node: rate
        for node, rate in plan.rates.items()
        if node not in (source, destination) and rate > 0
    }
    if not relays:
        raise RuntimeError("initial plan uses no relays; nothing to fail")
    busiest = max(relays, key=lambda node: relays[node])
    event_time = config.duration / 3
    spec = ScenarioSpec(
        name="failover",
        duration=config.duration,
        epoch_seconds=config.epoch_seconds,
        events=(
            ScenarioEvent(at=event_time, kind="drift", sigma=config.drift_sigma),
            ScenarioEvent(at=event_time, kind="fail", node=busiest),
        ),
    )
    return spec, busiest


#: Bump when the adaptive-session computation changes in a way that
#: invalidates previously cached Fig. 5 job results.
FIG5_JOB_SCHEMA = 1

_POLICY_KEYS = ("oblivious", "periodic", "drift")


def _fig5_network(config: Fig5Config) -> WirelessNetwork:
    """The experiment topology — a pure function of the config."""
    rng = RngFactory(config.seed)
    return random_network(
        config.node_count,
        phy=lossy_phy(rng=rng.derive("phy")),
        rng=rng.derive("topology"),
    )


def _policy_spec(config: Fig5Config, key: str) -> str:
    specs = {
        "oblivious": "oblivious",
        "periodic": f"periodic:{config.periodic_every}",
        "drift": f"drift:{config.drift_threshold:g}",
    }
    return specs[key]


@dataclass(frozen=True)
class Fig5Job:
    """One controller's run on the failover scenario, as a job.

    The network, endpoints and scenario re-derive deterministically from
    the config, so the job is self-contained: the three policies can run
    on different workers and still face bit-identical randomness.
    """

    config: Fig5Config
    policy_key: str  # "oblivious" | "periodic" | "drift"

    def cache_key(self) -> str:
        """Stable content hash of this controller run."""
        return stable_hash(
            {
                "kind": "fig5-adaptation",
                "schema": FIG5_JOB_SCHEMA,
                "config": self.config,
                "policy_key": self.policy_key,
            }
        )


def execute_fig5_job(job: Fig5Job) -> AdaptiveSessionResult:
    """Run one re-planning policy on the failover scenario."""
    config = job.config
    network = _fig5_network(config)
    source, destination = _feasible_pair(network, config.min_forwarders)
    spec, _busiest = build_scenario(network, source, destination, config)
    planner = make_planner(config.protocol, source, destination)
    return run_adaptive_session(
        network,
        planner,
        make_policy(_policy_spec(config, job.policy_key)),
        spec,
        config=SessionConfig(max_seconds=config.duration),
        rng=RngFactory(config.session_seed),
    )


def run_fig5(
    config: Optional[Fig5Config] = None,
    *,
    registry: Optional[obs.MetricsRegistry] = None,
    policy: Optional[ExecutionPolicy] = None,
) -> Fig5Result:
    """Run the three controllers on the failover scenario.

    Every run uses an identically-seeded RNG factory, so the three
    sessions face bit-identical channel and scheduler randomness — the
    only difference is the re-planning policy.  The runs are submitted
    as independent jobs, so ``policy`` can spread them over workers or
    satisfy them from the result cache; a job failure surfaces as a
    ``RuntimeError`` because the comparison needs all three controllers.
    """
    config = config or Fig5Config()
    network = _fig5_network(config)
    source, destination = _feasible_pair(network, config.min_forwarders)
    spec, busiest = build_scenario(network, source, destination, config)
    jobs = [
        JobSpec(
            key=Fig5Job(config=config, policy_key=key).cache_key(),
            fn=execute_fig5_job,
            payload=Fig5Job(config=config, policy_key=key),
        )
        for key in _POLICY_KEYS
    ]
    outcomes = execute_jobs(jobs, policy, registry=registry)
    runs: Dict[str, AdaptiveSessionResult] = {}
    for key, outcome in zip(_POLICY_KEYS, outcomes):
        if not isinstance(outcome, JobResult):
            raise RuntimeError(
                f"fig5 {key} controller failed: {outcome.error}: "
                f"{outcome.message}"
            )
        runs[key] = outcome.value
    return Fig5Result(
        config=config,
        scenario=spec,
        source=source,
        destination=destination,
        failed_node=busiest,
        event_time=config.duration / 3,
        runs=runs,
    )


def main(
    smoke: bool = False, policy: Optional[ExecutionPolicy] = None
) -> None:
    """Print the adaptation comparison table."""
    config = Fig5Config.smoke() if smoke else Fig5Config()
    result = run_fig5(config, policy=policy)
    print("Figure 5 — mid-run re-planning under drift and node failure")
    print(
        f"{config.protocol} session {result.source} -> {result.destination}, "
        f"{config.node_count} nodes, {config.duration:.0f} s; at "
        f"{result.event_time:.0f} s link qualities drift "
        f"(sigma {config.drift_sigma}) and relay {result.failed_node} dies"
    )
    header = (
        f"{'policy':12s} {'tput B/s':>9s} {'post-event':>10s} "
        f"{'replans':>7s} {'overhead':>9s} {'rc iters':>18s}"
    )
    print(header)
    for key in ("oblivious", "periodic", "drift"):
        run = result.runs[key]
        iters = ",".join(str(i) for i in run.planner_iterations)
        print(
            f"{run.policy:12s} {run.session.throughput_bps:9.0f} "
            f"{result.post_event_throughput(key):10.0f} "
            f"{run.replans:7d} {run.replan_seconds:8.1f}s {iters:>18s}"
        )
    oblivious = result.post_event_throughput("oblivious")
    triggered = result.post_event_throughput("drift")
    if oblivious > 0:
        print(
            f"drift-triggered post-event gain over oblivious: "
            f"{triggered / oblivious:.2f}x"
        )


def _module_main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    add_execution_arguments(parser)
    args = parser.parse_args(argv)
    main(smoke=args.smoke, policy=policy_from_args(args))


if __name__ == "__main__":
    _module_main()
