"""Shared campaign driver for the paper's evaluation (Sec. 5).

One *campaign* reproduces the measurement setup behind Figs. 2-4: a
random network, a set of random unicast sessions with a hop-count
constraint, and all four protocols run on identical sessions.  The
figure-specific experiment modules consume :class:`CampaignResult` and
derive their own metrics.

Paper-scale parameters (300 nodes, 300 sessions, 800 s) are supported
but take hours in pure Python; the default *scale* runs a reduced
campaign with the same shape.  Set ``OMNC_FULL_SCALE=1`` or pass
``scale="paper"`` to run the full thing.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.emulator.session import (
    SessionConfig,
    SessionResult,
    run_coded_session,
    run_unicast_session,
)
from repro.emulator.stats import throughput_gain, utility_ratios
from repro.protocols.base import UnicastPathPlan
from repro.protocols.etx_routing import plan_etx_route
from repro.protocols.more import plan_more
from repro.protocols.oldmore import plan_oldmore
from repro.protocols.omnc import plan_omnc_detailed
from repro.routing.node_selection import NodeSelectionError
from repro.topology.graph import WirelessNetwork
from repro.topology.phy import high_quality_phy, lossy_phy
from repro.topology.random_network import random_network
from repro.util.rng import RngFactory

PROTOCOLS = ("omnc", "more", "oldmore", "etx")


@dataclass(frozen=True)
class CampaignConfig:
    """Knobs of one evaluation campaign.

    The defaults reproduce the paper's setup at reduced scale; the
    class method :meth:`paper_scale` returns the full Sec. 5 parameters.
    """

    node_count: int = 120
    sessions: int = 20
    min_hops: int = 4
    max_hops: int = 10
    quality: str = "lossy"  # or "high"
    session_seconds: float = 200.0
    target_generations: int = 6
    seed: int = 2008
    interference: str = "blanking"
    coding_fidelity: str = "flow"

    def __post_init__(self) -> None:
        if self.node_count < 4:
            raise ValueError("node_count must be >= 4")
        if self.sessions < 1:
            raise ValueError("sessions must be >= 1")
        if not 1 <= self.min_hops <= self.max_hops:
            raise ValueError("need 1 <= min_hops <= max_hops")
        if self.quality not in ("lossy", "high"):
            raise ValueError(f"quality must be 'lossy' or 'high', got {self.quality!r}")

    @classmethod
    def paper_scale(cls, quality: str = "lossy") -> "CampaignConfig":
        """The full Sec. 5 campaign: 300 nodes, 300 sessions, 800 s."""
        return cls(
            node_count=300,
            sessions=300,
            quality=quality,
            session_seconds=800.0,
            target_generations=0,
        )

    @classmethod
    def from_environment(cls, **overrides: object) -> "CampaignConfig":
        """Reduced scale by default; paper scale if OMNC_FULL_SCALE=1."""
        if os.environ.get("OMNC_FULL_SCALE") == "1":
            quality = overrides.pop("quality", "lossy")
            return cls.paper_scale(quality=quality)
        return cls(**overrides)

    def session_config(self) -> SessionConfig:
        """The per-session emulation configuration."""
        return SessionConfig(
            max_seconds=self.session_seconds,
            target_generations=self.target_generations,
            interference=self.interference,
            coding_fidelity=self.coding_fidelity,
        )


@dataclass
class SessionRecord:
    """All four protocols' results on one (source, destination) pair."""

    source: int
    destination: int
    hop_count: int
    results: Dict[str, SessionResult]
    plans: Dict[str, object]

    def gain(self, protocol: str) -> float:
        """Throughput gain of ``protocol`` over ETX routing."""
        return throughput_gain(self.results[protocol], self.results["etx"])

    def utility(self, protocol: str) -> "UtilityRatios":
        """Node/path utility ratios for a coded protocol."""
        plan = self.plans[protocol]
        forwarders = plan.forwarders  # type: ignore[attr-defined]
        return utility_ratios(self.results[protocol], forwarders)


@dataclass
class CampaignResult:
    """Everything a campaign measured."""

    config: CampaignConfig
    network: WirelessNetwork
    records: List[SessionRecord] = field(default_factory=list)
    wall_seconds: float = 0.0
    # Snapshot of the campaign's metrics registry (empty when collection
    # was off): emulator/mac/decoder counters aggregated over every
    # session of every protocol.
    metrics: Dict[str, dict] = field(default_factory=dict)

    def gains(self, protocol: str) -> List[float]:
        """Finite throughput gains for ``protocol`` across sessions."""
        values = [r.gain(protocol) for r in self.records]
        return [v for v in values if v != float("inf")]

    def mean_gain(self, protocol: str) -> float:
        """Average throughput gain (the paper's headline statistic)."""
        values = self.gains(protocol)
        return sum(values) / len(values) if values else 0.0

    def mean_queues(self, protocol: str) -> List[float]:
        """Per-session mean queue sizes for ``protocol`` (Fig. 3)."""
        return [r.results[protocol].mean_queue() for r in self.records]

    def per_node_queues(self, protocol: str) -> List[float]:
        """Per-node time-averaged queues pooled across sessions (Fig. 3)."""
        values: List[float] = []
        for record in self.records:
            result = record.results[protocol]
            for node, tx in result.transmissions.items():
                if tx > 0:
                    values.append(result.average_queues[node])
        return values

    def utilities(self, protocol: str) -> Tuple[List[float], List[float]]:
        """(node utility, path utility) lists for a coded protocol."""
        nodes: List[float] = []
        paths: List[float] = []
        for record in self.records:
            ratios = record.utility(protocol)
            nodes.append(ratios.node_utility)
            paths.append(ratios.path_utility)
        return nodes, paths


def build_network(config: CampaignConfig) -> Tuple[RngFactory, WirelessNetwork]:
    """Deploy the campaign topology with the requested quality profile."""
    rng = RngFactory(config.seed)
    if config.quality == "high":
        phy = high_quality_phy(rng=rng.derive("phy"))
    else:
        phy = lossy_phy(rng=rng.derive("phy"))
    network = random_network(
        config.node_count, phy=phy, rng=rng.derive("topology")
    )
    return rng, network


def pick_sessions(
    config: CampaignConfig, network: WirelessNetwork
) -> List[Tuple[int, int, UnicastPathPlan]]:
    """Draw random endpoint pairs honouring the hop-count constraint."""
    # Frozen stdlib stream: migrating to a numpy generator would redraw
    # every campaign's endpoint pairs and shift all figure outputs.
    rng = random.Random(config.seed * 31 + 7)  # repro: rng-root
    chosen: List[Tuple[int, int, UnicastPathPlan]] = []
    attempts = 0
    limit = config.sessions * 200
    while len(chosen) < config.sessions and attempts < limit:
        attempts += 1
        source, destination = rng.sample(range(network.node_count), 2)
        try:
            etx_plan = plan_etx_route(network, source, destination)
        except NodeSelectionError:
            continue
        if not config.min_hops <= etx_plan.hop_count <= config.max_hops:
            continue
        try:
            # Coded planning must succeed too for a comparable session.
            plan_more(network, source, destination)
        except NodeSelectionError:
            continue
        chosen.append((source, destination, etx_plan))
    if len(chosen) < config.sessions:
        raise RuntimeError(
            f"only found {len(chosen)} feasible sessions after {attempts} draws; "
            "relax the hop-count constraint or enlarge the network"
        )
    return chosen


def run_session(
    network: WirelessNetwork,
    source: int,
    destination: int,
    etx_plan: UnicastPathPlan,
    session_config: SessionConfig,
    rng: RngFactory,
    registry: Optional[obs.MetricsRegistry] = None,
) -> SessionRecord:
    """Run all four protocols on one session."""
    results: Dict[str, SessionResult] = {}
    plans: Dict[str, object] = {"etx": etx_plan}

    results["etx"] = run_unicast_session(
        network, etx_plan, config=session_config,
        rng=rng.spawn(f"etx-{source}-{destination}"),
        registry=registry,
    )
    omnc_report = plan_omnc_detailed(network, source, destination)
    plans["omnc"] = omnc_report.plan
    results["omnc"] = run_coded_session(
        network, omnc_report.plan, config=session_config,
        rng=rng.spawn(f"omnc-{source}-{destination}"),
        registry=registry,
    )
    more_plan = plan_more(network, source, destination)
    plans["more"] = more_plan
    results["more"] = run_coded_session(
        network, more_plan, config=session_config,
        rng=rng.spawn(f"more-{source}-{destination}"),
        registry=registry,
    )
    oldmore_plan = plan_oldmore(network, source, destination)
    plans["oldmore"] = oldmore_plan
    results["oldmore"] = run_coded_session(
        network, oldmore_plan, config=session_config,
        rng=rng.spawn(f"oldmore-{source}-{destination}"),
        protocol_label="oldmore",
        registry=registry,
    )
    hop_count = etx_plan.hop_count
    return SessionRecord(
        source=source,
        destination=destination,
        hop_count=hop_count,
        results=results,
        plans=plans,
    )


def run_campaign(
    config: Optional[CampaignConfig] = None,
    *,
    registry: Optional[obs.MetricsRegistry] = None,
) -> CampaignResult:
    """Run the full four-protocol campaign.

    Pass an enabled :class:`repro.obs.MetricsRegistry` (or enable the
    global one) to aggregate emulator/decoder/MAC metrics across every
    session; the snapshot lands in :attr:`CampaignResult.metrics`.
    """
    config = config or CampaignConfig()
    metrics = obs.resolve(registry)
    sessions_counter = metrics.counter(
        "campaign.sessions", "four-protocol sessions completed"
    )
    started = time.time()  # repro: ignore[RPR002] campaign wall-time metric
    rng, network = build_network(config)
    sessions = pick_sessions(config, network)
    session_config = config.session_config()
    campaign = CampaignResult(config=config, network=network)
    for source, destination, etx_plan in sessions:
        record = run_session(
            network, source, destination, etx_plan, session_config, rng,
            registry=registry,
        )
        campaign.records.append(record)
        sessions_counter.inc()
    campaign.wall_seconds = time.time() - started  # repro: ignore[RPR002]
    if metrics.enabled:
        metrics.gauge(
            "campaign.wall_seconds", "wall-clock time of the campaign"
        ).set(campaign.wall_seconds)
        campaign.metrics = metrics.snapshot()
    return campaign
