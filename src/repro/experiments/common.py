"""Shared campaign driver for the paper's evaluation (Sec. 5).

One *campaign* reproduces the measurement setup behind Figs. 2-4: a
random network, a set of random unicast sessions with a hop-count
constraint, and all four protocols run on identical sessions.  The
figure-specific experiment modules consume :class:`CampaignResult` and
derive their own metrics.

Campaigns execute on the :mod:`repro.exec` engine: each session is one
content-hashed job carrying its own RNG derivation (see
:func:`session_rng`), so an :class:`~repro.exec.ExecutionPolicy` with
any worker count — and any scheduling order — reproduces the serial
result bit for bit.  A failed session becomes a recorded
:class:`CampaignFailure` instead of aborting the run, and a result
cache makes interrupted paper-scale sweeps resumable.

Paper-scale parameters (300 nodes, 300 sessions, 800 s) are supported
but take hours serially; the default *scale* runs a reduced campaign
with the same shape.  Set ``OMNC_FULL_SCALE=1`` or pass
``scale="paper"`` to run the full thing, and ``--jobs N`` (or an
explicit policy) to spread it over cores.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.emulator.session import (
    SessionConfig,
    SessionResult,
    run_coded_session,
    run_unicast_session,
)
from repro.emulator.stats import throughput_gain, utility_ratios
from repro.exec import (
    ExecutionPolicy,
    JobResult,
    JobSpec,
    execute_jobs,
    stable_hash,
)
from repro.protocols.base import UnicastPathPlan
from repro.protocols.etx_routing import plan_etx_route
from repro.protocols.more import plan_more
from repro.protocols.oldmore import plan_oldmore
from repro.protocols.omnc import plan_omnc_detailed
from repro.routing.node_selection import NodeSelectionError
from repro.topology.graph import WirelessNetwork
from repro.topology.phy import high_quality_phy, lossy_phy
from repro.topology.random_network import random_network
from repro.util.rng import RngFactory

PROTOCOLS = ("omnc", "more", "oldmore", "etx")

#: Bump when the per-session computation changes in a way that
#: invalidates previously cached job results (feeds the job hash).
SESSION_JOB_SCHEMA = 1


@dataclass(frozen=True)
class CampaignConfig:
    """Knobs of one evaluation campaign.

    The defaults reproduce the paper's setup at reduced scale; the
    class method :meth:`paper_scale` returns the full Sec. 5 parameters.
    """

    node_count: int = 120
    sessions: int = 20
    min_hops: int = 4
    max_hops: int = 10
    quality: str = "lossy"  # or "high"
    session_seconds: float = 200.0
    target_generations: int = 6
    seed: int = 2008
    interference: str = "blanking"
    coding_fidelity: str = "flow"

    def __post_init__(self) -> None:
        if self.node_count < 4:
            raise ValueError("node_count must be >= 4")
        if self.sessions < 1:
            raise ValueError("sessions must be >= 1")
        if not 1 <= self.min_hops <= self.max_hops:
            raise ValueError("need 1 <= min_hops <= max_hops")
        if self.quality not in ("lossy", "high"):
            raise ValueError(f"quality must be 'lossy' or 'high', got {self.quality!r}")

    @classmethod
    def paper_scale(cls, quality: str = "lossy") -> "CampaignConfig":
        """The full Sec. 5 campaign: 300 nodes, 300 sessions, 800 s."""
        return cls(
            node_count=300,
            sessions=300,
            quality=quality,
            session_seconds=800.0,
            target_generations=0,
        )

    @classmethod
    def from_environment(cls, **overrides: object) -> "CampaignConfig":
        """Reduced scale by default; paper scale if OMNC_FULL_SCALE=1."""
        if os.environ.get("OMNC_FULL_SCALE") == "1":
            quality = overrides.pop("quality", "lossy")
            return cls.paper_scale(quality=quality)
        return cls(**overrides)

    def session_config(self) -> SessionConfig:
        """The per-session emulation configuration."""
        return SessionConfig(
            max_seconds=self.session_seconds,
            target_generations=self.target_generations,
            interference=self.interference,
            coding_fidelity=self.coding_fidelity,
        )


@dataclass
class SessionRecord:
    """All four protocols' results on one (source, destination) pair."""

    source: int
    destination: int
    hop_count: int
    results: Dict[str, SessionResult]
    plans: Dict[str, object]

    def gain(self, protocol: str) -> float:
        """Throughput gain of ``protocol`` over ETX routing."""
        return throughput_gain(self.results[protocol], self.results["etx"])

    def utility(self, protocol: str) -> "UtilityRatios":
        """Node/path utility ratios for a coded protocol."""
        plan = self.plans[protocol]
        forwarders = plan.forwarders  # type: ignore[attr-defined]
        return utility_ratios(self.results[protocol], forwarders)


def _canonical(value: object) -> object:
    """Rebuild ``value`` in an order-independent, hashable-by-pickle form.

    Set iteration order is not a measured quantity — two processes can
    build value-equal ``frozenset``s whose pickles differ byte for byte —
    so sets and mapping items are sorted by the repr of their (already
    canonical) elements before :meth:`CampaignResult.digest` pickles the
    structure.  Dataclasses decompose into (class name, field items) so
    plans and results from any process compare structurally.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (
            type(value).__name__,
            tuple(
                (spec.name, _canonical(getattr(value, spec.name)))
                for spec in dataclasses.fields(value)
            ),
        )
    if isinstance(value, dict):
        items = [(_canonical(k), _canonical(v)) for k, v in value.items()]
        return ("mapping", tuple(sorted(items, key=repr)))
    if isinstance(value, (set, frozenset)):
        return ("set", tuple(sorted((_canonical(v) for v in value), key=repr)))
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(v) for v in value)
    if isinstance(value, np.generic):
        return value.item()
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return value
    raise TypeError(
        f"cannot canonicalise {type(value).__name__} for a campaign digest"
    )


@dataclass(frozen=True)
class CampaignFailure:
    """One session slot the campaign could not complete.

    ``stage`` is ``"selection"`` when no feasible endpoint pair existed
    for the slot (the old abort-the-campaign case) and ``"session"``
    when the session job itself failed — raised, timed out, or crashed
    its worker.  Either way the rest of the campaign's work survives.
    """

    session_index: int
    stage: str  # "selection" | "session"
    source: int = -1
    destination: int = -1
    error: str = ""
    message: str = ""
    attempts: int = 0


@dataclass
class CampaignResult:
    """Everything a campaign measured."""

    config: CampaignConfig
    network: WirelessNetwork
    records: List[SessionRecord] = field(default_factory=list)
    failures: List[CampaignFailure] = field(default_factory=list)
    cache_hits: int = 0
    wall_seconds: float = 0.0
    # Snapshot of the campaign's metrics registry (empty when collection
    # was off): emulator/mac/decoder counters aggregated over every
    # session of every protocol.
    metrics: Dict[str, dict] = field(default_factory=dict)

    def digest(self) -> str:
        """Content hash of everything the campaign *measured*.

        Covers the configuration, every session record, and every
        recorded failure — but not wall-clock time or cache accounting,
        which legitimately differ run to run.  Equal digests mean the
        campaigns are interchangeable; the executor tests use this to
        prove serial and parallel execution agree bit for bit.
        """
        failures = [
            (f.session_index, f.stage, f.source, f.destination, f.error)
            for f in self.failures
        ]
        canonical = _canonical((self.config, self.records, failures))
        # repr, not pickle: pickle memoises repeated objects by identity,
        # so value-identical campaigns with different sharing patterns
        # (serial vs unpickled-from-workers) would hash differently.
        return hashlib.sha256(repr(canonical).encode("utf-8")).hexdigest()

    def gains(self, protocol: str) -> List[float]:
        """Finite throughput gains for ``protocol`` across sessions."""
        values = [r.gain(protocol) for r in self.records]
        return [v for v in values if v != float("inf")]

    def mean_gain(self, protocol: str) -> float:
        """Average throughput gain (the paper's headline statistic)."""
        values = self.gains(protocol)
        return sum(values) / len(values) if values else 0.0

    def mean_queues(self, protocol: str) -> List[float]:
        """Per-session mean queue sizes for ``protocol`` (Fig. 3)."""
        return [r.results[protocol].mean_queue() for r in self.records]

    def per_node_queues(self, protocol: str) -> List[float]:
        """Per-node time-averaged queues pooled across sessions (Fig. 3)."""
        values: List[float] = []
        for record in self.records:
            result = record.results[protocol]
            for node, tx in result.transmissions.items():
                if tx > 0:
                    values.append(result.average_queues[node])
        return values

    def utilities(self, protocol: str) -> Tuple[List[float], List[float]]:
        """(node utility, path utility) lists for a coded protocol."""
        nodes: List[float] = []
        paths: List[float] = []
        for record in self.records:
            ratios = record.utility(protocol)
            nodes.append(ratios.node_utility)
            paths.append(ratios.path_utility)
        return nodes, paths


def build_network(config: CampaignConfig) -> Tuple[RngFactory, WirelessNetwork]:
    """Deploy the campaign topology with the requested quality profile."""
    rng = RngFactory(config.seed)
    if config.quality == "high":
        phy = high_quality_phy(rng=rng.derive("phy"))
    else:
        phy = lossy_phy(rng=rng.derive("phy"))
    network = random_network(
        config.node_count, phy=phy, rng=rng.derive("topology")
    )
    return rng, network


def pick_sessions(
    config: CampaignConfig,
    network: WirelessNetwork,
    *,
    strict: bool = True,
) -> List[Tuple[int, int, UnicastPathPlan]]:
    """Draw random endpoint pairs honouring the hop-count constraint.

    With ``strict`` (the default for direct callers) a shortfall raises;
    the campaign driver passes ``strict=False`` and records the missing
    slots as :class:`CampaignFailure` entries instead, so one degenerate
    topology cannot discard the sessions that *are* feasible.
    """
    # Frozen stdlib stream: migrating to a numpy generator would redraw
    # every campaign's endpoint pairs and shift all figure outputs.
    rng = random.Random(config.seed * 31 + 7)  # repro: rng-root
    chosen: List[Tuple[int, int, UnicastPathPlan]] = []
    attempts = 0
    limit = config.sessions * 200
    while len(chosen) < config.sessions and attempts < limit:
        attempts += 1
        source, destination = rng.sample(range(network.node_count), 2)
        try:
            etx_plan = plan_etx_route(network, source, destination)
        except NodeSelectionError:
            continue
        if not config.min_hops <= etx_plan.hop_count <= config.max_hops:
            continue
        try:
            # Coded planning must succeed too for a comparable session.
            plan_more(network, source, destination)
        except NodeSelectionError:
            continue
        chosen.append((source, destination, etx_plan))
    if len(chosen) < config.sessions and strict:
        raise RuntimeError(
            f"only found {len(chosen)} feasible sessions after {attempts} draws; "
            "relax the hop-count constraint or enlarge the network"
        )
    return chosen


def session_rng(seed: int, session_index: int) -> RngFactory:
    """The independent per-session RNG factory of one campaign slot.

    Derived from ``(campaign seed, session index)`` alone — never from a
    stream threaded through the campaign loop — so any subset of
    sessions can run in any order, on any worker, and draw exactly the
    randomness the serial campaign would have given them.  This is the
    seam that makes parallel execution bit-identical to serial.
    """
    return RngFactory(seed).spawn(f"session-{session_index}")


def run_session(
    network: WirelessNetwork,
    source: int,
    destination: int,
    etx_plan: UnicastPathPlan,
    session_config: SessionConfig,
    rng: RngFactory,
    registry: Optional[obs.MetricsRegistry] = None,
) -> SessionRecord:
    """Run all four protocols on one session.

    ``rng`` must be the session's *own* factory (see
    :func:`session_rng`); each protocol spawns an independent child from
    it, so the per-(session, protocol) streams depend only on the
    campaign seed and the session index — never on which other sessions
    ran, or where.
    """
    results: Dict[str, SessionResult] = {}
    plans: Dict[str, object] = {"etx": etx_plan}

    results["etx"] = run_unicast_session(
        network, etx_plan, config=session_config,
        rng=rng.spawn("etx"),
        registry=registry,
    )
    omnc_report = plan_omnc_detailed(network, source, destination)
    plans["omnc"] = omnc_report.plan
    results["omnc"] = run_coded_session(
        network, omnc_report.plan, config=session_config,
        rng=rng.spawn("omnc"),
        registry=registry,
    )
    more_plan = plan_more(network, source, destination)
    plans["more"] = more_plan
    results["more"] = run_coded_session(
        network, more_plan, config=session_config,
        rng=rng.spawn("more"),
        registry=registry,
    )
    oldmore_plan = plan_oldmore(network, source, destination)
    plans["oldmore"] = oldmore_plan
    results["oldmore"] = run_coded_session(
        network, oldmore_plan, config=session_config,
        rng=rng.spawn("oldmore"),
        protocol_label="oldmore",
        registry=registry,
    )
    hop_count = etx_plan.hop_count
    return SessionRecord(
        source=source,
        destination=destination,
        hop_count=hop_count,
        results=results,
        plans=plans,
    )


@dataclass(frozen=True)
class SessionJob:
    """Picklable unit of campaign work: one session, all four protocols.

    Everything a worker needs is derivable from the fields: the network
    rebuilds deterministically from the config, the ETX plan re-derives
    from the endpoints, and the randomness comes from
    :func:`session_rng`.  That self-containment is what makes the job
    executable on any worker — or satisfiable from the result cache —
    with an identical outcome.
    """

    config: CampaignConfig
    session_index: int
    source: int
    destination: int
    collect_metrics: bool = False

    def cache_key(self) -> str:
        """Stable content hash identifying this job's result.

        Only *execution-relevant* knobs participate: ``sessions`` /
        ``min_hops`` / ``max_hops`` steer endpoint selection, not what
        the emulator computes for a given endpoint pair, so sweeping the
        session count re-uses every already-cached session.
        """
        config = self.config
        return stable_hash(
            {
                "kind": "campaign-session",
                "schema": SESSION_JOB_SCHEMA,
                "node_count": config.node_count,
                "quality": config.quality,
                "seed": config.seed,
                "session_seconds": config.session_seconds,
                "target_generations": config.target_generations,
                "interference": config.interference,
                "coding_fidelity": config.coding_fidelity,
                "session_index": self.session_index,
                "source": self.source,
                "destination": self.destination,
                "collect_metrics": self.collect_metrics,
            }
        )


@dataclass(frozen=True)
class SessionJobOutput:
    """What one session job ships back to the campaign driver."""

    record: SessionRecord
    # Rendered snapshot (with histogram samples) of the job's private
    # registry, or None when metrics collection was off.
    metrics: Optional[Dict[str, dict]] = None


# Per-process memo of deployed topologies, keyed by the config fields
# that determine them.  Worker processes run many jobs of one campaign;
# rebuilding the network once per process instead of once per job keeps
# the job overhead negligible.
_NETWORK_CACHE: Dict[Tuple[int, str, int], WirelessNetwork] = {}


def _campaign_network(config: CampaignConfig) -> WirelessNetwork:
    key = (config.node_count, config.quality, config.seed)
    network = _NETWORK_CACHE.get(key)
    if network is None:
        if len(_NETWORK_CACHE) >= 8:  # bound worker memory across sweeps
            _NETWORK_CACHE.clear()
        _, network = build_network(config)
        _NETWORK_CACHE[key] = network
    return network


def execute_session_job(job: SessionJob) -> SessionJobOutput:
    """Run one campaign session end to end (the worker entry point).

    Module-level and self-contained by design: the execution engine
    pickles it by reference into worker processes.  Metrics are
    collected in a private registry and returned as a mergeable
    snapshot, so parent-side aggregation is identical whether the job
    ran in-process or on a worker.
    """
    network = _campaign_network(job.config)
    etx_plan = plan_etx_route(network, job.source, job.destination)
    registry = obs.MetricsRegistry(enabled=job.collect_metrics)
    record = run_session(
        network,
        job.source,
        job.destination,
        etx_plan,
        job.config.session_config(),
        session_rng(job.config.seed, job.session_index),
        registry=registry,
    )
    snapshot = (
        registry.snapshot(include_samples=True) if job.collect_metrics else None
    )
    return SessionJobOutput(record=record, metrics=snapshot)


def campaign_jobs(
    config: CampaignConfig,
    sessions: List[Tuple[int, int, UnicastPathPlan]],
    *,
    collect_metrics: bool = False,
) -> List[JobSpec]:
    """The executable job list of one campaign's selected sessions."""
    specs: List[JobSpec] = []
    for index, (source, destination, _etx_plan) in enumerate(sessions):
        job = SessionJob(
            config=config,
            session_index=index,
            source=source,
            destination=destination,
            collect_metrics=collect_metrics,
        )
        specs.append(
            JobSpec(key=job.cache_key(), fn=execute_session_job, payload=job)
        )
    return specs


def run_campaign(
    config: Optional[CampaignConfig] = None,
    *,
    registry: Optional[obs.MetricsRegistry] = None,
    policy: Optional[ExecutionPolicy] = None,
) -> CampaignResult:
    """Run the full four-protocol campaign on the execution engine.

    ``policy`` selects serial vs parallel execution, the result cache,
    and the per-job timeout/retry budget; the default runs serially with
    no cache — and produces exactly what any parallel policy produces.
    Failed or infeasible sessions are recorded in
    :attr:`CampaignResult.failures` instead of aborting the run.

    Pass an enabled :class:`repro.obs.MetricsRegistry` (or enable the
    global one) to aggregate emulator/decoder/MAC metrics across every
    session; the snapshot lands in :attr:`CampaignResult.metrics`.
    """
    config = config or CampaignConfig()
    policy = policy or ExecutionPolicy()
    metrics = obs.resolve(registry)
    sessions_counter = metrics.counter(
        "campaign.sessions", "four-protocol sessions completed"
    )
    failures_counter = metrics.counter(
        "campaign.sessions_failed", "session slots infeasible or failed"
    )
    started = time.time()  # repro: ignore[RPR002] campaign wall-time metric
    _rng, network = build_network(config)
    sessions = pick_sessions(config, network, strict=False)
    campaign = CampaignResult(config=config, network=network)
    for missing in range(len(sessions), config.sessions):
        campaign.failures.append(
            CampaignFailure(
                session_index=missing,
                stage="selection",
                error="NodeSelectionError",
                message=(
                    "no feasible (source, destination) pair within the "
                    "hop-count constraint; relax min/max_hops or enlarge "
                    "the network"
                ),
            )
        )
        failures_counter.inc()
    specs = campaign_jobs(config, sessions, collect_metrics=metrics.enabled)
    outcomes = execute_jobs(specs, policy, registry=registry)
    for index, ((source, destination, _plan), outcome) in enumerate(
        zip(sessions, outcomes)
    ):
        if isinstance(outcome, JobResult):
            output: SessionJobOutput = outcome.value
            campaign.records.append(output.record)
            if output.metrics is not None:
                metrics.merge_snapshot(output.metrics)
            if outcome.cached:
                campaign.cache_hits += 1
            sessions_counter.inc()
        else:
            campaign.failures.append(
                CampaignFailure(
                    session_index=index,
                    stage="session",
                    source=source,
                    destination=destination,
                    error=outcome.error,
                    message=outcome.message,
                    attempts=outcome.attempts,
                )
            )
            failures_counter.inc()
    campaign.failures.sort(key=lambda failure: failure.session_index)
    campaign.wall_seconds = time.time() - started  # repro: ignore[RPR002]
    if metrics.enabled:
        metrics.gauge(
            "campaign.wall_seconds", "wall-clock time of the campaign"
        ).set(campaign.wall_seconds)
        campaign.metrics = metrics.snapshot()
    return campaign
