"""Experiments regenerating every figure and claim of the paper's
evaluation (Sec. 5), plus the Sec. 4 coding-speed claim.

* :mod:`repro.experiments.common` — the shared four-protocol campaign.
* :mod:`repro.experiments.fig1_convergence` — Fig. 1.
* :mod:`repro.experiments.fig2_throughput` — Fig. 2 (left and right).
* :mod:`repro.experiments.fig3_queue` — Fig. 3.
* :mod:`repro.experiments.fig4_utility` — Fig. 4.
* :mod:`repro.experiments.coding_speed` — the 3-5x acceleration claim.
* :mod:`repro.experiments.convergence_stats` — the ~91-iteration claim.

Each module is runnable (``python -m repro.experiments.<name>``) and
exposes a ``run_*`` function for programmatic use; the benchmark suite
calls those functions with pinned configurations.
"""

from repro.experiments.coding_speed import CodingSpeedPoint, run_coding_speed
from repro.experiments.common import (
    CampaignConfig,
    CampaignResult,
    SessionRecord,
    build_network,
    pick_sessions,
    run_campaign,
    run_session,
)
from repro.experiments.convergence_stats import (
    ConvergenceStats,
    run_convergence_stats,
)
from repro.experiments.fig1_convergence import ConvergenceSeries, run_fig1
from repro.experiments.fig2_throughput import Fig2Result, run_fig2
from repro.experiments.fig3_queue import Fig3Result, run_fig3
from repro.experiments.fig4_utility import Fig4Result, run_fig4

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "CodingSpeedPoint",
    "ConvergenceSeries",
    "ConvergenceStats",
    "Fig2Result",
    "Fig3Result",
    "Fig4Result",
    "SessionRecord",
    "build_network",
    "pick_sessions",
    "run_campaign",
    "run_coding_speed",
    "run_convergence_stats",
    "run_fig1",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_session",
]
