"""Figure 2 — distribution of throughput gains over ETX routing.

Left panel: the lossy network (average link quality ~0.58).  Paper
averages: OMNC 2.45, MORE 1.67, oldMORE 1.12.  Right panel: the same
topology with raised transmission power (average quality ~0.91), where
OMNC's gain shrinks to 1.12 and MORE/oldMORE fall below ETX.

Run as a module::

    python -m repro.experiments.fig2_throughput --quality lossy
    python -m repro.experiments.fig2_throughput --quality high

``OMNC_FULL_SCALE=1`` switches to the paper's 300-node / 300-session
campaign.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, Optional

from repro.emulator.stats import DistributionSummary, ascii_cdf, summarize
from repro.exec import (
    ExecutionPolicy,
    add_execution_arguments,
    policy_from_args,
)
from repro.experiments.common import (
    CampaignConfig,
    CampaignResult,
    run_campaign,
)

CODED_PROTOCOLS = ("omnc", "more", "oldmore")

PAPER_MEAN_GAINS = {
    "lossy": {"omnc": 2.45, "more": 1.67, "oldmore": 1.12},
    "high": {"omnc": 1.12, "more": 0.95, "oldmore": 0.9},
}


@dataclass(frozen=True)
class Fig2Result:
    """Gain distributions for one quality regime."""

    quality: str
    distributions: Dict[str, DistributionSummary]
    campaign: CampaignResult

    def mean_gain(self, protocol: str) -> float:
        """Average throughput gain of ``protocol``."""
        return self.distributions[protocol].mean


def run_fig2(
    quality: str = "lossy",
    config: Optional[CampaignConfig] = None,
    *,
    policy: Optional[ExecutionPolicy] = None,
) -> Fig2Result:
    """Run the Fig. 2 campaign for one quality regime."""
    if config is None:
        config = CampaignConfig.from_environment(quality=quality)
    campaign = run_campaign(config, policy=policy)
    distributions = {
        protocol: summarize(campaign.gains(protocol))
        for protocol in CODED_PROTOCOLS
    }
    return Fig2Result(
        quality=quality, distributions=distributions, campaign=campaign
    )


def main(argv: Optional[list] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quality", choices=("lossy", "high"), default="lossy",
        help="link-quality regime (Fig. 2 left vs right)",
    )
    parser.add_argument("--sessions", type=int, default=None)
    parser.add_argument("--nodes", type=int, default=None)
    add_execution_arguments(parser)
    args = parser.parse_args(argv)

    overrides = {"quality": args.quality}
    if args.sessions is not None:
        overrides["sessions"] = args.sessions
    if args.nodes is not None:
        overrides["node_count"] = args.nodes
    config = CampaignConfig.from_environment(**overrides)
    result = run_fig2(args.quality, config, policy=policy_from_args(args))

    print(f"Figure 2 ({args.quality}) — throughput gain over ETX routing")
    print(
        f"network: {config.node_count} nodes, {config.sessions} sessions, "
        f"avg link quality {result.campaign.network.average_link_probability():.2f}"
    )
    paper = PAPER_MEAN_GAINS[args.quality]
    for protocol in CODED_PROTOCOLS:
        summary = result.distributions[protocol]
        print(
            f"  {protocol:8s} mean gain {summary.mean:5.2f} "
            f"(median {summary.median:.2f}, paper {paper[protocol]:.2f})"
        )
    for protocol in CODED_PROTOCOLS:
        print()
        print(ascii_cdf(result.distributions[protocol], label=f"{protocol} gain CDF"))
    print(f"\ncampaign wall time: {result.campaign.wall_seconds:.1f}s")


if __name__ == "__main__":
    main()
