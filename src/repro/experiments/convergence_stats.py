"""Section 5 claim — the distributed algorithm converges in ~91 iterations.

"The average number of iterations required for the experiments in
Fig. 2 is 91."  This experiment runs the distributed rate control on the
session graphs of a Fig. 2-style campaign and reports the iteration
distribution, plus the quality of the recovered allocation against the
centralized LP optimum.

Run as a module::

    python -m repro.experiments.convergence_stats
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import obs
from repro.emulator.stats import DistributionSummary, summarize
from repro.experiments.common import (
    CampaignConfig,
    build_network,
    pick_sessions,
)
from repro.optimization.problem import session_graph_from_selection
from repro.optimization.rate_control import RateControlAlgorithm, RateControlConfig
from repro.optimization.sunicast import solve_sunicast
from repro.routing.node_selection import select_forwarders

PAPER_MEAN_ITERATIONS = 91


@dataclass(frozen=True)
class ConvergenceStats:
    """Iteration counts and LP-tracking quality over a campaign."""

    iterations: DistributionSummary
    lp_ratio: DistributionSummary  # recovered gamma / LP gamma
    converged_fraction: float


def run_convergence_stats(
    config: Optional[CampaignConfig] = None,
    rate_config: Optional[RateControlConfig] = None,
    *,
    registry: Optional[obs.MetricsRegistry] = None,
) -> ConvergenceStats:
    """Run rate control on every campaign session graph.

    Per-session bookkeeping lives in an observability registry (a
    private enabled one unless the caller supplies their own), so the
    same numbers are available both as the returned summary and as
    ``optimizer.session_*`` metrics.
    """
    if config is None:
        config = CampaignConfig.from_environment(quality="lossy")
    if registry is not None and registry.enabled:
        metrics = registry
    else:
        metrics = obs.MetricsRegistry()
    iterations = metrics.histogram(
        "optimizer.session_iterations", "outer iterations per session graph"
    )
    lp_ratio = metrics.histogram(
        "optimizer.session_lp_ratio", "recovered gamma over the LP optimum"
    )
    converged_counter = metrics.counter(
        "optimizer.sessions_converged", "sessions that met the stopping rule"
    )
    _, network = build_network(config)
    sessions = pick_sessions(config, network)
    for source, destination, _ in sessions:
        forwarders = select_forwarders(network, source, destination)
        graph = session_graph_from_selection(network, forwarders)
        lp = solve_sunicast(graph)
        if lp.throughput <= 1e-9:
            continue
        result = RateControlAlgorithm(graph, rate_config, registry=registry).run()
        iterations.observe(float(result.iterations))
        lp_ratio.observe(result.throughput / lp.throughput)
        if result.converged:
            converged_counter.inc()
    total = iterations.count
    return ConvergenceStats(
        iterations=summarize(iterations.samples()),
        lp_ratio=summarize(lp_ratio.samples()),
        converged_fraction=converged_counter.value / total if total else 0.0,
    )


def main() -> None:
    stats = run_convergence_stats()
    print("Distributed rate control — convergence statistics")
    print(
        f"  iterations: mean {stats.iterations.mean:.0f} "
        f"(paper {PAPER_MEAN_ITERATIONS}), "
        f"median {stats.iterations.median:.0f}, "
        f"max {stats.iterations.maximum:.0f}"
    )
    print(
        f"  recovered gamma / LP optimum: mean {stats.lp_ratio.mean:.3f}, "
        f"min {stats.lp_ratio.minimum:.3f}, max {stats.lp_ratio.maximum:.3f}"
    )
    print(f"  sessions converged before cap: {stats.converged_fraction:.0%}")


if __name__ == "__main__":
    main()
