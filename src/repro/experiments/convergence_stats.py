"""Section 5 claim — the distributed algorithm converges in ~91 iterations.

"The average number of iterations required for the experiments in
Fig. 2 is 91."  This experiment runs the distributed rate control on the
session graphs of a Fig. 2-style campaign and reports the iteration
distribution, plus the quality of the recovered allocation against the
centralized LP optimum.

Run as a module::

    python -m repro.experiments.convergence_stats
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro import obs
from repro.emulator.stats import DistributionSummary, summarize
from repro.exec import (
    ExecutionPolicy,
    JobResult,
    JobSpec,
    add_execution_arguments,
    execute_jobs,
    policy_from_args,
    stable_hash,
)
from repro.experiments.common import (
    CampaignConfig,
    _campaign_network,
    build_network,
    pick_sessions,
)
from repro.optimization.problem import session_graph_from_selection
from repro.optimization.rate_control import RateControlAlgorithm, RateControlConfig
from repro.optimization.sunicast import solve_sunicast
from repro.routing.node_selection import select_forwarders

PAPER_MEAN_ITERATIONS = 91

#: Bump when the per-session optimisation changes in a way that
#: invalidates previously cached convergence-job results.
CONVERGENCE_JOB_SCHEMA = 1


@dataclass(frozen=True)
class ConvergenceStats:
    """Iteration counts and LP-tracking quality over a campaign."""

    iterations: DistributionSummary
    lp_ratio: DistributionSummary  # recovered gamma / LP gamma
    converged_fraction: float


@dataclass(frozen=True)
class ConvergenceJob:
    """One session graph's rate-control run, as an executable job."""

    config: CampaignConfig
    source: int
    destination: int
    rate_config: Optional[RateControlConfig] = None

    def cache_key(self) -> str:
        """Stable content hash of the optimisation this job performs."""
        config = self.config
        return stable_hash(
            {
                "kind": "convergence-session",
                "schema": CONVERGENCE_JOB_SCHEMA,
                "node_count": config.node_count,
                "quality": config.quality,
                "seed": config.seed,
                "source": self.source,
                "destination": self.destination,
                "rate_config": self.rate_config,
            }
        )


@dataclass(frozen=True)
class ConvergenceSample:
    """One job's measurements; ``lp_throughput <= 0`` means skipped."""

    iterations: int
    ratio: float
    converged: bool
    feasible: bool


def execute_convergence_job(job: ConvergenceJob) -> ConvergenceSample:
    """Solve one session graph: LP bound plus distributed recovery."""
    network = _campaign_network(job.config)
    forwarders = select_forwarders(network, job.source, job.destination)
    graph = session_graph_from_selection(network, forwarders)
    lp = solve_sunicast(graph)
    if lp.throughput <= 1e-9:
        return ConvergenceSample(
            iterations=0, ratio=0.0, converged=False, feasible=False
        )
    result = RateControlAlgorithm(graph, job.rate_config).run()
    return ConvergenceSample(
        iterations=result.iterations,
        ratio=result.throughput / lp.throughput,
        converged=result.converged,
        feasible=True,
    )


def convergence_jobs(
    config: CampaignConfig,
    sessions: Sequence[Tuple[int, int, object]],
    rate_config: Optional[RateControlConfig] = None,
) -> List[JobSpec]:
    """Executable job list for a campaign's session graphs."""
    specs: List[JobSpec] = []
    for source, destination, _ in sessions:
        job = ConvergenceJob(
            config=config,
            source=source,
            destination=destination,
            rate_config=rate_config,
        )
        specs.append(
            JobSpec(key=job.cache_key(), fn=execute_convergence_job, payload=job)
        )
    return specs


def run_convergence_stats(
    config: Optional[CampaignConfig] = None,
    rate_config: Optional[RateControlConfig] = None,
    *,
    registry: Optional[obs.MetricsRegistry] = None,
    policy: Optional[ExecutionPolicy] = None,
) -> ConvergenceStats:
    """Run rate control on every campaign session graph.

    Sessions execute as independent jobs on the :mod:`repro.exec`
    engine (the optimisation is deterministic per endpoint pair, so any
    worker count reproduces the serial numbers).  Per-session
    bookkeeping lives in an observability registry (a private enabled
    one unless the caller supplies their own), so the same numbers are
    available both as the returned summary and as ``optimizer.session_*``
    metrics.
    """
    if config is None:
        config = CampaignConfig.from_environment(quality="lossy")
    if registry is not None and registry.enabled:
        metrics = registry
    else:
        metrics = obs.MetricsRegistry()
    iterations = metrics.histogram(
        "optimizer.session_iterations", "outer iterations per session graph"
    )
    lp_ratio = metrics.histogram(
        "optimizer.session_lp_ratio", "recovered gamma over the LP optimum"
    )
    converged_counter = metrics.counter(
        "optimizer.sessions_converged", "sessions that met the stopping rule"
    )
    _, network = build_network(config)
    sessions = pick_sessions(config, network)
    specs = convergence_jobs(config, sessions, rate_config)
    outcomes = execute_jobs(specs, policy, registry=registry)
    for outcome in outcomes:
        if not isinstance(outcome, JobResult):
            continue  # recorded by the engine; the summary skips the slot
        sample: ConvergenceSample = outcome.value
        if not sample.feasible:
            continue
        iterations.observe(float(sample.iterations))
        lp_ratio.observe(sample.ratio)
        if sample.converged:
            converged_counter.inc()
    total = iterations.count
    return ConvergenceStats(
        iterations=summarize(iterations.samples()),
        lp_ratio=summarize(lp_ratio.samples()),
        converged_fraction=converged_counter.value / total if total else 0.0,
    )


def report(stats: ConvergenceStats) -> None:
    """Print the convergence summary table."""
    print("Distributed rate control — convergence statistics")
    print(
        f"  iterations: mean {stats.iterations.mean:.0f} "
        f"(paper {PAPER_MEAN_ITERATIONS}), "
        f"median {stats.iterations.median:.0f}, "
        f"max {stats.iterations.maximum:.0f}"
    )
    print(
        f"  recovered gamma / LP optimum: mean {stats.lp_ratio.mean:.3f}, "
        f"min {stats.lp_ratio.minimum:.3f}, max {stats.lp_ratio.maximum:.3f}"
    )
    print(f"  sessions converged before cap: {stats.converged_fraction:.0%}")


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    add_execution_arguments(parser)
    args = parser.parse_args(argv)
    report(run_convergence_stats(policy=policy_from_args(args)))


if __name__ == "__main__":
    main()
