"""Command-line interface: ``python -m repro <command>``.

A thin front end over the experiment harnesses and the session drivers,
for users who want the paper's numbers without writing Python:

* ``fig1`` / ``fig2`` / ``fig3`` / ``fig4`` — regenerate a figure;
* ``coding-speed`` / ``convergence`` — the two numeric claims;
* ``session`` — plan and emulate one session of a chosen protocol;
* ``multisession`` — plan and emulate N concurrent unicast sessions;
* ``topology`` — generate and save a topology for later reuse;
* ``lint`` — the per-file determinism & invariant static-analysis pass;
* ``check`` — the whole-program architecture & cross-process
  determinism analysis (layering contract, worker-shared state,
  payload picklability, RNG escape).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import obs
from repro.analysis import checker as analysis_checker
from repro.analysis import runner as analysis_runner
from repro.exec import add_execution_arguments, apply_gf_backend, policy_from_args
from repro.emulator.session import (
    SessionConfig,
    run_coded_session,
    run_unicast_session,
)
from repro.emulator.trace import SessionTracer
from repro.protocols.etx_routing import plan_etx_route
from repro.protocols.more import plan_more
from repro.protocols.oldmore import plan_oldmore
from repro.protocols.omnc import plan_omnc
from repro.topology.random_network import random_network
from repro.topology.phy import high_quality_phy, lossy_phy
from repro.topology.serialization import load_network, save_network
from repro.util.rng import RngFactory


def _figure_command(module_main):
    def run(_args: argparse.Namespace) -> int:
        module_main()
        return 0

    return run


def _cmd_fig1(_args: argparse.Namespace) -> int:
    from repro.experiments import fig1_convergence

    fig1_convergence.main()
    return 0


def _cmd_fig2(args: argparse.Namespace) -> int:
    from repro.experiments.fig2_throughput import run_fig2, PAPER_MEAN_GAINS
    from repro.experiments.common import CampaignConfig

    config = CampaignConfig.from_environment(
        quality=args.quality, sessions=args.sessions
    )
    result = run_fig2(args.quality, config, policy=policy_from_args(args))
    paper = PAPER_MEAN_GAINS[args.quality]
    print(f"Figure 2 ({args.quality}): mean throughput gain over ETX")
    for protocol in ("omnc", "more", "oldmore"):
        print(
            f"  {protocol:8s} {result.mean_gain(protocol):5.2f} "
            f"(paper {paper[protocol]:.2f})"
        )
    campaign = result.campaign
    if campaign.cache_hits or campaign.failures:
        print(
            f"  ({campaign.cache_hits} cached session(s), "
            f"{len(campaign.failures)} failed slot(s))"
        )
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    from repro.experiments import fig3_queue

    fig3_queue.report(fig3_queue.run_fig3(policy=policy_from_args(args)))
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    from repro.experiments import fig4_utility

    fig4_utility.report(fig4_utility.run_fig4(policy=policy_from_args(args)))
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    from repro.experiments import fig5_adaptation

    fig5_adaptation.main(smoke=args.smoke, policy=policy_from_args(args))
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    from repro.experiments import fig6_multisession

    fig6_multisession.main(smoke=args.smoke, policy=policy_from_args(args))
    return 0


def _cmd_fig7(args: argparse.Namespace) -> int:
    from repro.experiments import fig7_finite_length

    fig7_finite_length.main(
        smoke=args.smoke, shards=args.shards, policy=policy_from_args(args)
    )
    return 0


def _cmd_coding_speed(_args: argparse.Namespace) -> int:
    from repro.experiments import coding_speed

    coding_speed.main()
    return 0


def _cmd_convergence(args: argparse.Namespace) -> int:
    from repro.experiments import convergence_stats

    convergence_stats.report(
        convergence_stats.run_convergence_stats(
            policy=policy_from_args(args)
        )
    )
    return 0


def _cmd_topology(args: argparse.Namespace) -> int:
    rng = RngFactory(args.seed)
    phy_factory = high_quality_phy if args.quality == "high" else lossy_phy
    network = random_network(
        args.nodes,
        phy=phy_factory(rng=rng.derive("phy")),
        rng=rng.derive("topology"),
    )
    save_network(network, args.output)
    print(
        f"saved {network.node_count}-node network "
        f"({network.link_count()} links, "
        f"avg quality {network.average_link_probability():.2f}) to {args.output}"
    )
    return 0


def _format_metric(record: dict) -> str:
    if record["kind"] == "histogram":
        if record["count"] == 0:
            return "histogram (empty)"
        return (
            f"count {record['count']}, mean {record['mean']:.3g}, "
            f"p50 {record['p50']:.3g}, p99 {record['p99']:.3g}"
        )
    return f"{record['value']:.6g}"


def _print_metrics(registry: "obs.MetricsRegistry") -> None:
    print("metrics:")
    for name, record in registry.snapshot().items():
        print(f"  {name:32s} {_format_metric(record)}")


def _fold_coding(
    config: SessionConfig, network, plan, coding: str
) -> SessionConfig:
    """Fold a one-shot ``--coding`` decision into the session config.

    Static runs (and unicast plans, which code nothing) pass through
    unchanged; adaptive/systematic runs get the controller's initial
    decision — the same one a scenario run would start from.
    """
    from dataclasses import replace

    from repro.protocols.adaptive import make_coding_controller

    controller = make_coding_controller(
        coding, blocks=config.blocks, block_size=config.block_size
    )
    if controller is None:
        return config
    decision = controller.decide(network, plan)
    if decision is None:
        return config
    return replace(
        config, blocks=decision.blocks, systematic=decision.systematic
    )


def _cmd_session(args: argparse.Namespace) -> int:
    apply_gf_backend(args.gf_backend)
    if args.shards < 0:
        raise SystemExit("session: --shards must be >= 0")
    if args.scenario and args.shards:
        raise SystemExit("session: --shards is incompatible with --scenario")
    rng = RngFactory(args.seed)
    if args.topology:
        network = load_network(args.topology)
    else:
        network = random_network(
            args.nodes,
            phy=lossy_phy(rng=rng.derive("phy")),
            rng=rng.derive("topology"),
        )
    config = SessionConfig(
        max_seconds=args.seconds,
        target_generations=args.generations,
        blocks=args.blocks,
    )
    # --metrics turns on the global registry so every layer (engine, MAC,
    # decoder, codec kernels) reports without per-call plumbing.
    registry = obs.enable() if args.metrics else None
    tracer = SessionTracer() if args.trace else None
    source, destination = args.source, args.destination
    adaptive = None
    try:
        if args.scenario:
            from repro.protocols.adaptive import (
                make_coding_controller,
                make_planner,
            )
            from repro.scenario import (
                load_scenario,
                make_policy,
                run_adaptive_session,
            )

            spec = load_scenario(
                args.scenario,
                duration=args.seconds,
                epoch_seconds=min(args.epoch_seconds, args.seconds),
            )
            adaptive = run_adaptive_session(
                network,
                make_planner(args.protocol, source, destination),
                make_policy(args.policy),
                spec,
                config=config,
                rng=rng.spawn("session"),
                tracer=tracer,
                coding_controller=make_coding_controller(
                    args.coding,
                    blocks=config.blocks,
                    block_size=config.block_size,
                ),
            )
            result = adaptive.session
        elif args.shards:
            from repro.emulator.shard import run_sharded_session

            if args.protocol == "etx":
                plan = plan_etx_route(network, source, destination)
            else:
                planners = {
                    "omnc": plan_omnc, "more": plan_more, "oldmore": plan_oldmore
                }
                plan = planners[args.protocol](network, source, destination)
                config = _fold_coding(config, network, plan, args.coding)
            result = run_sharded_session(
                network,
                plan,
                shards=args.shards,
                config=config,
                rng=rng.spawn("session"),
                protocol_label=args.protocol,
                tracer=tracer,
            )
        elif args.protocol == "etx":
            plan = plan_etx_route(network, source, destination)
            result = run_unicast_session(
                network, plan, config=config, rng=rng.spawn("session"),
                tracer=tracer,
            )
        else:
            planners = {"omnc": plan_omnc, "more": plan_more, "oldmore": plan_oldmore}
            plan = planners[args.protocol](network, source, destination)
            config = _fold_coding(config, network, plan, args.coding)
            result = run_coded_session(
                network,
                plan,
                config=config,
                rng=rng.spawn("session"),
                protocol_label=args.protocol,
                tracer=tracer,
            )
    finally:
        if registry is not None:
            obs.disable()
    print(f"{args.protocol} session {source} -> {destination}:")
    print(f"  throughput:  {result.throughput_bps:.0f} B/s")
    print(f"  duration:    {result.duration:.1f} s emulated")
    if result.generations_decoded:
        print(f"  generations: {result.generations_decoded} decoded")
    else:
        print(f"  packets:     {result.packets_delivered} delivered")
    print(f"  mean queue:  {result.mean_queue():.2f} packets")
    if args.coding != "static" and args.protocol != "etx":
        if args.scenario:
            print(f"  coding:      {args.coding} (per-epoch controller)")
        else:
            flag = ", systematic" if config.systematic else ""
            print(f"  coding:      {args.coding} (n={config.blocks}{flag})")
    if adaptive is not None:
        print(
            f"  scenario:    {adaptive.scenario} "
            f"({adaptive.policy} policy)"
        )
        print(
            f"  replans:     {adaptive.replans} "
            f"({adaptive.replan_seconds:.1f} s control overhead)"
        )
        if any(adaptive.planner_iterations):
            iters = ",".join(str(i) for i in adaptive.planner_iterations)
            print(f"  rc iters:    {iters}")
    if tracer is not None:
        lines = tracer.to_jsonl(args.trace)
        print(f"  trace:       {lines} events -> {args.trace}")
    if registry is not None:
        _print_metrics(registry)
    return 0


def _cmd_multisession(args: argparse.Namespace) -> int:
    from repro.emulator.multisession import (
        multi_session_digest,
        run_multi_session,
    )
    from repro.experiments.fig6_multisession import fig6_endpoints
    from repro.protocols.intersession import plan_intersession_pairs
    from repro.protocols.omnc import plan_omnc_multi
    from repro.scenario.spec import ScenarioEvent, ScenarioSpec

    if args.sessions < 1:
        raise SystemExit("multisession: --sessions must be >= 1")
    if args.shards < 1:
        raise SystemExit("multisession: --shards must be >= 1")
    if args.churn and args.sessions < 2:
        raise SystemExit("multisession: --churn needs --sessions >= 2")
    rng = RngFactory(args.seed)
    if args.topology:
        network = load_network(args.topology)
    else:
        network = random_network(
            args.nodes,
            neighbors_per_node=args.density,
            rng=rng.derive("topology"),
        )
    endpoints = fig6_endpoints(network, args.sessions, layout=args.layout)
    session_ids = list(range(1, args.sessions + 1))
    if args.protocol == "omnc":
        plans = dict(
            plan_omnc_multi(
                network,
                {sid: endpoints[sid - 1] for sid in session_ids},
            ).plans
        )
    else:
        plans = {
            sid: plan_more(network, *endpoints[sid - 1])
            for sid in session_ids
        }
    xor_pairs = plan_intersession_pairs(plans) if args.xor else None
    scenario = None
    if args.churn:
        # The newest session arrives a third of the way in; the first
        # session departs at two thirds.
        scenario = ScenarioSpec(
            name="churn",
            duration=args.seconds,
            epoch_seconds=args.seconds,
            events=(
                ScenarioEvent(
                    at=args.seconds / 3,
                    kind="session_arrive",
                    session_id=session_ids[-1],
                ),
                ScenarioEvent(
                    at=2 * args.seconds / 3,
                    kind="session_depart",
                    session_id=session_ids[0],
                ),
            ),
        )
    outcome = run_multi_session(
        network,
        plans,
        shards=args.shards,
        config=SessionConfig(
            max_seconds=args.seconds,
            target_generations=args.generations,
            blocks=args.blocks,
            block_size=args.block_size,
        ),
        rng=rng.spawn("multisession"),
        xor_pairs=xor_pairs,
        scenario=scenario,
        protocol_label=args.protocol,
    )
    print(
        f"{args.protocol} x{args.sessions} sessions on "
        f"{network.node_count} nodes:"
    )
    for sid in sorted(outcome.sessions):
        result = outcome.sessions[sid]
        print(
            f"  session {sid}: {result.source} -> {result.destination}  "
            f"{result.throughput_bps:8.0f} B/s  "
            f"{result.generations_decoded} generations"
        )
    print(f"  duration:    {outcome.duration:.1f} s emulated")
    print(f"  aggregate:   {outcome.aggregate_throughput_bps:.0f} B/s")
    print(f"  fairness:    {outcome.fairness:.4f} (Jain)")
    print(f"  airtime:     {outcome.transmissions} transmissions")
    if args.xor:
        print(f"  xor slots:   {outcome.xor_transmissions}")
    if scenario is not None:
        arrivals = ", ".join(
            f"{sid}@{at:.1f}s" for at, sid in outcome.arrivals
        )
        departures = ", ".join(
            f"{sid}@{at:.1f}s" for at, sid in outcome.departures
        )
        print(f"  arrivals:    {arrivals or 'none'}")
        print(f"  departures:  {departures or 'none'}")
    print(f"  digest:      {multi_session_digest(outcome)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OMNC (ICDCS 2008) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("fig1", help="Fig. 1: rate-control convergence").set_defaults(
        func=_cmd_fig1
    )
    fig2 = sub.add_parser("fig2", help="Fig. 2: throughput gains")
    fig2.add_argument("--quality", choices=("lossy", "high"), default="lossy")
    fig2.add_argument("--sessions", type=int, default=10)
    add_execution_arguments(fig2)
    fig2.set_defaults(func=_cmd_fig2)
    fig3 = sub.add_parser("fig3", help="Fig. 3: queue sizes")
    add_execution_arguments(fig3)
    fig3.set_defaults(func=_cmd_fig3)
    fig4 = sub.add_parser("fig4", help="Fig. 4: utility ratios")
    add_execution_arguments(fig4)
    fig4.set_defaults(func=_cmd_fig4)
    fig5 = sub.add_parser(
        "fig5", help="Fig. 5 (extension): re-planning under drift/failure"
    )
    fig5.add_argument(
        "--smoke", action="store_true", help="CI-sized run (~1 s)"
    )
    add_execution_arguments(fig5)
    fig5.set_defaults(func=_cmd_fig5)
    fig6 = sub.add_parser(
        "fig6",
        help="Fig. 6 (extension): concurrent unicasts, fairness, XOR relay",
    )
    fig6.add_argument(
        "--smoke", action="store_true", help="CI-sized run (~seconds)"
    )
    add_execution_arguments(fig6)
    fig6.set_defaults(func=_cmd_fig6)
    fig7 = sub.add_parser(
        "fig7",
        help="Fig. 7 (extension): finite-length generation sizing and "
        "systematic coding",
    )
    fig7.add_argument(
        "--smoke", action="store_true", help="CI-sized run (~seconds)"
    )
    fig7.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="worker shards per emulated session (1 = serial oracle)",
    )
    add_execution_arguments(fig7)
    fig7.set_defaults(func=_cmd_fig7)
    sub.add_parser(
        "coding-speed", help="accelerated vs baseline codec"
    ).set_defaults(func=_cmd_coding_speed)
    convergence = sub.add_parser(
        "convergence", help="iteration statistics vs the paper's 91"
    )
    add_execution_arguments(convergence)
    convergence.set_defaults(func=_cmd_convergence)

    topology = sub.add_parser("topology", help="generate and save a topology")
    topology.add_argument("output")
    topology.add_argument("--nodes", type=int, default=120)
    topology.add_argument("--quality", choices=("lossy", "high"), default="lossy")
    topology.add_argument("--seed", type=int, default=2008)
    topology.set_defaults(func=_cmd_topology)

    session = sub.add_parser("session", help="plan + emulate one session")
    session.add_argument("protocol", choices=("omnc", "more", "oldmore", "etx"))
    session.add_argument("source", type=int)
    session.add_argument("destination", type=int)
    session.add_argument("--topology", help="JSON topology file (else random)")
    session.add_argument("--nodes", type=int, default=120)
    session.add_argument("--seconds", type=float, default=120.0)
    session.add_argument("--generations", type=int, default=4)
    session.add_argument("--seed", type=int, default=2008)
    session.add_argument(
        "--blocks", type=int, default=40,
        help="packets per generation (default 40, the paper's n; "
        "<= 255 over GF(2^8))",
    )
    session.add_argument(
        "--coding",
        choices=("static", "adaptive", "systematic"),
        default="static",
        help="generation sizing: static = the configured --blocks; "
        "adaptive = solve the finite-length model for n from observed "
        "link loss (re-solved per epoch under --scenario); systematic = "
        "keep --blocks but emit plain blocks before dense repair "
        "(decode-cost optimization, exact coding fidelity only)",
    )
    session.add_argument(
        "--metrics",
        action="store_true",
        help="collect and print observability metrics for the run",
    )
    session.add_argument(
        "--trace",
        metavar="PATH",
        help="export per-slot emulation events as JSON lines to PATH",
    )
    session.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="run the sharded slot loop over N worker processes (1 = the "
        "in-process serial oracle in per-node RNG mode; 0 = classic "
        "serial drivers; incompatible with --scenario)",
    )
    session.add_argument(
        "--scenario",
        help="run live under a scenario: builtin name ('calm', 'drift') "
        "or JSON spec path",
    )
    session.add_argument(
        "--policy",
        default="drift",
        help="re-planning policy: oblivious | periodic[:k] | drift[:threshold] "
        "(default drift)",
    )
    session.add_argument(
        "--epoch-seconds",
        type=float,
        default=10.0,
        help="control-plane observation interval for --scenario (default 10)",
    )
    session.add_argument(
        "--gf-backend",
        default=None,
        metavar="NAME",
        help="GF(2^8) codec backend ('numpy', 'nibble', 'native', 'numba', "
        "or 'best'; default: numpy reference, or OMNC_GF_BACKEND)",
    )
    session.set_defaults(func=_cmd_session)

    multisession = sub.add_parser(
        "multisession", help="plan + emulate N concurrent unicast sessions"
    )
    multisession.add_argument(
        "--sessions", type=int, default=3, metavar="N",
        help="number of concurrent unicast sessions (default 3)",
    )
    multisession.add_argument(
        "--protocol",
        choices=("omnc", "more"),
        default="omnc",
        help="omnc = joint proportional-fair planning; more = per-flow "
        "MORE heuristics (default omnc)",
    )
    multisession.add_argument(
        "--topology", help="JSON topology file (else random)"
    )
    multisession.add_argument("--nodes", type=int, default=24)
    multisession.add_argument(
        "--density", type=float, default=9.0,
        help="average in-range neighbors for the random topology "
        "(default 9)",
    )
    multisession.add_argument("--seconds", type=float, default=30.0)
    multisession.add_argument(
        "--generations", type=int, default=0,
        help="stop once every session decodes this many generations "
        "(0 = run the full --seconds; default 0)",
    )
    multisession.add_argument("--seed", type=int, default=2008)
    multisession.add_argument(
        "--blocks", type=int, default=8,
        help="packets per generation (default 8 — deliberately below the "
        "paper's n = 40: the quick-run default keeps short contended "
        "multi-session runs decoding whole generations; pass "
        "--blocks 40 for paper-scale sizing)",
    )
    multisession.add_argument(
        "--block-size", type=int, default=256,
        help="payload bytes per packet (default 256)",
    )
    multisession.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="run the sharded slot loop over N worker processes "
        "(1 = in-process serial; default 1)",
    )
    multisession.add_argument(
        "--layout",
        choices=("disjoint", "opposing"),
        default="disjoint",
        help="endpoint layout: disjoint = node-disjoint pairs (default); "
        "opposing = consecutive sessions share endpoints in opposite "
        "directions, so --xor finds COPE-style coding opportunities on "
        "the random mesh",
    )
    multisession.add_argument(
        "--xor",
        action="store_true",
        help="enable inter-session XOR relaying at eligible shared relays",
    )
    multisession.add_argument(
        "--churn",
        action="store_true",
        help="exercise session churn: the last session arrives at 1/3 of "
        "the run, the first departs at 2/3",
    )
    multisession.set_defaults(func=_cmd_multisession)

    lint = sub.add_parser(
        "lint",
        help="determinism & invariant static analysis (RPR001-RPR005)",
    )
    analysis_runner.configure_parser(lint)
    lint.set_defaults(func=analysis_runner.run)

    check = sub.add_parser(
        "check",
        help="whole-program architecture & cross-process determinism "
        "analysis (RPR101-RPR104)",
    )
    analysis_checker.configure_parser(check)
    check.set_defaults(func=analysis_checker.run)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
