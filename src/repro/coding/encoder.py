"""Random linear encoding and re-encoding.

Two roles appear in the paper:

* The **source encoder** holds the full generation matrix B and emits
  packets ``x = r . B`` for fresh uniform-random coding vectors ``r``
  (``X = R . B`` in matrix form).
* The **relay re-encoder** holds only the innovative packets it has
  received.  To emit a packet it draws fresh random coefficients over its
  buffer and combines both the coding vectors and (if materialized) the
  payloads, which "replaces the coding coefficients ... with another set
  of random coefficients" (Sec. 3.1) and lets one outgoing packet carry
  information from everything overheard so far.

Both encoders take the field engine as a parameter so they run on either
the accelerated or the baseline codec.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.coding.backends import resolve_field
from repro.coding.matrix import FieldType
from repro.coding.generation import Generation
from repro.coding.packet import CodedPacket


class SourceEncoder:
    """Emit random linear combinations of a full generation.

    ``field=None`` (the default) resolves the process-active backend
    from :mod:`repro.coding.backends` at construction time.

    With ``systematic=True`` the first ``n`` packets of each generation
    are the plain blocks themselves (identity coding vectors, in block
    order); only repair packets past ``n`` are dense random
    combinations.  On clean links a decoder then places every row
    without Gaussian elimination, and the delivered payloads are
    byte-identical to dense RLNC either way.
    """

    def __init__(
        self,
        session_id: int,
        generation: Generation,
        rng: np.random.Generator,
        *,
        field: Optional[FieldType] = None,
        payload: bool = True,
        systematic: bool = False,
    ) -> None:
        self._session_id = session_id
        self._generation = generation
        self._rng = rng
        self._field = resolve_field(field)
        self._payload = payload
        self._systematic = systematic
        self._emitted = 0

    @property
    def generation(self) -> Generation:
        """The generation currently being encoded."""
        return self._generation

    @property
    def emitted(self) -> int:
        """Number of packets emitted so far for this generation."""
        return self._emitted

    def next_packet(self) -> CodedPacket:
        """Draw a fresh coding vector and emit one coded packet.

        A uniformly random vector is all-zero with probability 256^-n;
        we resample in that (astronomically unlikely) case so that every
        emitted packet carries information.
        """
        n = self._generation.matrix.shape[0]
        if self._systematic and self._emitted < n:
            index = self._emitted
            vector = np.zeros(n, dtype=np.uint8)
            vector[index] = 1
            payload = None
            if self._payload:
                payload = self._generation.matrix[index]
            self._emitted += 1
            return CodedPacket(
                session_id=self._session_id,
                generation_id=self._generation.generation_id,
                coefficients=vector,
                payload=payload,
            )
        vector = self._rng.integers(0, 256, size=n, dtype=np.uint8)
        while not np.any(vector):
            vector = self._rng.integers(0, 256, size=n, dtype=np.uint8)
        payload = None
        if self._payload:
            payload = self._field.matmul(vector[None, :], self._generation.matrix)[0]
        self._emitted += 1
        return CodedPacket(
            session_id=self._session_id,
            generation_id=self._generation.generation_id,
            coefficients=vector,
            payload=payload,
        )

    def next_packets(self, count: int) -> List[CodedPacket]:
        """Emit ``count`` coded packets from one batched draw + matmul.

        The full (count, n) coefficient matrix comes from a single RNG
        call and the payloads from a single ``field.matmul`` — the block
        analogue of ``next_packet``, amortizing per-call numpy overhead
        across the batch.  Packets wrap rows of the result without
        copying (:meth:`CodedPacket.batch_from_rows`).
        """
        if count <= 0:
            raise ValueError(f"count must be > 0, got {count}")
        n = self._generation.matrix.shape[0]
        plain: List[CodedPacket] = []
        if self._systematic and self._emitted < n:
            take = min(count, n - self._emitted)
            start = self._emitted
            vectors = np.zeros((take, n), dtype=np.uint8)
            vectors[np.arange(take), np.arange(start, start + take)] = 1
            payloads = None
            if self._payload:
                payloads = self._generation.matrix[start : start + take]
            plain = CodedPacket.batch_from_rows(
                self._session_id,
                self._generation.generation_id,
                vectors,
                payloads,
            )
            self._emitted += take
            count -= take
            if count == 0:
                return plain
        matrix = self._rng.integers(0, 256, size=(count, n), dtype=np.uint8)
        zero = ~matrix.any(axis=1)
        while zero.any():
            matrix[zero] = self._rng.integers(
                0, 256, size=(int(np.count_nonzero(zero)), n), dtype=np.uint8
            )
            zero = ~matrix.any(axis=1)
        payloads = None
        if self._payload:
            payloads = self._field.matmul(matrix, self._generation.matrix)
        self._emitted += count
        return plain + CodedPacket.batch_from_rows(
            self._session_id,
            self._generation.generation_id,
            matrix,
            payloads,
        )

    def advance(self, generation: Generation) -> None:
        """Move to the next generation after the destination ACKs."""
        if generation.generation_id <= self._generation.generation_id:
            raise ValueError(
                "generations must advance monotonically: "
                f"{generation.generation_id} <= {self._generation.generation_id}"
            )
        self._generation = generation
        self._emitted = 0


class RelayReEncoder:
    """Buffer innovative packets and emit fresh random recombinations.

    The relay performs its own innovation check (via an incremental rank
    filter over coding vectors) so that dependent arrivals are discarded
    immediately — "an intermediate relay accepts an incoming packet only
    if it is ... innovative" (Sec. 3.1).
    """

    def __init__(
        self,
        session_id: int,
        blocks: int,
        rng: np.random.Generator,
        *,
        field: Optional[FieldType] = None,
        generation_id: int = 0,
    ) -> None:
        if blocks <= 0:
            raise ValueError(f"blocks must be > 0, got {blocks}")
        self._session_id = session_id
        self._blocks = blocks
        self._rng = rng
        self._field = resolve_field(field)
        self._generation_id = generation_id
        # Contiguous packet buffers: row i holds the i-th innovative
        # packet.  The payload buffer is allocated lazily on the first
        # payload-bearing packet (its width is not known up front).
        self._vector_buf = np.zeros((blocks, blocks), dtype=np.uint8)
        self._payload_buf: np.ndarray | None = None
        self._count = 0
        # Incremental row-echelon copy of the vectors, used only for the
        # innovation check; pivots[c] = row index whose pivot is column c.
        self._echelon_buf = np.zeros((blocks, blocks), dtype=np.uint8)
        self._pivots: dict[int, int] = {}

    @property
    def generation_id(self) -> int:
        """Generation the relay is currently buffering."""
        return self._generation_id

    @property
    def buffered(self) -> int:
        """Number of innovative packets buffered (= current rank)."""
        return self._count

    @property
    def is_full(self) -> bool:
        """True once the relay holds a full-rank buffer.

        Such relays "no longer accept packets from upstream nodes since
        all incoming packets will be non-innovative" (Sec. 4), but keep
        re-encoding and broadcasting.
        """
        return self._count >= self._blocks

    def accept(self, packet: CodedPacket) -> bool:
        """Accept ``packet`` if innovative; return whether it was stored.

        Packets from an expired (lower) generation are rejected; a packet
        with a *higher* generation ID flushes the buffer and moves the
        relay forward (Sec. 4).  A packet whose generation size differs
        from the relay's is dropped, not an error: when a session
        switches generation size at a boundary (adaptive-n), stale-sized
        packets are legitimately in flight until every node crosses the
        boundary.
        """
        if packet.session_id != self._session_id:
            raise ValueError(
                f"packet belongs to session {packet.session_id}, "
                f"relay handles {self._session_id}"
            )
        if packet.generation_id < self._generation_id:
            return False
        if packet.generation_id > self._generation_id:
            self.advance(packet.generation_id)
        if packet.blocks != self._blocks:
            return False
        if self.is_full:
            return False
        if not self._reduce(packet.coefficients.copy()):
            return False
        row = self._count
        self._vector_buf[row] = packet.coefficients
        if packet.payload is not None:
            if self._payload_buf is None or self._payload_buf.shape[1] != packet.payload.size:
                self._payload_buf = np.zeros(
                    (self._blocks, packet.payload.size), dtype=np.uint8
                )
            self._payload_buf[row] = packet.payload
        self._count = row + 1
        return True

    def _reduce(self, vector: np.ndarray) -> bool:
        """Reduce ``vector`` against the echelon; store it and return True
        if a new pivot emerges, else return False (dependent)."""
        field = self._field
        for col, row_index in sorted(self._pivots.items()):
            coeff = int(vector[col])
            if coeff:
                field.addmul_row(vector, self._echelon_buf[row_index], coeff)
        nonzero = np.nonzero(vector)[0]
        if nonzero.size == 0:
            return False
        pivot_col = int(nonzero[0])
        pivot_value = int(vector[pivot_col])
        if pivot_value != 1:
            vector = field.scale_row(vector, int(field.inverse(pivot_value)))
        row = len(self._pivots)
        self._pivots[pivot_col] = row
        self._echelon_buf[row] = vector
        return True

    def next_packet(self) -> CodedPacket:
        """Emit one re-encoded packet over the buffered innovative set.

        Raises ``RuntimeError`` if the buffer is empty (a relay with no
        information cannot transmit).
        """
        if self._count == 0:
            raise RuntimeError("relay has no innovative packets to re-encode")
        count = self._count
        mix = self._rng.integers(0, 256, size=count, dtype=np.uint8)
        while not np.any(mix):
            mix = self._rng.integers(0, 256, size=count, dtype=np.uint8)
        out_vector = self._field.matmul(mix[None, :], self._vector_buf[:count])[0]
        out_payload = None
        if self._payload_buf is not None:
            out_payload = self._field.matmul(
                mix[None, :], self._payload_buf[:count]
            )[0]
        return CodedPacket(
            session_id=self._session_id,
            generation_id=self._generation_id,
            coefficients=out_vector,
            payload=out_payload,
        )

    def next_packets(self, count: int) -> List[CodedPacket]:
        """Emit ``count`` re-encoded packets from one draw + matmul.

        Same semantics as ``count`` calls of :meth:`next_packet`: every
        emitted packet mixes the whole buffered innovative set with fresh
        random coefficients, drawn here as a single (count, buffered)
        matrix and combined by one ``field.matmul`` over the contiguous
        packet buffers.
        """
        if count <= 0:
            raise ValueError(f"count must be > 0, got {count}")
        if self._count == 0:
            raise RuntimeError("relay has no innovative packets to re-encode")
        buffered = self._count
        mix = self._rng.integers(0, 256, size=(count, buffered), dtype=np.uint8)
        zero = ~mix.any(axis=1)
        while zero.any():
            mix[zero] = self._rng.integers(
                0, 256, size=(int(np.count_nonzero(zero)), buffered), dtype=np.uint8
            )
            zero = ~mix.any(axis=1)
        out_vectors = self._field.matmul(mix, self._vector_buf[:buffered])
        out_payloads = None
        if self._payload_buf is not None:
            out_payloads = self._field.matmul(mix, self._payload_buf[:buffered])
        return CodedPacket.batch_from_rows(
            self._session_id,
            self._generation_id,
            out_vectors,
            out_payloads,
        )

    def advance(self, generation_id: int) -> None:
        """Discard the buffer and move to ``generation_id``."""
        if generation_id <= self._generation_id:
            raise ValueError(
                f"generation must increase: {generation_id} <= {self._generation_id}"
            )
        self._generation_id = generation_id
        self._count = 0
        self._pivots.clear()
