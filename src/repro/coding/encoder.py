"""Random linear encoding and re-encoding.

Two roles appear in the paper:

* The **source encoder** holds the full generation matrix B and emits
  packets ``x = r . B`` for fresh uniform-random coding vectors ``r``
  (``X = R . B`` in matrix form).
* The **relay re-encoder** holds only the innovative packets it has
  received.  To emit a packet it draws fresh random coefficients over its
  buffer and combines both the coding vectors and (if materialized) the
  payloads, which "replaces the coding coefficients ... with another set
  of random coefficients" (Sec. 3.1) and lets one outgoing packet carry
  information from everything overheard so far.

Both encoders take the field engine as a parameter so they run on either
the accelerated or the baseline codec.
"""

from __future__ import annotations

from typing import List, Optional, Type

import numpy as np

from repro.coding.gf256 import GF256
from repro.coding.generation import Generation
from repro.coding.packet import CodedPacket


class SourceEncoder:
    """Emit random linear combinations of a full generation."""

    def __init__(
        self,
        session_id: int,
        generation: Generation,
        rng: np.random.Generator,
        *,
        field: Type = GF256,
        payload: bool = True,
    ) -> None:
        self._session_id = session_id
        self._generation = generation
        self._rng = rng
        self._field = field
        self._payload = payload
        self._emitted = 0

    @property
    def generation(self) -> Generation:
        """The generation currently being encoded."""
        return self._generation

    @property
    def emitted(self) -> int:
        """Number of packets emitted so far for this generation."""
        return self._emitted

    def next_packet(self) -> CodedPacket:
        """Draw a fresh coding vector and emit one coded packet.

        A uniformly random vector is all-zero with probability 256^-n;
        we resample in that (astronomically unlikely) case so that every
        emitted packet carries information.
        """
        n = self._generation.matrix.shape[0]
        vector = self._rng.integers(0, 256, size=n, dtype=np.uint8)
        while not np.any(vector):
            vector = self._rng.integers(0, 256, size=n, dtype=np.uint8)
        payload = None
        if self._payload:
            payload = self._field.matmul(vector[None, :], self._generation.matrix)[0]
        self._emitted += 1
        return CodedPacket(
            session_id=self._session_id,
            generation_id=self._generation.generation_id,
            coefficients=vector,
            payload=payload,
        )

    def advance(self, generation: Generation) -> None:
        """Move to the next generation after the destination ACKs."""
        if generation.generation_id <= self._generation.generation_id:
            raise ValueError(
                "generations must advance monotonically: "
                f"{generation.generation_id} <= {self._generation.generation_id}"
            )
        self._generation = generation
        self._emitted = 0


class RelayReEncoder:
    """Buffer innovative packets and emit fresh random recombinations.

    The relay performs its own innovation check (via an incremental rank
    filter over coding vectors) so that dependent arrivals are discarded
    immediately — "an intermediate relay accepts an incoming packet only
    if it is ... innovative" (Sec. 3.1).
    """

    def __init__(
        self,
        session_id: int,
        blocks: int,
        rng: np.random.Generator,
        *,
        field: Type = GF256,
        generation_id: int = 0,
    ) -> None:
        if blocks <= 0:
            raise ValueError(f"blocks must be > 0, got {blocks}")
        self._session_id = session_id
        self._blocks = blocks
        self._rng = rng
        self._field = field
        self._generation_id = generation_id
        self._vectors: List[np.ndarray] = []
        self._payloads: List[Optional[np.ndarray]] = []
        # Incremental row-echelon copy of the vectors, used only for the
        # innovation check; pivots[c] = row index whose pivot is column c.
        self._echelon: List[np.ndarray] = []
        self._pivots: dict = {}

    @property
    def generation_id(self) -> int:
        """Generation the relay is currently buffering."""
        return self._generation_id

    @property
    def buffered(self) -> int:
        """Number of innovative packets buffered (= current rank)."""
        return len(self._vectors)

    @property
    def is_full(self) -> bool:
        """True once the relay holds a full-rank buffer.

        Such relays "no longer accept packets from upstream nodes since
        all incoming packets will be non-innovative" (Sec. 4), but keep
        re-encoding and broadcasting.
        """
        return len(self._vectors) >= self._blocks

    def accept(self, packet: CodedPacket) -> bool:
        """Accept ``packet`` if innovative; return whether it was stored.

        Packets from an expired (lower) generation are rejected; a packet
        with a *higher* generation ID flushes the buffer and moves the
        relay forward (Sec. 4).
        """
        if packet.session_id != self._session_id:
            raise ValueError(
                f"packet belongs to session {packet.session_id}, "
                f"relay handles {self._session_id}"
            )
        if packet.blocks != self._blocks:
            raise ValueError(
                f"packet generation size {packet.blocks} != relay's {self._blocks}"
            )
        if packet.generation_id < self._generation_id:
            return False
        if packet.generation_id > self._generation_id:
            self.advance(packet.generation_id)
        if self.is_full:
            return False
        residual = self._reduce(packet.coefficients.copy())
        if residual is None:
            return False
        self._vectors.append(packet.coefficients.copy())
        payload = None if packet.payload is None else packet.payload.copy()
        self._payloads.append(payload)
        return True

    def _reduce(self, vector: np.ndarray) -> Optional[np.ndarray]:
        """Reduce ``vector`` against the echelon; store and return it if a
        new pivot emerges, else return None (dependent)."""
        field = self._field
        for col, row_index in sorted(self._pivots.items()):
            coeff = int(vector[col])
            if coeff:
                field.addmul_row(vector, self._echelon[row_index], coeff)
        nonzero = np.nonzero(vector)[0]
        if nonzero.size == 0:
            return None
        pivot_col = int(nonzero[0])
        pivot_value = int(vector[pivot_col])
        if pivot_value != 1:
            vector = field.scale_row(vector, int(field.inverse(pivot_value)))
        self._pivots[pivot_col] = len(self._echelon)
        self._echelon.append(vector)
        return vector

    def next_packet(self) -> CodedPacket:
        """Emit one re-encoded packet over the buffered innovative set.

        Raises ``RuntimeError`` if the buffer is empty (a relay with no
        information cannot transmit).
        """
        if not self._vectors:
            raise RuntimeError("relay has no innovative packets to re-encode")
        count = len(self._vectors)
        mix = self._rng.integers(0, 256, size=count, dtype=np.uint8)
        while not np.any(mix):
            mix = self._rng.integers(0, 256, size=count, dtype=np.uint8)
        stacked = np.stack(self._vectors)
        out_vector = self._field.matmul(mix[None, :], stacked)[0]
        out_payload = None
        if self._payloads[0] is not None:
            payload_matrix = np.stack(self._payloads)
            out_payload = self._field.matmul(mix[None, :], payload_matrix)[0]
        return CodedPacket(
            session_id=self._session_id,
            generation_id=self._generation_id,
            coefficients=out_vector,
            payload=out_payload,
        )

    def advance(self, generation_id: int) -> None:
        """Discard the buffer and move to ``generation_id``."""
        if generation_id <= self._generation_id:
            raise ValueError(
                f"generation must increase: {generation_id} <= {self._generation_id}"
            )
        self._generation_id = generation_id
        self._vectors.clear()
        self._payloads.clear()
        self._echelon.clear()
        self._pivots.clear()
