"""Vectorized arithmetic over GF(2^8), the Rijndael finite field.

This is the "accelerated network coding" engine of the paper (Sec. 4).
The paper replaces the classic lookup-table byte-at-a-time codec with a
loop-based multiply in Rijndael's field driven by SSE2, processing whole
rows per instruction.  The analogous move in Python is to replace
byte-at-a-time pure-Python loops (:mod:`repro.coding.gf256_baseline`) with
numpy-vectorized whole-row operations built on exp/log tables — the same
"operate on an entire row at once" idea, expressed with the vector unit
numpy exposes.

The field is GF(2^8) with the Rijndael reduction polynomial
``x^8 + x^4 + x^3 + x + 1`` (0x11B) and generator 0x03.

All public operations accept and return ``numpy.ndarray`` with
``dtype=uint8``.  Scalars are accepted wherever broadcasting makes sense.
"""

from __future__ import annotations

from typing import Callable, Protocol, Tuple

import numpy as np

REDUCTION_POLY = 0x11B
GENERATOR = 0x03
FIELD_SIZE = 256
_ORDER = FIELD_SIZE - 1  # multiplicative group order

ArrayLike = int | np.ndarray

# Observability hook: when repro.obs enables global collection it points
# this at a counter's `inc` so the row kernels meter the bytes they
# process.  A module-level `is None` check is the entire disabled-path
# cost, keeping the kernels untouched for the 3-5x speedup claim.
_BYTES_HOOK: Callable[[int], object] | None = None


def set_bytes_hook(hook: Callable[[int], object] | None) -> None:
    """Install (or clear, with None) the byte-metering callback.

    The callback receives the number of payload bytes processed by one
    kernel invocation.  Managed by :mod:`repro.obs`; exposed as a
    function so the hook can be swapped without reaching into module
    globals.
    """
    global _BYTES_HOOK
    _BYTES_HOOK = hook


def meter_bytes(count: int) -> None:
    """Report ``count`` processed payload bytes to the obs hook (if any).

    Backend kernels that do not route through this module's row kernels
    (nibble-split, compiled) call this so ``codec.bytes_processed`` stays
    comparable across backends.
    """
    if _BYTES_HOOK is not None:
        _BYTES_HOOK(count)


def _build_tables() -> Tuple[np.ndarray, np.ndarray]:
    """Build exp/log tables for the Rijndael field.

    ``exp`` is doubled in length so products of logs (max 2*254) index it
    without a modulo in the hot path.
    """
    exp = np.zeros(2 * _ORDER, dtype=np.uint8)
    log = np.zeros(FIELD_SIZE, dtype=np.int32)
    value = 1
    for power in range(_ORDER):
        exp[power] = value
        log[value] = power
        value = _mul_slow(value, GENERATOR)
    exp[_ORDER:] = exp[:_ORDER]
    return exp, log


def _mul_slow(a: int, b: int) -> int:
    """Reference carry-less multiply with reduction; used to build tables."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        if a & 0x100:
            a ^= REDUCTION_POLY
        b >>= 1
    return result


_EXP, _LOG = _build_tables()
# Full 256x256 product table: 64 KiB, lets `multiply` be a single fancy-index.
_MUL_TABLE = np.zeros((FIELD_SIZE, FIELD_SIZE), dtype=np.uint8)
_nz = np.arange(1, FIELD_SIZE)
_MUL_TABLE[1:, 1:] = _EXP[_LOG[_nz][:, None] + _LOG[_nz][None, :]]
# Flattened view for the hot kernels: computing `(a << 8) | b` and doing
# one `take` on the flat table is ~3x faster than equivalent 2-D fancy
# indexing (numpy resolves a single int32 index array with a memcpy-like
# gather instead of a broadcasting iterator).
_MUL_FLAT = _MUL_TABLE.ravel()
_INV_TABLE = np.zeros(FIELD_SIZE, dtype=np.uint8)
_INV_TABLE[1:] = _EXP[_ORDER - _LOG[_nz]]


class GF256:
    """Namespace of vectorized GF(2^8) operations.

    The class carries no state; it exists so that the accelerated and the
    baseline codec expose the same interface and can be swapped in the
    encoder/decoder (see :class:`repro.coding.gf256_baseline.GF256Baseline`).
    """

    name = "accelerated"

    @staticmethod
    def add(a: ArrayLike, b: ArrayLike) -> np.ndarray:
        """Field addition (= subtraction): bytewise XOR."""
        return np.bitwise_xor(np.asarray(a, dtype=np.uint8), np.asarray(b, dtype=np.uint8))

    # Subtraction equals addition in characteristic 2.
    sub = add

    @staticmethod
    def multiply(a: ArrayLike, b: ArrayLike) -> np.ndarray:
        """Elementwise field multiplication with numpy broadcasting."""
        a_arr = np.asarray(a, dtype=np.uint8)
        b_arr = np.asarray(b, dtype=np.uint8)
        return _MUL_TABLE[a_arr, b_arr]

    @staticmethod
    def inverse(a: ArrayLike) -> np.ndarray:
        """Elementwise multiplicative inverse.  Raises on zero input."""
        a_arr = np.asarray(a, dtype=np.uint8)
        if np.any(a_arr == 0):
            raise ZeroDivisionError("0 has no multiplicative inverse in GF(2^8)")
        return _INV_TABLE[a_arr]

    @staticmethod
    def divide(a: ArrayLike, b: ArrayLike) -> np.ndarray:
        """Elementwise division ``a / b``.  Raises on zero divisor."""
        return GF256.multiply(a, GF256.inverse(b))

    @staticmethod
    def scale_row(row: np.ndarray, coefficient: int) -> np.ndarray:
        """Multiply a whole row (1-D array) by one scalar coefficient."""
        row = np.asarray(row, dtype=np.uint8)
        return _MUL_TABLE[coefficient].take(row)

    @staticmethod
    def scale_rows(rows: np.ndarray, coefficients: np.ndarray) -> np.ndarray:
        """Row-wise scaling: row i multiplied by ``coefficients[i]``.

        One gather covers every row at once; this is the batch analogue of
        :meth:`scale_row` used to normalize several new pivots per call.
        """
        rows = np.asarray(rows, dtype=np.uint8)
        coefficients = np.asarray(coefficients, dtype=np.int32)
        return _MUL_FLAT.take((coefficients[:, None] << 8) | rows)

    @staticmethod
    def addmul_row(target: np.ndarray, source: np.ndarray, coefficient: int) -> None:
        """In-place ``target ^= coefficient * source`` — the codec hot path."""
        if coefficient == 0:
            return
        np.bitwise_xor(target, _MUL_TABLE[coefficient].take(source), out=target)
        if _BYTES_HOOK is not None:
            _BYTES_HOOK(target.size)

    @staticmethod
    def addmul_rows(
        targets: np.ndarray, source: np.ndarray, coefficients: np.ndarray
    ) -> None:
        """In-place ``targets[i] ^= coefficients[i] * source`` for every row.

        The batch-elimination kernel: one flat-table gather plus one XOR
        covers every target row at once, skipping rows whose coefficient
        is zero.
        """
        coefficients = np.asarray(coefficients)
        nz = np.nonzero(coefficients)[0]
        if nz.size == 0:
            return
        index = (coefficients[nz].astype(np.int32)[:, None] << 8) | source
        targets[nz] ^= _MUL_FLAT.take(index)
        if _BYTES_HOOK is not None:
            _BYTES_HOOK(nz.size * source.size)

    # Above this operand volume the (n, k, m) product tensor of the
    # gather-based fast path stops fitting comfortably in cache and the
    # column-loop accumulation wins on memory traffic.
    _MATMUL_TENSOR_LIMIT = 1 << 22

    @staticmethod
    def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Matrix product over GF(2^8).

        ``a`` is (n, k), ``b`` is (k, m); the result is (n, m).  This is the
        encoding operation X = R . B of the paper with ``a`` the coefficient
        matrix and ``b`` the generation matrix.
        """
        a = np.asarray(a, dtype=np.uint8)
        b = np.asarray(b, dtype=np.uint8)
        if a.ndim != 2 or b.ndim != 2:
            raise ValueError("matmul requires 2-D operands")
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"shape mismatch: {a.shape} x {b.shape}")
        n, k = a.shape
        m = b.shape[1]
        if k == 0 or n == 0:
            return np.zeros((n, m), dtype=np.uint8)
        if n == 1:
            # Vector-matrix product (decoder forward elimination, single
            # packet encode): one flat gather + XOR-reduction.
            index = (a[0].astype(np.int32)[:, None] << 8) | b
            out = np.bitwise_xor.reduce(_MUL_FLAT.take(index), axis=0)[None, :]
        elif k == 1:
            # Outer product (back-substituting one new pivot): one gather.
            index = (a[:, 0].astype(np.int32)[:, None] << 8) | b[0]
            out = _MUL_FLAT.take(index)
        elif n * k * m <= GF256._MATMUL_TENSOR_LIMIT:
            # Gather-based fast path: one flat-table gather builds every
            # partial product (n, k, m) and a single XOR-reduction folds
            # them — a fixed number of numpy calls regardless of k, the
            # batched analogue of the paper's SSE2 row loop.
            index = (a.astype(np.int32)[:, :, None] << 8) | b[None, :, :]
            out = np.bitwise_xor.reduce(_MUL_FLAT.take(index), axis=1)
        else:
            out = np.zeros((n, m), dtype=np.uint8)
            # Row-at-a-time accumulation: each step is one vectorized
            # table-lookup + XOR over an entire row of b.
            for j in range(k):
                col = a[:, j]
                nz = np.nonzero(col)[0]
                if nz.size == 0:
                    continue
                index = (col[nz].astype(np.int32)[:, None] << 8) | b[j]
                out[nz] ^= _MUL_FLAT.take(index)
        if _BYTES_HOOK is not None:
            # Meter the rows actually touched: an all-zero coefficient row
            # produces its output without any table work, so it must not
            # count toward bytes processed.
            _BYTES_HOOK(int(np.count_nonzero(a.any(axis=1))) * m)
        return out

    @staticmethod
    def matvec(a: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Matrix-vector product over GF(2^8)."""
        v = np.asarray(v, dtype=np.uint8)
        if v.ndim != 1:
            raise ValueError("matvec requires a 1-D vector")
        return GF256.matmul(a, v[:, None])[:, 0]

    @staticmethod
    def power(a: int, exponent: int) -> int:
        """Scalar exponentiation ``a ** exponent`` in the field."""
        if exponent < 0:
            raise ValueError("exponent must be >= 0")
        if a == 0:
            return 0 if exponent > 0 else 1
        if exponent == 0:
            return 1
        return int(_EXP[(int(_LOG[a]) * exponent) % _ORDER])

    @classmethod
    def eliminate_panel(
        cls, work: np.ndarray, panel: int, limit: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """In-place Gauss-Jordan elimination with pivots from a column panel.

        This is the blocked-elimination contract every backend must honor
        bit-for-bit (the decoder and ``matrix.rref`` are built on it):

        ``work`` is a C-contiguous ``(rows, width)`` uint8 matrix whose
        first ``panel`` columns are searched for pivots; the remaining
        columns (a transform or payload carry) ride along through every
        row operation.  Rows are scanned top-down.  A row whose leading
        nonzero entry within the panel is at column ``c`` becomes a pivot
        row: it is normalized so ``work[i, c] == 1`` and column ``c`` is
        eliminated from *every* other row (full width).  Scanning stops
        after ``limit`` pivots.  Returns ``(pivot_rows, pivot_cols)`` as
        ``intp`` arrays in discovery (row) order.

        The result is deterministic — pivot choice is "first nonzero
        column of the earliest eligible row" — so any two conforming
        implementations mutate ``work`` identically.
        """
        return eliminate_panel_reference(cls, work, panel, limit)


class SupportsRowOps(Protocol):
    """The row-kernel surface :func:`eliminate_panel_reference` needs.

    Both codec class families (``GF256`` subclasses and the pure-Python
    ``GF256Baseline``) satisfy it structurally, so the reference panel
    elimination can be shared without an inheritance relationship.
    """

    @staticmethod
    def scale_row(row: np.ndarray, coefficient: int) -> np.ndarray: ...

    @staticmethod
    def inverse(a: ArrayLike) -> np.ndarray: ...

    @staticmethod
    def addmul_rows(
        targets: np.ndarray, source: np.ndarray, coefficients: np.ndarray
    ) -> None: ...


def eliminate_panel_reference(
    field: SupportsRowOps, work: np.ndarray, panel: int, limit: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Reference implementation of the :meth:`GF256.eliminate_panel`
    contract, expressed through the row kernels of ``field`` so that any
    backend overriding them (nibble-split, compiled) is exercised end to
    end.  Shared by the baseline codec, which passes itself as ``field``.
    """
    if work.ndim != 2:
        raise ValueError(f"expected a 2-D work matrix, got ndim={work.ndim}")
    if not 0 <= panel <= work.shape[1]:
        raise ValueError(f"panel {panel} outside width {work.shape[1]}")
    rows = work.shape[0]
    pivot_rows: list[int] = []
    pivot_cols: list[int] = []
    for i in range(rows):
        if len(pivot_rows) >= limit:
            break
        row = work[i]
        nonzero = np.nonzero(row[:panel])[0]
        if nonzero.size == 0:
            continue
        col = int(nonzero[0])
        value = int(row[col])
        if value != 1:
            row[:] = field.scale_row(row, int(field.inverse(value)))
        column = work[:, col].copy()
        column[i] = 0
        field.addmul_rows(work, row, column)
        pivot_rows.append(i)
        pivot_cols.append(col)
    return (
        np.asarray(pivot_rows, dtype=np.intp),
        np.asarray(pivot_cols, dtype=np.intp),
    )


def exp_table() -> np.ndarray:
    """Copy of the exponentiation table (length 510, doubled)."""
    return _EXP.copy()


def log_table() -> np.ndarray:
    """Copy of the discrete-log table (index 0 is unused/0)."""
    return _LOG.copy()
