"""Coded packet format and wire serialization.

A coded packet carries one coded block together with the coding vector
that produced it (a row of the coefficient matrix R), plus the session and
generation identity needed by relays to manage queues and expire stale
generations (paper Sec. 4).

Wire layout (big-endian):

    magic      2 bytes   0x4F4D ("OM")
    version    1 byte
    session    4 bytes   session identifier
    generation 4 bytes   generation identifier
    blocks     2 bytes   n  (coding-vector length)
    block_size 2 bytes   m  (payload length)
    vector     n bytes   coding coefficients
    payload    m bytes   coded block
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List

import numpy as np

_MAGIC = 0x4F4D
_VERSION = 1
_HEADER = struct.Struct(">HBIIHH")
HEADER_BYTES = _HEADER.size


@dataclass(frozen=True)
class CodedPacket:
    """An immutable coded packet.

    Attributes:
        session_id: unicast session the packet belongs to.
        generation_id: generation within the session.
        coefficients: length-n coding vector over GF(2^8).
        payload: length-m coded block (optional in coefficient-only
            emulation mode, where only the coding vectors are simulated —
            see ``repro.emulator``).
    """

    session_id: int
    generation_id: int
    coefficients: np.ndarray
    payload: np.ndarray | None = None
    origin: int | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.session_id < 0 or self.session_id > 0xFFFFFFFF:
            raise ValueError(f"session_id out of range: {self.session_id}")
        if self.generation_id < 0 or self.generation_id > 0xFFFFFFFF:
            raise ValueError(f"generation_id out of range: {self.generation_id}")
        coeffs = np.asarray(self.coefficients, dtype=np.uint8)
        if coeffs.ndim != 1 or coeffs.size == 0:
            raise ValueError("coefficients must be a non-empty 1-D vector")
        if coeffs.size > 0xFFFF:
            raise ValueError(f"coding vector too long: {coeffs.size}")
        coeffs = coeffs.copy()
        coeffs.setflags(write=False)
        object.__setattr__(self, "coefficients", coeffs)
        if self.payload is not None:
            payload = np.asarray(self.payload, dtype=np.uint8)
            if payload.ndim != 1 or payload.size == 0:
                raise ValueError("payload must be a non-empty 1-D vector")
            if payload.size > 0xFFFF:
                raise ValueError(f"payload too long: {payload.size}")
            payload = payload.copy()
            payload.setflags(write=False)
            object.__setattr__(self, "payload", payload)

    @classmethod
    def batch_from_rows(
        cls,
        session_id: int,
        generation_id: int,
        coefficients: np.ndarray,
        payloads: np.ndarray | None = None,
        origin: int | None = None,
    ) -> "List[CodedPacket]":
        """Build one packet per row of ``coefficients`` without copying.

        The batch encoders produce whole (k, n) coefficient and (k, m)
        payload matrices in contiguous memory; this constructor wraps
        each row as a read-only view so packet construction stays O(k)
        in Python objects with zero byte copies.  The input matrices are
        marked read-only in place — callers hand over ownership.
        """
        coefficients = np.ascontiguousarray(coefficients, dtype=np.uint8)
        if coefficients.ndim != 2 or coefficients.shape[1] == 0:
            raise ValueError("coefficients must be a non-empty (k, n) matrix")
        if session_id < 0 or session_id > 0xFFFFFFFF:
            raise ValueError(f"session_id out of range: {session_id}")
        if generation_id < 0 or generation_id > 0xFFFFFFFF:
            raise ValueError(f"generation_id out of range: {generation_id}")
        if coefficients.shape[1] > 0xFFFF:
            raise ValueError(f"coding vector too long: {coefficients.shape[1]}")
        coefficients.setflags(write=False)
        payload_rows: List[np.ndarray | None]
        if payloads is None:
            payload_rows = [None] * coefficients.shape[0]
        else:
            payloads = np.ascontiguousarray(payloads, dtype=np.uint8)
            if payloads.ndim != 2 or payloads.shape[1] == 0:
                raise ValueError("payloads must be a non-empty (k, m) matrix")
            if payloads.shape[0] != coefficients.shape[0]:
                raise ValueError(
                    f"payload rows {payloads.shape[0]} != "
                    f"coefficient rows {coefficients.shape[0]}"
                )
            if payloads.shape[1] > 0xFFFF:
                raise ValueError(f"payload too long: {payloads.shape[1]}")
            payloads.setflags(write=False)
            payload_rows = list(payloads)
        packets = []
        for vector, payload in zip(coefficients, payload_rows):
            packet = object.__new__(cls)
            object.__setattr__(packet, "session_id", session_id)
            object.__setattr__(packet, "generation_id", generation_id)
            object.__setattr__(packet, "coefficients", vector)
            object.__setattr__(packet, "payload", payload)
            object.__setattr__(packet, "origin", origin)
            packets.append(packet)
        return packets

    @property
    def blocks(self) -> int:
        """Generation size n implied by the coding-vector length."""
        return int(self.coefficients.size)

    @property
    def block_size(self) -> int:
        """Payload length m (0 in coefficient-only mode)."""
        return 0 if self.payload is None else int(self.payload.size)

    @property
    def wire_size(self) -> int:
        """Total bytes this packet occupies on the air.

        In coefficient-only emulation the payload is not materialized, but
        it still occupies airtime; callers must account for the block size
        separately in that mode.
        """
        return HEADER_BYTES + self.blocks + self.block_size

    def is_zero(self) -> bool:
        """True if the coding vector is all-zero (carries no information)."""
        return not np.any(self.coefficients)

    def to_bytes(self) -> bytes:
        """Serialize to the wire format.  Requires a payload."""
        if self.payload is None:
            raise ValueError("cannot serialize a coefficient-only packet")
        header = _HEADER.pack(
            _MAGIC,
            _VERSION,
            self.session_id,
            self.generation_id,
            self.blocks,
            self.block_size,
        )
        return header + self.coefficients.tobytes() + self.payload.tobytes()

    @classmethod
    def from_bytes(cls, data: bytes) -> "CodedPacket":
        """Parse a packet from the wire format; raises ``ValueError`` on
        malformed input."""
        if len(data) < HEADER_BYTES:
            raise ValueError(f"truncated packet: {len(data)} bytes")
        magic, version, session_id, generation_id, blocks, block_size = _HEADER.unpack(
            data[:HEADER_BYTES]
        )
        if magic != _MAGIC:
            raise ValueError(f"bad magic: 0x{magic:04X}")
        if version != _VERSION:
            raise ValueError(f"unsupported version: {version}")
        expected = HEADER_BYTES + blocks + block_size
        if len(data) != expected:
            raise ValueError(f"length mismatch: expected {expected}, got {len(data)}")
        vector = np.frombuffer(data, dtype=np.uint8, count=blocks, offset=HEADER_BYTES)
        payload = np.frombuffer(
            data, dtype=np.uint8, count=block_size, offset=HEADER_BYTES + blocks
        )
        return cls(
            session_id=session_id,
            generation_id=generation_id,
            coefficients=vector,
            payload=payload,
        )

    def __repr__(self) -> str:
        mode = "payload" if self.payload is not None else "coeff-only"
        return (
            f"CodedPacket(session={self.session_id}, gen={self.generation_id}, "
            f"n={self.blocks}, m={self.block_size}, {mode})"
        )
