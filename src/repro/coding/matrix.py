"""Dense matrix algebra over GF(2^8): RREF, rank, inversion, solving.

These routines back both the offline analysis tools (checking that a set
of coding vectors spans a generation) and the reference "decode at once"
path ``B = R^{-1} X`` that the paper contrasts with progressive decoding.
The progressive decoder itself lives in :mod:`repro.coding.decoder` and
maintains its own incremental reduced row-echelon state.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.coding.gf256 import GF256
from repro.coding.gf256_baseline import GF256Baseline

# Any GF(2^8) arithmetic backend: the table-driven vectorized class or
# the pure-Python baseline.  Both expose the same classmethod surface.
FieldType = type[GF256] | type[GF256Baseline]


def _as_matrix(matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=np.uint8)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got ndim={matrix.ndim}")
    return matrix


def rref(matrix: np.ndarray, field: FieldType = GF256) -> Tuple[np.ndarray, List[int]]:
    """Reduced row-echelon form by Gauss-Jordan elimination.

    Returns ``(reduced, pivot_columns)``.  The input is not modified.
    Zero rows sink to the bottom of the returned matrix.
    """
    work = _as_matrix(matrix).copy()
    rows, cols = work.shape
    pivot_cols = []
    pivot_row = 0
    for col in range(cols):
        if pivot_row >= rows:
            break
        # Find a row at or below pivot_row with a nonzero entry in col.
        candidates = np.nonzero(work[pivot_row:, col])[0]
        if candidates.size == 0:
            continue
        chosen = pivot_row + int(candidates[0])
        if chosen != pivot_row:
            work[[pivot_row, chosen]] = work[[chosen, pivot_row]]
        # Normalize the pivot row so the pivot entry is 1.
        pivot_value = int(work[pivot_row, col])
        if pivot_value != 1:
            inv = int(field.inverse(pivot_value))
            work[pivot_row] = field.scale_row(work[pivot_row], inv)
        # Eliminate the pivot column from every other row.
        for row in range(rows):
            if row == pivot_row:
                continue
            coeff = int(work[row, col])
            if coeff:
                field.addmul_row(work[row], work[pivot_row], coeff)
        pivot_cols.append(col)
        pivot_row += 1
    return work, pivot_cols


def rank(matrix: np.ndarray, field: FieldType = GF256) -> int:
    """Rank of ``matrix`` over GF(2^8)."""
    _, pivots = rref(matrix, field)
    return len(pivots)


def is_full_rank(matrix: np.ndarray, field: FieldType = GF256) -> bool:
    """True if ``matrix`` has rank equal to min(rows, cols)."""
    matrix = _as_matrix(matrix)
    return rank(matrix, field) == min(matrix.shape)


def invert(matrix: np.ndarray, field: FieldType = GF256) -> np.ndarray:
    """Inverse of a square matrix; raises ``ValueError`` if singular."""
    matrix = _as_matrix(matrix)
    n, m = matrix.shape
    if n != m:
        raise ValueError(f"only square matrices are invertible, got {matrix.shape}")
    augmented = np.concatenate([matrix, identity(n)], axis=1)
    reduced, pivots = rref(augmented, field)
    if pivots != list(range(n)):
        raise ValueError("matrix is singular over GF(2^8)")
    return reduced[:, n:].copy()


def solve(
    coefficients: np.ndarray, payloads: np.ndarray, field: FieldType = GF256
) -> np.ndarray:
    """Solve ``R . B = X`` for B — the paper's one-shot decode.

    ``coefficients`` is the (n, n) matrix R of coding vectors and
    ``payloads`` the (n, m) matrix X of coded blocks; the result is the
    original generation matrix B.
    """
    coefficients = _as_matrix(coefficients)
    payloads = _as_matrix(payloads)
    if coefficients.shape[0] != payloads.shape[0]:
        raise ValueError(
            "coefficient rows must match payload rows: "
            f"{coefficients.shape} vs {payloads.shape}"
        )
    inverse_matrix = invert(coefficients, field)
    return field.matmul(inverse_matrix, payloads)


def identity(n: int) -> np.ndarray:
    """The n x n identity matrix over GF(2^8)."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    return np.eye(n, dtype=np.uint8)


def random_matrix(
    rows: int,
    cols: int,
    rng: np.random.Generator,
    *,
    full_rank: bool = False,
    field: FieldType = GF256,
    max_attempts: int = 64,
) -> np.ndarray:
    """Uniformly random matrix; optionally resampled until full rank.

    Random matrices over GF(2^8) are full rank with probability about
    ``prod_{k}(1 - 256^-(k+1)) > 0.996``, so resampling terminates almost
    immediately; ``max_attempts`` bounds the pathological case.
    """
    if rows < 0 or cols < 0:
        raise ValueError("rows and cols must be >= 0")
    for _ in range(max_attempts):
        matrix = rng.integers(0, 256, size=(rows, cols), dtype=np.uint8)
        if not full_rank or is_full_rank(matrix, field):
            return matrix
    raise RuntimeError(
        f"failed to draw a full-rank {rows}x{cols} matrix in {max_attempts} attempts"
    )


def is_rref(matrix: np.ndarray) -> bool:
    """Check whether ``matrix`` is in reduced row-echelon form."""
    matrix = _as_matrix(matrix)
    last_pivot_col: int | None = None
    seen_zero_row = False
    for row in matrix:
        nonzero = np.nonzero(row)[0]
        if nonzero.size == 0:
            seen_zero_row = True
            continue
        if seen_zero_row:
            return False  # nonzero row below a zero row
        col = int(nonzero[0])
        if row[col] != 1:
            return False  # pivot not normalized
        if last_pivot_col is not None and col <= last_pivot_col:
            return False  # pivots not strictly right-moving
        if np.count_nonzero(matrix[:, col]) != 1:
            return False  # pivot column not cleared elsewhere
        last_pivot_col = col
    return True
