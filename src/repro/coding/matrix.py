"""Dense matrix algebra over GF(2^8): RREF, rank, inversion, solving.

These routines back both the offline analysis tools (checking that a set
of coding vectors spans a generation) and the reference "decode at once"
path ``B = R^{-1} X`` that the paper contrasts with progressive decoding.
The progressive decoder itself lives in :mod:`repro.coding.decoder` and
maintains its own incremental reduced row-echelon state.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

# FieldType is canonically defined next to the registry; re-exported here
# because this module is where the seam historically lived and every
# consumer imports it from here.
from repro.coding.backends import FieldType, resolve_field


def _as_matrix(matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=np.uint8)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got ndim={matrix.ndim}")
    return matrix


def rref(
    matrix: np.ndarray, field: Optional[FieldType] = None
) -> Tuple[np.ndarray, List[int]]:
    """Reduced row-echelon form by Gauss-Jordan elimination.

    Returns ``(reduced, pivot_columns)``.  The input is not modified.
    Zero rows sink to the bottom of the returned matrix.

    The elimination itself is one :meth:`~repro.coding.gf256.GF256.eliminate_panel`
    call spanning the full width (a compiled backend runs it without
    returning to Python); the panel kernel discovers pivots in row order,
    so the rows are permuted into echelon order afterwards.  RREF is
    unique for a given row space, so the result is identical to the
    classical column-major sweep.
    """
    field = resolve_field(field)
    work = _as_matrix(matrix).copy()
    rows, cols = work.shape
    pivot_rows, pivot_cols = field.eliminate_panel(work, cols, rows)
    order = np.argsort(pivot_cols, kind="stable")
    reduced = np.zeros_like(work)
    found = len(pivot_rows)
    if found:
        # Non-pivot rows were fully eliminated (any surviving nonzero
        # would have produced a pivot), so echelon order is the sorted
        # pivot rows on top and zeros below.
        reduced[:found] = work[pivot_rows[order]]
    return reduced, [int(c) for c in pivot_cols[order]]


def rank(matrix: np.ndarray, field: Optional[FieldType] = None) -> int:
    """Rank of ``matrix`` over GF(2^8)."""
    _, pivots = rref(matrix, field)
    return len(pivots)


def is_full_rank(matrix: np.ndarray, field: Optional[FieldType] = None) -> bool:
    """True if ``matrix`` has rank equal to min(rows, cols)."""
    matrix = _as_matrix(matrix)
    return rank(matrix, field) == min(matrix.shape)


def invert(matrix: np.ndarray, field: Optional[FieldType] = None) -> np.ndarray:
    """Inverse of a square matrix; raises ``ValueError`` if singular."""
    matrix = _as_matrix(matrix)
    n, m = matrix.shape
    if n != m:
        raise ValueError(f"only square matrices are invertible, got {matrix.shape}")
    augmented = np.concatenate([matrix, identity(n)], axis=1)
    reduced, pivots = rref(augmented, field)
    if pivots != list(range(n)):
        raise ValueError("matrix is singular over GF(2^8)")
    return reduced[:, n:].copy()


def solve(
    coefficients: np.ndarray, payloads: np.ndarray, field: Optional[FieldType] = None
) -> np.ndarray:
    """Solve ``R . B = X`` for B — the paper's one-shot decode.

    ``coefficients`` is the (n, n) matrix R of coding vectors and
    ``payloads`` the (n, m) matrix X of coded blocks; the result is the
    original generation matrix B.
    """
    field = resolve_field(field)
    coefficients = _as_matrix(coefficients)
    payloads = _as_matrix(payloads)
    if coefficients.shape[0] != payloads.shape[0]:
        raise ValueError(
            "coefficient rows must match payload rows: "
            f"{coefficients.shape} vs {payloads.shape}"
        )
    inverse_matrix = invert(coefficients, field)
    return field.matmul(inverse_matrix, payloads)


def identity(n: int) -> np.ndarray:
    """The n x n identity matrix over GF(2^8)."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    return np.eye(n, dtype=np.uint8)


def random_matrix(
    rows: int,
    cols: int,
    rng: np.random.Generator,
    *,
    full_rank: bool = False,
    field: Optional[FieldType] = None,
    max_attempts: int = 64,
) -> np.ndarray:
    """Uniformly random matrix; optionally resampled until full rank.

    Random matrices over GF(2^8) are full rank with probability about
    ``prod_{k}(1 - 256^-(k+1)) > 0.996``, so resampling terminates almost
    immediately; ``max_attempts`` bounds the pathological case.
    """
    if rows < 0 or cols < 0:
        raise ValueError("rows and cols must be >= 0")
    for _ in range(max_attempts):
        matrix = rng.integers(0, 256, size=(rows, cols), dtype=np.uint8)
        if not full_rank or is_full_rank(matrix, field):
            return matrix
    raise RuntimeError(
        f"failed to draw a full-rank {rows}x{cols} matrix in {max_attempts} attempts"
    )


def is_rref(matrix: np.ndarray) -> bool:
    """Check whether ``matrix`` is in reduced row-echelon form."""
    matrix = _as_matrix(matrix)
    last_pivot_col: int | None = None
    seen_zero_row = False
    for row in matrix:
        nonzero = np.nonzero(row)[0]
        if nonzero.size == 0:
            seen_zero_row = True
            continue
        if seen_zero_row:
            return False  # nonzero row below a zero row
        col = int(nonzero[0])
        if row[col] != 1:
            return False  # pivot not normalized
        if last_pivot_col is not None and col <= last_pivot_col:
            return False  # pivots not strictly right-moving
        if np.count_nonzero(matrix[:, col]) != 1:
            return False  # pivot column not cleared elsewhere
        last_pivot_col = col
    return True
