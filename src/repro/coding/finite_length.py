"""Finite-length RLNC overhead and decode-failure model.

The paper fixes the generation size at n = 40 blocks (Sec. 5), but on
lossy links the right n depends on the loss rate: every coded packet
carries an n-byte coefficient header, every generation boundary costs a
pipeline flush, and a generation only decodes once n linearly
independent packets survive the erasures.  Do-Duy & Vazquez-Castro
("Optimal Finite Length Coding Rate of RLNC", PAPERS.md) derive this
tradeoff in closed form for random linear codes over GF(q); this module
reproduces the parts the control plane needs.

Three quantities drive the model, all exact (no simulation):

``full_rank_probability(received, blocks)``
    P that ``received`` uniform random vectors over GF(q)^n span the
    whole space: prod_{i=0}^{n-1} (1 - q^{i - received}).

``decode_failure_probability(blocks, loss, transmissions)``
    P that a generation does NOT decode after ``transmissions`` coded
    packets cross a Bernoulli(loss) erasure link — the binomial arrival
    distribution folded with the full-rank probability.

``transmissions_for_target(blocks, loss)``
    The smallest packet budget whose failure probability meets a target
    (default 1%).  This is the delay a generation occupies the medium.

On top of these, ``overhead_ratio`` scores a generation size by wire
bytes spent per payload byte delivered, and ``optimal_blocks`` picks the
best n subject to a per-generation delay budget: large generations
amortize boundary costs but pay an n-byte header per packet and take
``~n/(1-p)`` transmissions to land, so the budget caps n ever lower as
loss grows.  With the defaults the solver reproduces the paper's n = 40
on clean links and backs off to small generations past ~20% loss.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from repro.coding.generation import DEFAULT_BLOCK_SIZE, GenerationParams
from repro.coding.packet import HEADER_BYTES
from repro.util.validation import check_probability, check_type

DEFAULT_FIELD_SIZE = 256

# Decode-failure target used when sizing per-generation packet budgets.
DEFAULT_TARGET_FAILURE = 0.01

# Fixed per-generation cost in packet-slots: the decode acknowledgement
# and the pipeline drain at each generation boundary.  Calibrated so the
# overhead curve bottoms out at the paper's n = 40 for 1 KB blocks.
DEFAULT_BOUNDARY_PACKETS = 2.0

# Per-generation delay budget in transmissions.  A generation must meet
# the failure target within this many coded packets on the air; at loss
# p the budget caps the feasible n near budget*(1-p), which is what
# pushes the solver toward small generations on lossy links.
DEFAULT_DELAY_BUDGET = 48

# Candidate generation sizes the solver considers.  Includes the paper
# default (40) and the CLI quick-run default (8).
DEFAULT_CANDIDATES: Tuple[int, ...] = (8, 12, 16, 24, 32, 40)


def _check_blocks(blocks: int) -> int:
    check_type("blocks", blocks, int)
    # Reuse the canonical validation (positivity + GF(2^8) header limit).
    GenerationParams(blocks=blocks, block_size=1)
    return blocks


def full_rank_probability(
    received: int, blocks: int, *, field_size: int = DEFAULT_FIELD_SIZE
) -> float:
    """P that ``received`` uniform coding vectors have rank ``blocks``.

    Zero when fewer than ``blocks`` vectors were received; approaches
    ``1 - 1/(q-1)`` style slack as ``received`` grows (at q = 256 a
    single extra packet already clears 99.99% of rank deficiencies).
    """
    _check_blocks(blocks)
    check_type("received", received, int)
    if received < 0:
        raise ValueError(f"received must be >= 0, got {received}")
    if field_size < 2:
        raise ValueError(f"field_size must be >= 2, got {field_size}")
    if received < blocks:
        return 0.0
    probability = 1.0
    for i in range(blocks):
        probability *= 1.0 - float(field_size) ** (i - received)
    return probability


def expected_decode_packets(
    blocks: int, *, field_size: int = DEFAULT_FIELD_SIZE
) -> float:
    """Expected innovative-arrival count to decode: n plus the q-slack.

    E = sum_{j=1}^{n} 1/(1 - q^{-j}) = n + sum_{j=1}^{n} 1/(q^j - 1);
    at q = 256 the slack is ~0.004 packets regardless of n, which is why
    dense RLNC overhead is dominated by losses, not rank deficiency.
    """
    _check_blocks(blocks)
    if field_size < 2:
        raise ValueError(f"field_size must be >= 2, got {field_size}")
    slack = 0.0
    for j in range(1, blocks + 1):
        term = float(field_size) ** j - 1.0
        if math.isinf(term):
            break
        slack += 1.0 / term
    return float(blocks) + slack


def decode_failure_probability(
    blocks: int,
    loss: float,
    transmissions: int,
    *,
    field_size: int = DEFAULT_FIELD_SIZE,
) -> float:
    """P that a generation fails to decode within a packet budget.

    ``transmissions`` coded packets are sent over a Bernoulli(loss)
    erasure link; the generation decodes iff the surviving count r has
    full-rank coding vectors.  Exact: sum over the binomial arrival
    distribution times ``full_rank_probability(r, blocks)``.
    """
    _check_blocks(blocks)
    check_probability("loss", loss)
    check_type("transmissions", transmissions, int)
    if transmissions < 0:
        raise ValueError(f"transmissions must be >= 0, got {transmissions}")
    if transmissions < blocks:
        return 1.0
    if loss == 0.0:  # repro: ignore[RPR004] exact lossless sentinel
        return 1.0 - full_rank_probability(
            transmissions, blocks, field_size=field_size
        )
    if loss == 1.0:  # repro: ignore[RPR004] exact certain-loss sentinel
        return 1.0
    delivery = 1.0 - loss
    log_delivery = math.log(delivery)
    log_loss = math.log(loss)
    log_total = math.lgamma(transmissions + 1)
    success = 0.0
    for received in range(blocks, transmissions + 1):
        log_pmf = (
            log_total
            - math.lgamma(received + 1)
            - math.lgamma(transmissions - received + 1)
            + received * log_delivery
            + (transmissions - received) * log_loss
        )
        success += math.exp(log_pmf) * full_rank_probability(
            received, blocks, field_size=field_size
        )
    return max(0.0, 1.0 - success)


def transmissions_for_target(
    blocks: int,
    loss: float,
    *,
    target_failure: float = DEFAULT_TARGET_FAILURE,
    field_size: int = DEFAULT_FIELD_SIZE,
    max_transmissions: int = 4096,
) -> int | None:
    """Smallest packet budget meeting the decode-failure target.

    Returns ``None`` when no budget up to ``max_transmissions`` meets
    the target (the loss rate is too high for this generation size) —
    callers treat that as "infeasible", not an error.
    """
    _check_blocks(blocks)
    check_probability("loss", loss)
    check_probability("target_failure", target_failure)
    if loss == 1.0:  # repro: ignore[RPR004] exact certain-loss sentinel
        return None
    start = max(blocks, math.ceil(blocks / (1.0 - loss)))
    for transmissions in range(start, max_transmissions + 1):
        failure = decode_failure_probability(
            blocks, loss, transmissions, field_size=field_size
        )
        if failure <= target_failure:
            return transmissions
    return None


def overhead_ratio(
    blocks: int,
    loss: float,
    *,
    block_size: int = DEFAULT_BLOCK_SIZE,
    target_failure: float = DEFAULT_TARGET_FAILURE,
    boundary_packets: float = DEFAULT_BOUNDARY_PACKETS,
    field_size: int = DEFAULT_FIELD_SIZE,
) -> float:
    """Wire bytes per payload byte delivered, minus one.

    A generation costs ``(T + boundary) * (header + n + m)`` wire bytes
    to deliver ``n * m`` payload bytes, where T is the packet budget
    meeting the failure target.  Small n pays the boundary cost often;
    large n pays an n-byte coefficient header on every packet and a
    superlinear T on lossy links.  Returns ``inf`` when no finite
    budget meets the target.
    """
    _check_blocks(blocks)
    check_probability("loss", loss)
    GenerationParams(blocks=blocks, block_size=block_size)
    if boundary_packets < 0:
        raise ValueError(f"boundary_packets must be >= 0, got {boundary_packets}")
    budget = transmissions_for_target(
        blocks, loss, target_failure=target_failure, field_size=field_size
    )
    if budget is None:
        return math.inf
    wire = (budget + boundary_packets) * (HEADER_BYTES + blocks + block_size)
    payload = blocks * block_size
    return wire / payload - 1.0


def optimal_blocks(
    loss: float,
    target_overhead: float | None = None,
    *,
    block_size: int = DEFAULT_BLOCK_SIZE,
    candidates: Sequence[int] = DEFAULT_CANDIDATES,
    target_failure: float = DEFAULT_TARGET_FAILURE,
    boundary_packets: float = DEFAULT_BOUNDARY_PACKETS,
    delay_budget: int = DEFAULT_DELAY_BUDGET,
    field_size: int = DEFAULT_FIELD_SIZE,
) -> int:
    """Pick the generation size for a measured loss rate.

    Feasibility first: a candidate n must meet the decode-failure
    target within ``delay_budget`` transmissions, which caps n near
    ``delay_budget * (1 - loss)``.  Among feasible candidates, pick the
    lowest ``overhead_ratio``; when ``target_overhead`` is given, prefer
    the largest feasible n whose overhead meets it (fewest generation
    boundaries at acceptable cost).  Falls back to the smallest
    candidate when nothing is feasible — on a link that lossy, short
    generations bound the damage even if the target is missed.
    """
    check_probability("loss", loss)
    if not candidates:
        raise ValueError("candidates must be non-empty")
    ordered = sorted(set(candidates))
    for candidate in ordered:
        _check_blocks(candidate)
    if delay_budget < 1:
        raise ValueError(f"delay_budget must be >= 1, got {delay_budget}")
    feasible = []
    for candidate in ordered:
        budget = transmissions_for_target(
            candidate,
            loss,
            target_failure=target_failure,
            field_size=field_size,
            max_transmissions=delay_budget,
        )
        if budget is not None:
            feasible.append(candidate)
    if not feasible:
        return ordered[0]
    scored = [
        (
            overhead_ratio(
                candidate,
                loss,
                block_size=block_size,
                target_failure=target_failure,
                boundary_packets=boundary_packets,
                field_size=field_size,
            ),
            candidate,
        )
        for candidate in feasible
    ]
    if target_overhead is not None:
        within = [candidate for ratio, candidate in scored if ratio <= target_overhead]
        if within:
            return max(within)
    # Ties prefer the larger n: fewer boundaries at equal wire cost.
    _, best = min(scored, key=lambda item: (item[0], -item[1]))
    return best
