"""Progressive decoding by Gauss-Jordan elimination.

The destination keeps the augmented matrix ``[R | X]`` in *reduced
row-echelon form at all times* (paper Sec. 4).  Every arriving packet is
reduced against the existing rows on the fly:

* a non-innovative packet reduces to an all-zero row and is discarded
  immediately;
* an innovative packet contributes a new pivot, is normalized, and is
  eliminated from all previous rows, keeping the matrix reduced.

Once ``n`` innovative packets have arrived, the left half of the matrix is
the identity and the right half is exactly the original generation — no
separate inversion step is needed.  This is what lets the destination
ACK the instant decodability is reached, which the paper credits with
"alleviating the delay effects caused by network coding".

The augmented matrix lives in one preallocated contiguous ``uint8``
ndarray (rows 0..rank-1 valid, sorted by pivot column) with a parallel
pivot-column index vector.  The elimination kernel is batch-first:
:meth:`ProgressiveDecoder.add_rows` forward-eliminates a whole batch
against every existing pivot with a single GF(2^8) matrix product
(valid because the matrix is *reduced*, so all pivots can be cleared at
once), extracts new pivots from a narrow cache-blocked coefficient
panel (``field.eliminate_panel`` on ``[W | I_k]``, with the identity
half accumulating the row-op transform that is then applied to the
payloads as one matrix product), and back-substitutes all new pivots
into the old rows with a second matrix product.  The single-packet
:meth:`add_packet` / :meth:`add_row` API is a one-row batch.

:class:`BlockDecoder` is the contrast case for the ablation benchmark: it
buffers packets and decodes with one matrix inversion at the end.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro import obs
from repro.coding import matrix as gfmatrix
from repro.coding.backends import resolve_field
from repro.coding.matrix import FieldType
from repro.coding.generation import Generation
from repro.coding.packet import CodedPacket


class ProgressiveDecoder:
    """On-the-fly Gauss-Jordan decoder for one generation.

    When observability is on (an explicit ``registry`` or the global one
    from :mod:`repro.obs`), the decoder reports under the ``decoder.``
    namespace: innovative/redundant packet counters, a rank-progression
    gauge, and — at the moment rank n is reached — the decode latency in
    packets (total received) and the redundancy overhead.
    """

    def __init__(
        self,
        blocks: int,
        block_size: int | None = None,
        *,
        field: Optional[FieldType] = None,
        registry: obs.MetricsRegistry | None = None,
    ) -> None:
        if blocks <= 0:
            raise ValueError(f"blocks must be > 0, got {blocks}")
        if block_size is not None and block_size <= 0:
            raise ValueError(f"block_size must be > 0, got {block_size}")
        self._blocks = blocks
        self._block_size = block_size
        self._field = resolve_field(field)
        width = blocks + (block_size or 0)
        # Contiguous augmented matrix [R | X]: rows 0..rank-1 are valid,
        # kept in RREF and sorted by pivot column.  The parallel pivot
        # index vector records each valid row's pivot column.
        self._matrix = np.zeros((blocks, width), dtype=np.uint8)
        self._pivot_cols = np.zeros(blocks, dtype=np.intp)
        self._width = width
        self._received = 0
        self._innovative = 0
        scope = obs.resolve(registry).attach("decoder")
        self._m_innovative = scope.counter(
            "innovative", "packets that raised the decoder rank"
        )
        self._m_redundant = scope.counter(
            "redundant", "packets that reduced to zero and were discarded"
        )
        self._m_rank = scope.gauge("rank", "current rank of the active generation")
        self._m_eliminated = scope.counter(
            "rows_eliminated", "rows that went through the elimination kernel"
        )
        self._m_decode_packets = scope.histogram(
            "packets_to_decode", "packets received when rank n was reached"
        )
        self._m_overhead = scope.histogram(
            "overhead_packets", "non-innovative packets absorbed per decoded generation"
        )

    @property
    def blocks(self) -> int:
        """Generation size n."""
        return self._blocks

    @property
    def rank(self) -> int:
        """Current rank (number of innovative packets absorbed)."""
        return self._innovative

    @property
    def received(self) -> int:
        """Total packets offered, innovative or not."""
        return self._received

    @property
    def redundant(self) -> int:
        """Packets that reduced to zero and were discarded."""
        return self._received - self._innovative

    @property
    def is_complete(self) -> bool:
        """True once rank n is reached and the generation is decodable."""
        return self._innovative >= self._blocks

    def add_packet(self, packet: CodedPacket) -> bool:
        """Absorb one packet; returns True if it was innovative.

        Payload handling follows the packet: if the decoder was built with
        a ``block_size`` the packet must carry a payload of that size;
        otherwise the decoder runs in coefficient-only mode.
        """
        self._check_packet(packet)
        if self._block_size is not None:
            row = np.concatenate([packet.coefficients, packet.payload])
        else:
            row = packet.coefficients
        return self.add_row(row)

    def add_packets(self, packets: Sequence[CodedPacket]) -> np.ndarray:
        """Absorb a batch of packets in order; returns per-packet verdicts.

        Equivalent to calling :meth:`add_packet` on each element, but the
        whole batch goes through one invocation of the elimination
        kernel.
        """
        if not len(packets):
            return np.zeros(0, dtype=bool)
        batch = np.empty((len(packets), self._width), dtype=np.uint8)
        for index, packet in enumerate(packets):
            self._check_packet(packet)
            batch[index, : self._blocks] = packet.coefficients
            if self._block_size is not None:
                batch[index, self._blocks :] = packet.payload
        return self.add_rows(batch, copy=False)

    def _check_packet(self, packet: CodedPacket) -> None:
        if packet.blocks != self._blocks:
            raise ValueError(
                f"packet generation size {packet.blocks} != decoder's {self._blocks}"
            )
        if self._block_size is not None:
            if packet.payload is None:
                raise ValueError("decoder expects payloads but packet has none")
            if packet.block_size != self._block_size:
                raise ValueError(
                    f"payload size {packet.block_size} != decoder's {self._block_size}"
                )

    def add_row(self, row: np.ndarray) -> bool:
        """Absorb one augmented row ``[vector | payload]``.

        A one-row batch through :meth:`add_rows`; the caller's array is
        never mutated.
        """
        row = np.asarray(row, dtype=np.uint8)
        if row.ndim != 1 or row.size != self._width:
            raise ValueError(f"row width {row.size} != expected {self._width}")
        return bool(self.add_rows(row[None, :])[0])

    def add_rows(self, batch: np.ndarray, *, copy: bool = True) -> np.ndarray:
        """Absorb a batch of augmented rows; returns per-row verdicts.

        ``batch`` is (k, width); the returned boolean array marks which
        rows were innovative.  The batch is forward-eliminated against
        all existing pivots at once (one GF(2^8) matrix product — legal
        because the stored matrix is *reduced* row-echelon, so no pivot
        row carries another pivot's column), then new pivots are
        extracted from a coefficient-only ``[W | I_k]`` panel whose
        accumulated transform updates the payload half in one matrix
        product, and finally back-substituted into the previously stored
        rows with a single matrix product.
        """
        batch = np.array(batch, dtype=np.uint8, copy=copy, ndmin=2)
        if batch.ndim != 2 or batch.shape[1] != self._width:
            raise ValueError(
                f"batch width {batch.shape[-1]} != expected {self._width}"
            )
        k = batch.shape[0]
        self._received += k
        verdicts = np.zeros(k, dtype=bool)
        if k == 0:
            return verdicts
        if self.is_complete:
            self._m_redundant.inc(k)
            return verdicts
        # Fast path for systematic arrivals: a leading run of plain rows
        # (unit coefficient vectors on fresh pivot columns) is already
        # reduced with respect to the stored RREF — Phase 1 would be a
        # no-op because a unit vector is zero at every stored pivot
        # column — so the run installs directly, skipping the
        # elimination kernel entirely.  On a clean link a systematic
        # generation decodes without a single eliminated row.
        run, run_cols = self._plain_run(batch)
        if run:
            self._install_rows(batch[:run], np.asarray(run_cols, dtype=np.intp))
            verdicts[:run] = True
            if run == k or self.is_complete:
                rest = k - run
                if rest:
                    self._m_redundant.inc(rest)
                return verdicts
            verdicts[run:] = self._eliminate_batch(batch[run:])
            return verdicts
        verdicts[:] = self._eliminate_batch(batch)
        return verdicts

    def _plain_run(self, batch: np.ndarray) -> "tuple[int, List[int]]":
        """Length (and pivot columns) of the leading plain-row run.

        A row qualifies while its coefficient half is a unit vector with
        value 1 on a column that is neither a stored pivot nor claimed
        earlier in the run.  Dense batches fail on the first row, so the
        scan costs one nonzero count in the common case.
        """
        blocks = self._blocks
        taken = np.zeros(blocks, dtype=bool)
        taken[self._pivot_cols[: self._innovative]] = True
        limit = self._blocks - self._innovative
        cols: List[int] = []
        for row in batch:
            if len(cols) >= limit:
                break
            nonzero = np.nonzero(row[:blocks])[0]
            if nonzero.size != 1:
                break
            col = int(nonzero[0])
            if row[col] != 1 or taken[col]:
                break
            taken[col] = True
            cols.append(col)
        return len(cols), cols

    def _install_rows(self, fresh: np.ndarray, fresh_cols: np.ndarray) -> None:
        """Install already-reduced rows: back-substitute + sorted merge.

        ``fresh`` rows must be mutually reduced, normalized, and zero at
        every stored pivot column, with pivots ``fresh_cols`` — exactly
        what the plain-run scan guarantees.
        """
        rank = self._innovative
        added = fresh.shape[0]
        if rank:
            old = self._matrix[:rank]
            old_coeffs = old[:, fresh_cols]
            if old_coeffs.any():
                np.bitwise_xor(old, self._field.matmul(old_coeffs, fresh), out=old)
        merged_cols = np.concatenate([self._pivot_cols[:rank], fresh_cols])
        order = np.argsort(merged_cols, kind="stable")
        merged = np.concatenate([self._matrix[:rank], fresh], axis=0)
        total = rank + added
        self._matrix[:total] = merged[order]
        self._pivot_cols[:total] = merged_cols[order]
        self._innovative = total
        self._m_innovative.inc(added)
        self._m_rank.set(total)
        if self.is_complete:
            self._m_decode_packets.observe(self._received)
            self._m_overhead.observe(self._received - self._innovative)

    def _eliminate_batch(self, batch: np.ndarray) -> np.ndarray:
        """Run a batch through the full elimination kernel (Phases 1-4)."""
        k = batch.shape[0]
        verdicts = np.zeros(k, dtype=bool)
        self._m_eliminated.inc(k)
        field = self._field
        blocks = self._blocks
        rank = self._innovative
        # Phase 1: forward-eliminate the whole batch against every
        # existing pivot in one product.
        if rank:
            coeffs = batch[:, self._pivot_cols[:rank]]
            if coeffs.any():
                np.bitwise_xor(
                    batch, field.matmul(coeffs, self._matrix[:rank]), out=batch
                )
        # Phase 2: extract new pivots with a cache-blocked panel.  Only
        # the narrow coefficient half enters the row-order pivot scan, as
        # a [W | I_k] work matrix whose identity half accumulates the
        # row-op transform T while W is eliminated in place (the panel
        # factorization trick).  Payloads never ride through the scan;
        # the accumulated T is applied to them afterwards as one matrix
        # product — bit-identical to full-width row operations because
        # GF(2^8) arithmetic is exact.
        limit = blocks - rank
        if k == 1:
            # Single-row batch (the per-packet API): no intra-batch
            # elimination is possible, so the panel machinery below —
            # the [W | I] work matrix and the payload product — is pure
            # overhead.  Find the pivot and normalize the row in place.
            row = batch[0]
            nonzero = np.nonzero(row[:blocks])[0]
            if nonzero.size == 0:
                self._m_redundant.inc(k)
                return verdicts
            pivot_col = int(nonzero[0])
            pivot_value = int(row[pivot_col])
            if pivot_value != 1:
                row[:] = field.scale_row(row, int(field.inverse(pivot_value)))
            fresh = batch
            fresh_cols = np.array([pivot_col], dtype=np.intp)
            verdicts[0] = True
            added = 1
        else:
            work = np.empty((k, blocks + k), dtype=np.uint8)
            work[:, :blocks] = batch[:, :blocks]
            work[:, blocks:] = np.eye(k, dtype=np.uint8)
            pivot_rows, fresh_cols = field.eliminate_panel(work, blocks, limit)
            added = len(pivot_rows)
            if added == 0:
                self._m_redundant.inc(k)
                return verdicts
            verdicts[pivot_rows] = True
            # fresh = [reduced coefficients | T_pivot . payloads]
            fresh = np.empty((added, self._width), dtype=np.uint8)
            fresh[:, :blocks] = work[pivot_rows, :blocks]
            if self._width > blocks:
                fresh[:, blocks:] = field.matmul(
                    work[pivot_rows, blocks:], batch[:, blocks:]
                )
        # Phases 3-4 (back-substitution into the old rows + sorted
        # merge) are shared with the plain-row fast path: the fresh rows
        # are mutually reduced, normalized, and zero in the old pivot
        # columns, which is exactly the _install_rows contract.
        self._install_rows(fresh, np.asarray(fresh_cols, dtype=np.intp))
        self._m_redundant.inc(k - added)
        return verdicts

    def coefficient_matrix(self) -> np.ndarray:
        """The current (rank x n) reduced coefficient matrix."""
        return self._matrix[: self._innovative, : self._blocks].copy()

    def decode(self) -> np.ndarray:
        """Return the recovered generation matrix B.

        Only valid when :attr:`is_complete` is True and the decoder holds
        payloads; by the RREF invariant the payload half of the matrix
        *is* B at that point, so this is a copy, not a solve.
        """
        if not self.is_complete:
            raise RuntimeError(
                f"generation not decodable yet: rank {self._innovative}/{self._blocks}"
            )
        if self._block_size is None:
            raise RuntimeError("coefficient-only decoder holds no payloads")
        return self._matrix[: self._blocks, self._blocks :].copy()

    def decode_generation(self, generation_id: int) -> Generation:
        """Decode and wrap the result in a :class:`Generation`."""
        return Generation(generation_id, self.decode())


class BlockDecoder:
    """Decode-at-the-end baseline: buffer packets, invert once.

    The ablation benchmark compares this against the progressive decoder
    to quantify the latency the paper's progressive scheme removes.
    """

    def __init__(
        self, blocks: int, block_size: int, *, field: Optional[FieldType] = None
    ) -> None:
        if blocks <= 0 or block_size <= 0:
            raise ValueError("blocks and block_size must be > 0")
        self._blocks = blocks
        self._block_size = block_size
        self._field = resolve_field(field)
        self._vectors: List[np.ndarray] = []
        self._payloads: List[np.ndarray] = []

    @property
    def received(self) -> int:
        """Number of buffered packets (dependent ones included)."""
        return len(self._vectors)

    def add_packet(self, packet: CodedPacket) -> None:
        """Buffer a packet without any innovation check."""
        if packet.blocks != self._blocks or packet.block_size != self._block_size:
            raise ValueError("packet dimensions do not match decoder")
        self._vectors.append(packet.coefficients.copy())
        self._payloads.append(packet.payload.copy())

    def try_decode(self) -> np.ndarray | None:
        """Attempt a full decode; None if the buffer is not full rank.

        Cost is one rank check plus (on success) one n x n inversion and
        an n x m multiply — all deferred to the end, which is exactly the
        delay profile the progressive decoder avoids.
        """
        if len(self._vectors) < self._blocks:
            return None
        stacked = np.stack(self._vectors)
        # One RREF pass on the transpose yields both the rank and the
        # earliest maximal independent row set: pivot columns of R^T are
        # exactly the greedy-by-incremental-rank row indices of R.
        _, pivots = gfmatrix.rref(stacked.T, self._field)
        if len(pivots) < self._blocks:
            return None
        chosen = pivots[: self._blocks]
        coeffs = stacked[chosen]
        payloads = np.stack([self._payloads[i] for i in chosen])
        return gfmatrix.solve(coeffs, payloads, self._field)
