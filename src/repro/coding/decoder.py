"""Progressive decoding by Gauss-Jordan elimination.

The destination keeps the augmented matrix ``[R | X]`` in *reduced
row-echelon form at all times* (paper Sec. 4).  Every arriving packet is
reduced against the existing rows on the fly:

* a non-innovative packet reduces to an all-zero row and is discarded
  immediately;
* an innovative packet contributes a new pivot, is normalized, and is
  eliminated from all previous rows, keeping the matrix reduced.

Once ``n`` innovative packets have arrived, the left half of the matrix is
the identity and the right half is exactly the original generation — no
separate inversion step is needed.  This is what lets the destination
ACK the instant decodability is reached, which the paper credits with
"alleviating the delay effects caused by network coding".

:class:`BlockDecoder` is the contrast case for the ablation benchmark: it
buffers packets and decodes with one matrix inversion at the end.
"""

from __future__ import annotations

from typing import List, Optional, Type

import numpy as np

from repro import obs
from repro.coding import matrix as gfmatrix
from repro.coding.gf256 import GF256
from repro.coding.generation import Generation
from repro.coding.packet import CodedPacket


class ProgressiveDecoder:
    """On-the-fly Gauss-Jordan decoder for one generation.

    When observability is on (an explicit ``registry`` or the global one
    from :mod:`repro.obs`), the decoder reports under the ``decoder.``
    namespace: innovative/redundant packet counters, a rank-progression
    gauge, and — at the moment rank n is reached — the decode latency in
    packets (total received) and the redundancy overhead.
    """

    def __init__(
        self,
        blocks: int,
        block_size: Optional[int] = None,
        *,
        field: Type = GF256,
        registry: Optional[obs.MetricsRegistry] = None,
    ) -> None:
        if blocks <= 0:
            raise ValueError(f"blocks must be > 0, got {blocks}")
        if block_size is not None and block_size <= 0:
            raise ValueError(f"block_size must be > 0, got {block_size}")
        self._blocks = blocks
        self._block_size = block_size
        self._field = field
        width = blocks + (block_size or 0)
        # Augmented rows [coding vector | payload], kept in RREF.  Row i is
        # the row whose pivot column is self._pivot_cols[i]; rows are kept
        # sorted by pivot column.
        self._rows: List[np.ndarray] = []
        self._pivot_cols: List[int] = []
        self._width = width
        self._received = 0
        self._innovative = 0
        scope = obs.resolve(registry).attach("decoder")
        self._m_innovative = scope.counter(
            "innovative", "packets that raised the decoder rank"
        )
        self._m_redundant = scope.counter(
            "redundant", "packets that reduced to zero and were discarded"
        )
        self._m_rank = scope.gauge("rank", "current rank of the active generation")
        self._m_decode_packets = scope.histogram(
            "packets_to_decode", "packets received when rank n was reached"
        )
        self._m_overhead = scope.histogram(
            "overhead_packets", "non-innovative packets absorbed per decoded generation"
        )

    @property
    def blocks(self) -> int:
        """Generation size n."""
        return self._blocks

    @property
    def rank(self) -> int:
        """Current rank (number of innovative packets absorbed)."""
        return self._innovative

    @property
    def received(self) -> int:
        """Total packets offered, innovative or not."""
        return self._received

    @property
    def redundant(self) -> int:
        """Packets that reduced to zero and were discarded."""
        return self._received - self._innovative

    @property
    def is_complete(self) -> bool:
        """True once rank n is reached and the generation is decodable."""
        return self._innovative >= self._blocks

    def add_packet(self, packet: CodedPacket) -> bool:
        """Absorb one packet; returns True if it was innovative.

        Payload handling follows the packet: if the decoder was built with
        a ``block_size`` the packet must carry a payload of that size;
        otherwise the decoder runs in coefficient-only mode.
        """
        if packet.blocks != self._blocks:
            raise ValueError(
                f"packet generation size {packet.blocks} != decoder's {self._blocks}"
            )
        if self._block_size is not None:
            if packet.payload is None:
                raise ValueError("decoder expects payloads but packet has none")
            if packet.block_size != self._block_size:
                raise ValueError(
                    f"payload size {packet.block_size} != decoder's {self._block_size}"
                )
            row = np.concatenate([packet.coefficients, packet.payload]).astype(np.uint8)
        else:
            row = packet.coefficients.copy()
        return self.add_row(row)

    def add_row(self, row: np.ndarray) -> bool:
        """Absorb one augmented row ``[vector | payload]``.

        This is the elimination kernel shared by :meth:`add_packet` and
        the tests; it mutates ``row``.
        """
        row = np.asarray(row, dtype=np.uint8)
        if row.size != self._width:
            raise ValueError(f"row width {row.size} != expected {self._width}")
        self._received += 1
        if self.is_complete:
            self._m_redundant.inc()
            return False
        field = self._field
        # Forward-eliminate against existing pivots (rows sorted by pivot).
        for pivot_col, existing in zip(self._pivot_cols, self._rows):
            coeff = int(row[pivot_col])
            if coeff:
                field.addmul_row(row, existing, coeff)
        nonzero = np.nonzero(row[: self._blocks])[0]
        if nonzero.size == 0:
            # Non-innovative: the coding vector vanished.  (With payloads, a
            # consistent packet's payload vanishes too; we discard either way.)
            self._m_redundant.inc()
            return False
        pivot_col = int(nonzero[0])
        pivot_value = int(row[pivot_col])
        if pivot_value != 1:
            row = field.scale_row(row, int(field.inverse(pivot_value)))
        # Back-substitute: clear this pivot column from every existing row
        # so the matrix stays *reduced* row-echelon, not merely echelon.
        for existing in self._rows:
            coeff = int(existing[pivot_col])
            if coeff:
                field.addmul_row(existing, row, coeff)
        insert_at = int(np.searchsorted(np.array(self._pivot_cols), pivot_col))
        self._rows.insert(insert_at, row)
        self._pivot_cols.insert(insert_at, pivot_col)
        self._innovative += 1
        self._m_innovative.inc()
        self._m_rank.set(self._innovative)
        if self._innovative >= self._blocks:
            self._m_decode_packets.observe(self._received)
            self._m_overhead.observe(self._received - self._innovative)
        return True

    def coefficient_matrix(self) -> np.ndarray:
        """The current (rank x n) reduced coefficient matrix."""
        if not self._rows:
            return np.zeros((0, self._blocks), dtype=np.uint8)
        return np.stack([row[: self._blocks] for row in self._rows])

    def decode(self) -> np.ndarray:
        """Return the recovered generation matrix B.

        Only valid when :attr:`is_complete` is True and the decoder holds
        payloads; by the RREF invariant the payload half of the matrix
        *is* B at that point, so this is a copy, not a solve.
        """
        if not self.is_complete:
            raise RuntimeError(
                f"generation not decodable yet: rank {self._innovative}/{self._blocks}"
            )
        if self._block_size is None:
            raise RuntimeError("coefficient-only decoder holds no payloads")
        return np.stack([row[self._blocks :] for row in self._rows])

    def decode_generation(self, generation_id: int) -> Generation:
        """Decode and wrap the result in a :class:`Generation`."""
        return Generation(generation_id, self.decode())


class BlockDecoder:
    """Decode-at-the-end baseline: buffer packets, invert once.

    The ablation benchmark compares this against the progressive decoder
    to quantify the latency the paper's progressive scheme removes.
    """

    def __init__(
        self, blocks: int, block_size: int, *, field: Type = GF256
    ) -> None:
        if blocks <= 0 or block_size <= 0:
            raise ValueError("blocks and block_size must be > 0")
        self._blocks = blocks
        self._block_size = block_size
        self._field = field
        self._vectors: List[np.ndarray] = []
        self._payloads: List[np.ndarray] = []

    @property
    def received(self) -> int:
        """Number of buffered packets (dependent ones included)."""
        return len(self._vectors)

    def add_packet(self, packet: CodedPacket) -> None:
        """Buffer a packet without any innovation check."""
        if packet.blocks != self._blocks or packet.block_size != self._block_size:
            raise ValueError("packet dimensions do not match decoder")
        self._vectors.append(packet.coefficients.copy())
        self._payloads.append(packet.payload.copy())

    def try_decode(self) -> Optional[np.ndarray]:
        """Attempt a full decode; None if the buffer is not full rank.

        Cost is one rank check plus (on success) one n x n inversion and
        an n x m multiply — all deferred to the end, which is exactly the
        delay profile the progressive decoder avoids.
        """
        if len(self._vectors) < self._blocks:
            return None
        stacked = np.stack(self._vectors)
        reduced, pivots = gfmatrix.rref(stacked, self._field)
        if len(pivots) < self._blocks:
            return None
        # Select n independent rows (greedy by incremental rank).
        chosen: List[int] = []
        probe = ProgressiveDecoder(self._blocks, field=self._field)
        for index, vector in enumerate(self._vectors):
            if probe.add_row(vector.copy()):
                chosen.append(index)
            if probe.is_complete:
                break
        coeffs = np.stack([self._vectors[i] for i in chosen])
        payloads = np.stack([self._payloads[i] for i in chosen])
        return gfmatrix.solve(coeffs, payloads, self._field)
