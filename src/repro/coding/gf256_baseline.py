"""Baseline GF(2^8) codec: pure-Python, byte-at-a-time lookup tables.

This mirrors the "traditional lookup-table approach" the paper benchmarks
its accelerated codec against (Sec. 4).  Every operation walks rows one
byte at a time through Python-level loops, exactly the cost profile the
accelerated :class:`repro.coding.gf256.GF256` engine removes.

The class implements the same interface as ``GF256`` so the encoder and
decoder can be instantiated with either engine — the coding-speed
benchmark (``benchmarks/bench_coding_speed.py``) relies on this symmetry
to reproduce the paper's 3-5x speedup claim.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.coding.gf256 import eliminate_panel_reference, exp_table, log_table

ArrayLike = int | np.ndarray

_EXP: List[int] = [int(v) for v in exp_table()]
_LOG: List[int] = [int(v) for v in log_table()]
_ORDER = 255



def _restore_shape(result: np.ndarray, *operands: ArrayLike) -> np.ndarray:
    """Return a 0-d array when every operand was scalar, matching the
    accelerated engine's output shape semantics."""
    if all(np.asarray(op).ndim == 0 for op in operands):
        return result.reshape(())
    return result

def _mul_byte(a: int, b: int) -> int:
    """Single-byte field multiply via log/exp lookup."""
    if a == 0 or b == 0:
        return 0
    return _EXP[_LOG[a] + _LOG[b]]


class GF256Baseline:
    """Pure-Python lookup-table codec with the ``GF256`` interface."""

    name = "baseline"

    @staticmethod
    def add(a: ArrayLike, b: ArrayLike) -> np.ndarray:
        """Field addition: bytewise XOR computed in a Python loop."""
        a_arr = np.atleast_1d(np.asarray(a, dtype=np.uint8))
        b_arr = np.atleast_1d(np.asarray(b, dtype=np.uint8))
        a_list, b_list = a_arr.tolist(), b_arr.tolist()
        if len(a_list) == 1 and len(b_list) > 1:
            a_list = a_list * len(b_list)
        if len(b_list) == 1 and len(a_list) > 1:
            b_list = b_list * len(a_list)
        result = np.array([x ^ y for x, y in zip(a_list, b_list)], dtype=np.uint8)
        return _restore_shape(result, a, b)

    sub = add

    @staticmethod
    def multiply(a: ArrayLike, b: ArrayLike) -> np.ndarray:
        """Elementwise multiply, one table lookup per byte."""
        a_arr = np.atleast_1d(np.asarray(a, dtype=np.uint8))
        b_arr = np.atleast_1d(np.asarray(b, dtype=np.uint8))
        a_list, b_list = a_arr.tolist(), b_arr.tolist()
        if len(a_list) == 1 and len(b_list) > 1:
            a_list = a_list * len(b_list)
        if len(b_list) == 1 and len(a_list) > 1:
            b_list = b_list * len(a_list)
        result = np.array(
            [_mul_byte(x, y) for x, y in zip(a_list, b_list)], dtype=np.uint8
        )
        return _restore_shape(result, a, b)

    @staticmethod
    def inverse(a: ArrayLike) -> np.ndarray:
        """Elementwise inverse via ``exp[255 - log[a]]``; raises on zero."""
        a_arr = np.atleast_1d(np.asarray(a, dtype=np.uint8))
        out = []
        for value in a_arr.tolist():
            if value == 0:
                raise ZeroDivisionError("0 has no multiplicative inverse in GF(2^8)")
            out.append(_EXP[_ORDER - _LOG[value]])
        return _restore_shape(np.array(out, dtype=np.uint8), a)

    @staticmethod
    def divide(a: ArrayLike, b: ArrayLike) -> np.ndarray:
        """Elementwise ``a / b``."""
        return GF256Baseline.multiply(a, GF256Baseline.inverse(b))

    @staticmethod
    def scale_row(row: np.ndarray, coefficient: int) -> np.ndarray:
        """Multiply a row by a scalar, byte at a time."""
        return np.array(
            [_mul_byte(coefficient, v) for v in np.asarray(row, dtype=np.uint8).tolist()],
            dtype=np.uint8,
        )

    @staticmethod
    def scale_rows(rows: np.ndarray, coefficients: np.ndarray) -> np.ndarray:
        """Row-wise scaling, one byte-at-a-time pass per row."""
        rows = np.asarray(rows, dtype=np.uint8)
        coefficients = np.asarray(coefficients, dtype=np.uint8)
        return np.stack(
            [
                GF256Baseline.scale_row(row, int(coeff))
                for row, coeff in zip(rows, coefficients)
            ]
        )

    @staticmethod
    def addmul_row(target: np.ndarray, source: np.ndarray, coefficient: int) -> None:
        """In-place ``target ^= coefficient * source``, byte at a time."""
        if coefficient == 0:
            return
        src = np.asarray(source, dtype=np.uint8).tolist()
        for index, value in enumerate(src):
            target[index] ^= _mul_byte(coefficient, value)

    @staticmethod
    def addmul_rows(
        targets: np.ndarray, source: np.ndarray, coefficients: np.ndarray
    ) -> None:
        """In-place ``targets[i] ^= coefficients[i] * source`` per row."""
        coefficients = np.asarray(coefficients, dtype=np.uint8)
        for index, coeff in enumerate(coefficients.tolist()):
            if coeff:
                GF256Baseline.addmul_row(targets[index], source, coeff)

    @staticmethod
    def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Matrix product with triple-nested Python loops."""
        a = np.asarray(a, dtype=np.uint8)
        b = np.asarray(b, dtype=np.uint8)
        if a.ndim != 2 or b.ndim != 2:
            raise ValueError("matmul requires 2-D operands")
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"shape mismatch: {a.shape} x {b.shape}")
        n, k = a.shape
        m = b.shape[1]
        a_rows = a.tolist()
        b_rows = b.tolist()
        out = np.zeros((n, m), dtype=np.uint8)
        for i in range(n):
            row_out = [0] * m
            a_row = a_rows[i]
            for j in range(k):
                coeff = a_row[j]
                if coeff == 0:
                    continue
                b_row = b_rows[j]
                log_c = _LOG[coeff]
                for col in range(m):
                    value = b_row[col]
                    if value:
                        row_out[col] ^= _EXP[log_c + _LOG[value]]
            out[i] = row_out
        return out

    @staticmethod
    def matvec(a: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Matrix-vector product."""
        v = np.asarray(v, dtype=np.uint8)
        if v.ndim != 1:
            raise ValueError("matvec requires a 1-D vector")
        return GF256Baseline.matmul(a, v[:, None])[:, 0]

    @staticmethod
    def power(a: int, exponent: int) -> int:
        """Scalar exponentiation by repeated multiplication."""
        if exponent < 0:
            raise ValueError("exponent must be >= 0")
        result = 1
        for _ in range(exponent):
            result = _mul_byte(result, a)
        return result

    @classmethod
    def eliminate_panel(
        cls, work: np.ndarray, panel: int, limit: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Panel Gauss-Jordan elimination (see :meth:`GF256.eliminate_panel`),
        driven through the byte-at-a-time row kernels."""
        return eliminate_panel_reference(cls, work, panel, limit)
