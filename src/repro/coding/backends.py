"""Pluggable GF(2^8) codec backends behind the ``FieldType`` seam.

The paper accelerates its coding loop with SSE2 because coding
throughput bounds everything downstream; this module is the Python
analogue of that seam.  Every backend exposes the same classmethod
surface as :class:`repro.coding.gf256.GF256` (the *reference oracle*)
and must be bit-identical to it on every operation — CI runs the
equivalence suite once per registered backend to enforce exactly that.

Built-in backends:

* ``numpy`` — the reference: flat 64 KiB-table gathers
  (:class:`repro.coding.gf256.GF256`).  Always available.
* ``nibble`` — nibble-split multiplication: the 64 KiB flat gather is
  replaced by two composed 16x256 tables (4 KiB each, L1-resident)
  indexed by the high and low nibble of the coefficient
  (:class:`GF256NibbleSplit`).  Always available.
* ``native`` — compiled C kernels (SSSE3/AVX2 ``pshufb`` nibble
  multiply, the direct descendant of the paper's SSE2 loop) built at
  first use with the system C compiler and loaded through ``ctypes``
  (:mod:`repro.coding.native`).  Available when a toolchain is.
* ``numba`` — JIT-compiled table kernels, registered only when numba
  is importable.

Selection:

* :func:`get_backend` — look one up by name (``"best"`` picks the
  fastest available).
* :func:`active_backend` — the process default used whenever an
  encoder/decoder is built without an explicit ``field=``; resolves
  an explicit :func:`select_backend` first, then the
  ``OMNC_GF_BACKEND`` environment variable, then the reference.
* :func:`select_backend` — set the process default (the CLI's
  ``--gf-backend`` lands here); ``export=True`` also sets
  ``OMNC_GF_BACKEND`` so campaign worker processes inherit the choice.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.coding.gf256 import GF256, _MUL_TABLE, meter_bytes
from repro.coding.gf256_baseline import GF256Baseline

#: Any GF(2^8) arithmetic backend: the table-driven vectorized class
#: family (GF256 and its registered subclasses) or the pure-Python
#: baseline.  All expose the same classmethod surface.
FieldType = type[GF256] | type[GF256Baseline]

#: Environment variable naming the default backend for the process (and,
#: because environments are inherited, for campaign worker processes).
BACKEND_ENV = "OMNC_GF_BACKEND"

#: The always-available reference backend name.
REFERENCE_BACKEND = "numpy"

#: Preference order for ``get_backend("best")``, most preferred first.
#: ``numpy`` outranks ``nibble``: on current numpy the two extra index
#: tensors the nibble composition builds cost more than the 64 KiB
#: table's cache misses save (the nibble idea only pays once the table
#: lookups move into SIMD registers — which is the native backend).
_BEST_ORDER = ("native", "numba", "numpy", "nibble")


# ---------------------------------------------------------------------------
# Nibble-split backend


def _build_nibble_tables() -> Tuple[np.ndarray, np.ndarray]:
    """Two composed 16x256 product tables.

    ``hi[n, b] = (n << 4) * b`` and ``lo[n, b] = n * b`` over GF(2^8);
    since multiplication distributes over the XOR that addition is,
    ``a * b == hi[a >> 4, b] ^ lo[a & 0xF, b]``.  Together they replace
    the 64 KiB flat table with 8 KiB that stays L1-resident.
    """
    nibbles = np.arange(16, dtype=np.intp)
    columns = np.arange(256, dtype=np.intp)
    hi = _MUL_TABLE[np.ix_(nibbles << 4, columns)]
    lo = _MUL_TABLE[np.ix_(nibbles, columns)]
    return np.ascontiguousarray(hi), np.ascontiguousarray(lo)


_NIB_HI, _NIB_LO = _build_nibble_tables()
_NIB_HI_FLAT = _NIB_HI.ravel()
_NIB_LO_FLAT = _NIB_LO.ravel()


class GF256NibbleSplit(GF256):
    """Nibble-split gathers: two 4 KiB tables instead of one 64 KiB.

    Each per-row-coefficient kernel computes
    ``hi_flat[(c >> 4) << 8 | b] ^ lo_flat[(c & 15) << 8 | b]`` with two
    ``take`` gathers whose tables both fit in L1.  Scalar-coefficient
    kernels (``scale_row``, ``addmul_row``) inherit the reference: a
    single 256-byte table row is already cache-resident.
    """

    name = "nibble"

    @staticmethod
    def scale_rows(rows: np.ndarray, coefficients: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.uint8)
        coefficients = np.asarray(coefficients, dtype=np.int32)
        hi = ((coefficients >> 4) << 8)[:, None] | rows
        lo = ((coefficients & 15) << 8)[:, None] | rows
        return _NIB_HI_FLAT.take(hi) ^ _NIB_LO_FLAT.take(lo)

    @staticmethod
    def addmul_rows(
        targets: np.ndarray, source: np.ndarray, coefficients: np.ndarray
    ) -> None:
        coefficients = np.asarray(coefficients)
        nz = np.nonzero(coefficients)[0]
        if nz.size == 0:
            return
        active = coefficients[nz].astype(np.int32)
        hi = ((active >> 4) << 8)[:, None] | source
        lo = ((active & 15) << 8)[:, None] | source
        targets[nz] ^= _NIB_HI_FLAT.take(hi) ^ _NIB_LO_FLAT.take(lo)
        meter_bytes(nz.size * source.size)

    @staticmethod
    def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=np.uint8)
        b = np.asarray(b, dtype=np.uint8)
        if a.ndim != 2 or b.ndim != 2:
            raise ValueError("matmul requires 2-D operands")
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"shape mismatch: {a.shape} x {b.shape}")
        n, k = a.shape
        m = b.shape[1]
        if k == 0 or n == 0:
            return np.zeros((n, m), dtype=np.uint8)
        if n == 1:
            row = a[0].astype(np.int32)
            hi = ((row >> 4) << 8)[:, None] | b
            lo = ((row & 15) << 8)[:, None] | b
            products = _NIB_HI_FLAT.take(hi) ^ _NIB_LO_FLAT.take(lo)
            out = np.bitwise_xor.reduce(products, axis=0)[None, :]
        elif k == 1:
            col = a[:, 0].astype(np.int32)
            hi = ((col >> 4) << 8)[:, None] | b[0]
            lo = ((col & 15) << 8)[:, None] | b[0]
            out = _NIB_HI_FLAT.take(hi) ^ _NIB_LO_FLAT.take(lo)
        elif n * k * m <= GF256._MATMUL_TENSOR_LIMIT:
            coeffs = a.astype(np.int32)
            hi = (((coeffs >> 4) << 8)[:, :, None]) | b[None, :, :]
            lo = (((coeffs & 15) << 8)[:, :, None]) | b[None, :, :]
            products = _NIB_HI_FLAT.take(hi) ^ _NIB_LO_FLAT.take(lo)
            out = np.bitwise_xor.reduce(products, axis=1)
        else:
            out = np.zeros((n, m), dtype=np.uint8)
            for j in range(k):
                col = a[:, j]
                nz = np.nonzero(col)[0]
                if nz.size == 0:
                    continue
                active = col[nz].astype(np.int32)
                hi = ((active >> 4) << 8)[:, None] | b[j]
                lo = ((active & 15) << 8)[:, None] | b[j]
                out[nz] ^= _NIB_HI_FLAT.take(hi) ^ _NIB_LO_FLAT.take(lo)
        meter_bytes(int(np.count_nonzero(a.any(axis=1))) * m)
        return out


# ---------------------------------------------------------------------------
# Registry

# The backend registry is deliberately process-local: every process
# (parent and shard workers alike) repopulates it from the same
# deterministic module-level register_backend() calls at import time,
# and the chosen backend travels to workers by *name* via
# OMNC_GF_BACKEND, never by object.  Divergence is therefore impossible
# by construction, which is what the RPR102 pragmas record.
_REGISTRY: Dict[str, FieldType] = {}  # repro: ignore[RPR102]
#: Lazy backends: name -> provider returning a FieldType or None when the
#: backend cannot run here (no toolchain, numba absent, ...).  Providers
#: run at most once; their verdict is cached in ``_RESOLVED``.
_PROVIDERS: Dict[str, Callable[[], Optional[FieldType]]] = {}  # repro: ignore[RPR102]
_RESOLVED: Dict[str, Optional[FieldType]] = {}  # repro: ignore[RPR102]
#: Explicit process-default selection (set via :func:`select_backend`).
_SELECTED: Optional[str] = None


def register_backend(
    name: str,
    backend: FieldType | Callable[[], Optional[FieldType]],
    *,
    lazy: bool = False,
) -> None:
    """Register a backend class (or, with ``lazy=True``, a provider).

    A provider is called on first lookup and may return ``None`` to
    signal the backend cannot run on this machine — it is then skipped
    cleanly by :func:`available_backends`.  Re-registering a name
    replaces the previous entry (tests use this to inject doubles).
    """
    if not name:
        raise ValueError("backend name must be non-empty")
    if lazy:
        _PROVIDERS[name] = backend  # type: ignore[assignment]
        _RESOLVED.pop(name, None)
        _REGISTRY.pop(name, None)
    else:
        _REGISTRY[name] = backend  # type: ignore[assignment]
        _PROVIDERS.pop(name, None)
        _RESOLVED.pop(name, None)


def _resolve(name: str) -> Optional[FieldType]:
    """The backend registered under ``name``, or None if unavailable."""
    if name in _REGISTRY:
        return _REGISTRY[name]
    if name in _PROVIDERS:
        if name not in _RESOLVED:
            try:
                _RESOLVED[name] = _PROVIDERS[name]()
            except Exception:
                # A broken provider (failed compile, incompatible numba)
                # must degrade to "unavailable", never break the codec.
                _RESOLVED[name] = None
        return _RESOLVED[name]
    return None


def registered_backends() -> Tuple[str, ...]:
    """Every registered name, available on this machine or not."""
    names = list(_REGISTRY)
    names.extend(p for p in _PROVIDERS if p not in names)
    return tuple(names)


def available_backends() -> Tuple[str, ...]:
    """Names of the backends that can actually run here.

    Lazy providers are resolved (and their verdict cached), so this is
    the authoritative list CI iterates for the backend-matrix job.
    """
    return tuple(name for name in registered_backends() if _resolve(name) is not None)


def get_backend(name: str) -> FieldType:
    """Look up a backend by name.

    ``"best"`` (or ``"auto"``) resolves the fastest available backend by
    the static preference order; any other unknown or unavailable name
    raises ``KeyError`` listing what this machine offers.
    """
    if name in ("best", "auto"):
        for candidate in _BEST_ORDER:
            backend = _resolve(candidate)
            if backend is not None:
                return backend
        return GF256  # unreachable while "numpy" stays registered
    backend = _resolve(name)
    if backend is None:
        raise KeyError(
            f"unknown or unavailable GF(2^8) backend {name!r}; "
            f"available here: {', '.join(available_backends())}"
        )
    return backend


def select_backend(name: str, *, export: bool = False) -> FieldType:
    """Set the process-default backend (and return it).

    ``export=True`` also writes ``OMNC_GF_BACKEND`` so worker processes
    forked or spawned later (campaign pools) inherit the selection.
    """
    backend = get_backend(name)  # validates
    global _SELECTED
    _SELECTED = name
    if export:
        os.environ[BACKEND_ENV] = name
    return backend


def clear_selection() -> None:
    """Drop an explicit :func:`select_backend` choice (tests use this)."""
    global _SELECTED
    _SELECTED = None


def active_backend() -> FieldType:
    """The backend used when no explicit ``field=`` is passed.

    Resolution order: explicit :func:`select_backend` choice, then the
    ``OMNC_GF_BACKEND`` environment variable, then the numpy reference.
    A stale/unknown name falls back to the reference rather than failing
    deep inside a decoder.
    """
    name = _SELECTED or os.environ.get(BACKEND_ENV)
    if name:
        try:
            return get_backend(name)
        except KeyError:
            return GF256
    return GF256


def active_backend_name() -> str:
    """Registry name of :func:`active_backend` (for tagging runs).

    Resolves only the selected name — never the whole registry — so that
    observability setup cannot trigger a compile of backends nobody
    asked for.
    """
    name = _SELECTED or os.environ.get(BACKEND_ENV)
    if not name:
        return REFERENCE_BACKEND
    try:
        backend = get_backend(name)
    except KeyError:
        return REFERENCE_BACKEND
    if name in ("best", "auto"):
        for candidate in _BEST_ORDER:
            if _resolve(candidate) is backend:
                return candidate
    return name


def best_backend_name() -> str:
    """Name of the backend ``get_backend("best")`` resolves to."""
    for candidate in _BEST_ORDER:
        if _resolve(candidate) is not None:
            return candidate
    return REFERENCE_BACKEND


def resolve_field(field: Optional[FieldType]) -> FieldType:
    """The field an encoder/decoder should use: explicit wins, else the
    process-active backend."""
    return field if field is not None else active_backend()


def _native_provider() -> Optional[FieldType]:
    from repro.coding.native import load_native_backend

    return load_native_backend()


def _numba_provider() -> Optional[FieldType]:
    from repro.coding.native import load_numba_backend

    return load_numba_backend()


register_backend(REFERENCE_BACKEND, GF256)
register_backend("nibble", GF256NibbleSplit)
register_backend("native", _native_provider, lazy=True)
register_backend("numba", _numba_provider, lazy=True)


__all__ = [
    "BACKEND_ENV",
    "FieldType",
    "GF256NibbleSplit",
    "REFERENCE_BACKEND",
    "active_backend",
    "active_backend_name",
    "available_backends",
    "best_backend_name",
    "clear_selection",
    "get_backend",
    "register_backend",
    "registered_backends",
    "resolve_field",
    "select_backend",
]
