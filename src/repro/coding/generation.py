"""Generations: the unit of coding in OMNC.

The paper groups source data into *generations*; each generation is split
into ``n`` data blocks of ``m`` bytes and represented as an ``n x m``
matrix ``B`` (rows = blocks, entries = bytes).  The default experiment
parameters are n = 40 blocks of m = 1024 bytes (Sec. 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from repro.util.validation import check_positive, check_type

DEFAULT_BLOCKS_PER_GENERATION = 40
DEFAULT_BLOCK_SIZE = 1024

# Each coded packet carries one coefficient byte per block, so a
# generation over GF(2^8) can address at most 255 pivot columns before
# coefficient values and column indices stop fitting the wire header.
MAX_GENERATION_BLOCKS = 255


@dataclass(frozen=True)
class GenerationParams:
    """Coding parameters shared by every node in a session.

    Attributes:
        blocks: number of data blocks per generation (paper: 40).
        block_size: bytes per block (paper: 1 KB).
    """

    blocks: int = DEFAULT_BLOCKS_PER_GENERATION
    block_size: int = DEFAULT_BLOCK_SIZE

    def __post_init__(self) -> None:
        check_type("blocks", self.blocks, int)
        check_type("block_size", self.block_size, int)
        check_positive("blocks", self.blocks)
        check_positive("block_size", self.block_size)
        if self.blocks > MAX_GENERATION_BLOCKS:
            raise ValueError(
                f"blocks must be <= {MAX_GENERATION_BLOCKS} "
                f"(GF(2^8) coefficient-header limit), got {self.blocks}"
            )

    @property
    def generation_bytes(self) -> int:
        """Payload bytes carried by one full generation."""
        return self.blocks * self.block_size


class Generation:
    """One generation of source data: the matrix ``B`` plus its identity.

    ``generation_id`` orders generations within a session; relays use it to
    expire buffered packets when the source moves on (Sec. 4, "Packet and
    Queue Management").
    """

    def __init__(self, generation_id: int, matrix: np.ndarray) -> None:
        check_type("generation_id", generation_id, int)
        if generation_id < 0:
            raise ValueError(f"generation_id must be >= 0, got {generation_id}")
        matrix = np.asarray(matrix, dtype=np.uint8)
        if matrix.ndim != 2:
            raise ValueError("generation matrix must be 2-D (blocks x bytes)")
        if matrix.shape[0] == 0 or matrix.shape[1] == 0:
            raise ValueError(f"generation matrix must be non-empty, got {matrix.shape}")
        self._generation_id = generation_id
        self._matrix = matrix.copy()
        self._matrix.setflags(write=False)

    @property
    def generation_id(self) -> int:
        """Position of this generation in the session's stream."""
        return self._generation_id

    @property
    def matrix(self) -> np.ndarray:
        """The read-only ``n x m`` generation matrix B."""
        return self._matrix

    @property
    def params(self) -> GenerationParams:
        """The coding parameters this generation was built with."""
        return GenerationParams(
            blocks=self._matrix.shape[0], block_size=self._matrix.shape[1]
        )

    def to_bytes(self) -> bytes:
        """Serialize the generation payload (row-major block order)."""
        return self._matrix.tobytes()

    @classmethod
    def from_bytes(
        cls, generation_id: int, data: bytes, params: GenerationParams
    ) -> "Generation":
        """Build a generation from raw bytes, zero-padding the final block.

        Raises ``ValueError`` if ``data`` exceeds one generation.
        """
        capacity = params.generation_bytes
        if len(data) > capacity:
            raise ValueError(
                f"data ({len(data)} bytes) exceeds generation capacity ({capacity})"
            )
        padded = data.ljust(capacity, b"\x00")
        matrix = np.frombuffer(padded, dtype=np.uint8).reshape(
            params.blocks, params.block_size
        )
        return cls(generation_id, matrix)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Generation):
            return NotImplemented
        return self._generation_id == other._generation_id and np.array_equal(
            self._matrix, other._matrix
        )

    def __repr__(self) -> str:
        n, m = self._matrix.shape
        return f"Generation(id={self._generation_id}, blocks={n}, block_size={m})"


def split_into_generations(
    data: bytes, params: GenerationParams, *, start_id: int = 0
) -> List[Generation]:
    """Split an arbitrary byte stream into consecutive generations.

    The final generation is zero-padded; callers that need exact lengths
    should frame the stream themselves (length prefix) before splitting.
    """
    if start_id < 0:
        raise ValueError(f"start_id must be >= 0, got {start_id}")
    capacity = params.generation_bytes
    generations = []
    for offset, gen_id in zip(range(0, max(len(data), 1), capacity), _count(start_id)):
        chunk = data[offset : offset + capacity]
        generations.append(Generation.from_bytes(gen_id, chunk, params))
    return generations


def random_generation(
    generation_id: int, params: GenerationParams, rng: np.random.Generator
) -> Generation:
    """A generation filled with uniform random bytes (for experiments)."""
    matrix = rng.integers(
        0, 256, size=(params.blocks, params.block_size), dtype=np.uint8
    )
    return Generation(generation_id, matrix)


def _count(start: int) -> Iterator[int]:
    value = start
    while True:
        yield value
        value += 1
