"""Compiled GF(2^8) backends: ctypes-loaded C kernels and optional numba.

The paper's accelerated codec is an SSE2 loop that multiplies a whole
row by a scalar with shuffle-based nibble tables; :data:`_C_SOURCE`
below is that loop's modern descendant (``pshufb`` on AVX2 or SSSE3,
scalar table walk elsewhere).  The source is embedded, compiled once
with the system C compiler into a content-addressed shared object under
the user cache directory, and loaded through ``ctypes``.

Nothing here is imported eagerly: :func:`load_native_backend` and
:func:`load_numba_backend` are the lazy providers registered by
:mod:`repro.coding.backends`.  Each returns ``None`` whenever its
toolchain is missing or its self-test against the numpy reference
fails, so machines without a compiler (or without numba) skip the
backend cleanly instead of breaking the codec.

Every loaded function gets explicit ``argtypes``/``restype`` before the
first call — ctypes otherwise truncates 64-bit pointers to ``int``.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from pathlib import Path
from typing import List, Optional, Tuple

import numpy as np

from repro.coding.gf256 import (
    _INV_TABLE,
    _MUL_TABLE,
    GF256,
    eliminate_panel_reference,
    meter_bytes,
)

_C_SOURCE = r"""
#include <stdint.h>
#include <stddef.h>

static uint8_t MUL[256 * 256];
static uint8_t SHUF[256 * 32]; /* per c: 16B low-nibble, 16B high-nibble products */

void gf_init(const uint8_t *mul_table, const uint8_t *shuf_tables) {
    for (size_t i = 0; i < sizeof MUL; i++) MUL[i] = mul_table[i];
    for (size_t i = 0; i < sizeof SHUF; i++) SHUF[i] = shuf_tables[i];
}

#if defined(__AVX2__)
#include <immintrin.h>
static void addmul(uint8_t *t, const uint8_t *s, unsigned c, size_t n) {
    if (c == 0) return;
    const __m128i tl128 = _mm_loadu_si128((const __m128i *)(SHUF + c * 32));
    const __m128i th128 = _mm_loadu_si128((const __m128i *)(SHUF + c * 32 + 16));
    const __m256i tl = _mm256_broadcastsi128_si256(tl128);
    const __m256i th = _mm256_broadcastsi128_si256(th128);
    const __m256i mask = _mm256_set1_epi8(0x0f);
    size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        __m256i v = _mm256_loadu_si256((const __m256i *)(s + i));
        __m256i lo = _mm256_and_si256(v, mask);
        __m256i hi = _mm256_and_si256(_mm256_srli_epi64(v, 4), mask);
        __m256i p = _mm256_xor_si256(_mm256_shuffle_epi8(tl, lo),
                                     _mm256_shuffle_epi8(th, hi));
        __m256i o = _mm256_loadu_si256((const __m256i *)(t + i));
        _mm256_storeu_si256((__m256i *)(t + i), _mm256_xor_si256(o, p));
    }
    const uint8_t *row = MUL + (size_t)c * 256;
    for (; i < n; i++) t[i] ^= row[s[i]];
}
#elif defined(__SSSE3__)
#include <tmmintrin.h>
static void addmul(uint8_t *t, const uint8_t *s, unsigned c, size_t n) {
    if (c == 0) return;
    const __m128i tl = _mm_loadu_si128((const __m128i *)(SHUF + c * 32));
    const __m128i th = _mm_loadu_si128((const __m128i *)(SHUF + c * 32 + 16));
    const __m128i mask = _mm_set1_epi8(0x0f);
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        __m128i v = _mm_loadu_si128((const __m128i *)(s + i));
        __m128i lo = _mm_and_si128(v, mask);
        __m128i hi = _mm_and_si128(_mm_srli_epi64(v, 4), mask);
        __m128i p = _mm_xor_si128(_mm_shuffle_epi8(tl, lo),
                                  _mm_shuffle_epi8(th, hi));
        __m128i o = _mm_loadu_si128((const __m128i *)(t + i));
        _mm_storeu_si128((__m128i *)(t + i), _mm_xor_si128(o, p));
    }
    const uint8_t *row = MUL + (size_t)c * 256;
    for (; i < n; i++) t[i] ^= row[s[i]];
}
#else
static void addmul(uint8_t *t, const uint8_t *s, unsigned c, size_t n) {
    if (c == 0) return;
    const uint8_t *row = MUL + (size_t)c * 256;
    for (size_t i = 0; i < n; i++) t[i] ^= row[s[i]];
}
#endif

void gf_addmul_row(uint8_t *t, const uint8_t *s, unsigned c, size_t n) {
    addmul(t, s, c, n);
}

void gf_addmul_rows(uint8_t *tgts, ptrdiff_t stride, const uint8_t *src,
                    const uint8_t *coefs, size_t rows, size_t width) {
    for (size_t r = 0; r < rows; r++)
        addmul(tgts + (ptrdiff_t)r * stride, src, coefs[r], width);
}

void gf_matmul(uint8_t *out, const uint8_t *a, const uint8_t *b,
               size_t n, size_t k, size_t m) {
    for (size_t i = 0; i < n; i++) {
        uint8_t *dst = out + i * m;
        const uint8_t *arow = a + i * k;
        for (size_t j = 0; j < k; j++)
            addmul(dst, b + j * m, arow[j], m);
    }
}

ptrdiff_t gf_eliminate(uint8_t *work, size_t rows, size_t width, size_t panel,
                       size_t limit, const uint8_t *inv_table,
                       ptrdiff_t *out_rows, ptrdiff_t *out_cols) {
    ptrdiff_t found = 0;
    for (size_t i = 0; i < rows && (size_t)found < limit; i++) {
        uint8_t *row = work + i * width;
        size_t col = panel;
        for (size_t c = 0; c < panel; c++) {
            if (row[c]) { col = c; break; }
        }
        if (col == panel) continue;
        unsigned pv = row[col];
        if (pv != 1) {
            const uint8_t *mrow = MUL + (size_t)inv_table[pv] * 256;
            for (size_t c2 = col; c2 < width; c2++) row[c2] = mrow[row[c2]];
        }
        for (size_t r = 0; r < rows; r++) {
            if (r == i) continue;
            uint8_t *other = work + r * width;
            unsigned c2 = other[col];
            if (c2) addmul(other + col, row + col, c2, width - col);
        }
        out_rows[found] = (ptrdiff_t)i;
        out_cols[found] = (ptrdiff_t)col;
        found++;
    }
    return found;
}
"""


def _cpu_flags() -> frozenset[str]:
    """The CPU feature flags from /proc/cpuinfo (empty off-Linux)."""
    try:
        text = Path("/proc/cpuinfo").read_text()
    except OSError:
        return frozenset()
    for line in text.splitlines():
        if line.startswith(("flags", "Features")):
            return frozenset(line.split(":", 1)[1].split())
    return frozenset()


def _simd_cflags() -> List[str]:
    """Compiler flags matching what this CPU can actually run.

    The kernel picks its SIMD path with ``#if`` at compile time, so the
    flag must never promise an ISA the host lacks; with neither flag the
    scalar table walk compiles everywhere.
    """
    flags = _cpu_flags()
    if "avx2" in flags:
        return ["-mavx2"]
    if "ssse3" in flags:
        return ["-mssse3"]
    return []


def _cache_dir() -> Path:
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return Path(base) / "repro-omnc"


def _build_library() -> Optional[Path]:
    """Compile the kernel into a content-addressed cached .so.

    Returns the library path, or ``None`` when no working C compiler is
    available.  The cache key hashes source + flags, so a source edit or
    different SIMD selection rebuilds instead of loading stale kernels.
    """
    cc = os.environ.get("CC") or "cc"
    simd = _simd_cflags()
    digest = hashlib.sha256(
        ("\x00".join([_C_SOURCE, cc, *simd])).encode()
    ).hexdigest()[:16]
    cache = _cache_dir()
    so_path = cache / f"gf_native_{digest}.so"
    if so_path.exists():
        return so_path
    try:
        cache.mkdir(parents=True, exist_ok=True)
        with tempfile.TemporaryDirectory(dir=cache) as workdir:
            c_path = Path(workdir) / "gf_native.c"
            c_path.write_text(_C_SOURCE)
            tmp_so = Path(workdir) / "gf_native.so"
            command = [cc, "-O3", "-shared", "-fPIC", *simd, str(c_path), "-o", str(tmp_so)]
            result = subprocess.run(command, capture_output=True, timeout=120)
            if result.returncode != 0:
                return None
            # Atomic publish: concurrent builders race benignly to the
            # same content-addressed name.
            os.replace(tmp_so, so_path)
        return so_path
    except (OSError, subprocess.SubprocessError):
        return None


def _build_shuffle_tables() -> np.ndarray:
    """Per-coefficient pshufb tables: ``[c*0..c*15, c*0x00..c*0xF0]``."""
    nibbles = np.arange(16, dtype=np.intp)
    shuf = np.zeros((256, 32), dtype=np.uint8)
    shuf[:, :16] = _MUL_TABLE[:, nibbles]
    shuf[:, 16:] = _MUL_TABLE[:, nibbles << 4]
    return np.ascontiguousarray(shuf)


def _load_library(so_path: Path) -> Optional[ctypes.CDLL]:
    """dlopen the kernel and declare every signature before any call."""
    try:
        lib = ctypes.CDLL(str(so_path))
    except OSError:
        return None
    ptr = ctypes.c_void_p
    size = ctypes.c_size_t
    ssize = ctypes.c_ssize_t
    lib.gf_init.argtypes = [ptr, ptr]
    lib.gf_init.restype = None
    lib.gf_addmul_row.argtypes = [ptr, ptr, ctypes.c_uint, size]
    lib.gf_addmul_row.restype = None
    lib.gf_addmul_rows.argtypes = [ptr, ssize, ptr, ptr, size, size]
    lib.gf_addmul_rows.restype = None
    lib.gf_matmul.argtypes = [ptr, ptr, ptr, size, size, size]
    lib.gf_matmul.restype = None
    lib.gf_eliminate.argtypes = [ptr, size, size, size, size, ptr, ptr, ptr]
    lib.gf_eliminate.restype = ssize
    mul = np.ascontiguousarray(_MUL_TABLE)
    shuf = _build_shuffle_tables()
    lib.gf_init(mul.ctypes.data, shuf.ctypes.data)
    return lib


_LIB: Optional[ctypes.CDLL] = None


def _lib() -> ctypes.CDLL:
    assert _LIB is not None, "native backend used before load_native_backend()"
    return _LIB


class GF256Native(GF256):
    """GF(2^8) arithmetic on the compiled ``pshufb`` kernels.

    Row kernels and panel elimination run in C; rarely-hot operations
    (``scale_row``/``scale_rows``, elementwise multiply) inherit the
    numpy reference.  Inputs that violate the C layout contract
    (non-contiguous rows) fall back to the reference kernels, so the
    class is a strict drop-in.
    """

    name = "native"

    @staticmethod
    def addmul_row(target: np.ndarray, source: np.ndarray, coefficient: int) -> None:
        if coefficient == 0:
            return
        if not (
            target.dtype == np.uint8
            and target.flags.c_contiguous
            and target.flags.writeable
            and source.dtype == np.uint8
            and source.flags.c_contiguous
            and target.shape == source.shape
        ):
            GF256.addmul_row(target, source, coefficient)
            return
        _lib().gf_addmul_row(
            target.ctypes.data, source.ctypes.data, coefficient, target.size
        )
        meter_bytes(target.size)

    @staticmethod
    def addmul_rows(
        targets: np.ndarray, source: np.ndarray, coefficients: np.ndarray
    ) -> None:
        coefficients = np.ascontiguousarray(coefficients, dtype=np.uint8)
        if not (
            targets.ndim == 2
            and targets.dtype == np.uint8
            and targets.strides[1] == 1
            and targets.flags.writeable
            and source.dtype == np.uint8
            and source.ndim == 1
            and source.flags.c_contiguous
            and targets.shape == (coefficients.shape[0], source.shape[0])
        ):
            GF256.addmul_rows(targets, source, coefficients)
            return
        _lib().gf_addmul_rows(
            targets.ctypes.data,
            targets.strides[0],
            source.ctypes.data,
            coefficients.ctypes.data,
            targets.shape[0],
            source.shape[0],
        )
        meter_bytes(int(np.count_nonzero(coefficients)) * source.shape[0])

    @staticmethod
    def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.ascontiguousarray(a, dtype=np.uint8)
        b = np.ascontiguousarray(b, dtype=np.uint8)
        if a.ndim != 2 or b.ndim != 2:
            raise ValueError("matmul requires 2-D operands")
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"shape mismatch: {a.shape} x {b.shape}")
        n, k = a.shape
        m = b.shape[1]
        out = np.zeros((n, m), dtype=np.uint8)
        if k and n and m:
            _lib().gf_matmul(out.ctypes.data, a.ctypes.data, b.ctypes.data, n, k, m)
        meter_bytes(int(np.count_nonzero(a.any(axis=1))) * m)
        return out

    @classmethod
    def eliminate_panel(
        cls, work: np.ndarray, panel: int, limit: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        if work.ndim != 2:
            raise ValueError(f"expected a 2-D work matrix, got ndim={work.ndim}")
        if not 0 <= panel <= work.shape[1]:
            raise ValueError(f"panel {panel} outside width {work.shape[1]}")
        if not (
            work.dtype == np.uint8
            and work.flags.c_contiguous
            and work.flags.writeable
        ):
            return eliminate_panel_reference(cls, work, panel, limit)
        rows = work.shape[0]
        pivot_rows = np.zeros(rows, dtype=np.intp)
        pivot_cols = np.zeros(rows, dtype=np.intp)
        found = 0
        if rows and work.shape[1]:
            inv = np.ascontiguousarray(_INV_TABLE)
            found = int(
                _lib().gf_eliminate(
                    work.ctypes.data,
                    rows,
                    work.shape[1],
                    panel,
                    max(limit, 0),
                    inv.ctypes.data,
                    pivot_rows.ctypes.data,
                    pivot_cols.ctypes.data,
                )
            )
        # Upper-bound byte meter: each pivot eliminates against up to
        # rows-1 rows full-width (the reference meters only the nonzero
        # subset; exact parity would need per-pivot counts out of C).
        meter_bytes(found * max(rows - 1, 0) * work.shape[1])
        return pivot_rows[:found].copy(), pivot_cols[:found].copy()


def _self_test(backend: "type[GF256]") -> bool:
    """Deterministic bit-for-bit check of a candidate against GF256.

    Patterns are arange-derived (no RNG) so the check is reproducible
    and lint-clean; shapes cover the SIMD main loops and scalar tails.
    """
    for n, k, m in ((1, 1, 1), (3, 5, 7), (8, 8, 64), (5, 4, 33)):
        a = (np.arange(n * k, dtype=np.int64) * 37 % 256).astype(np.uint8).reshape(n, k)
        b = (np.arange(k * m, dtype=np.int64) * 101 % 256).astype(np.uint8).reshape(k, m)
        if not np.array_equal(backend.matmul(a, b), GF256.matmul(a, b)):
            return False
    for rows, width in ((4, 16), (6, 67)):
        targets = (
            (np.arange(rows * width, dtype=np.int64) * 13 % 256)
            .astype(np.uint8)
            .reshape(rows, width)
        )
        source = (np.arange(width, dtype=np.int64) * 7 % 256).astype(np.uint8)
        coefficients = (np.arange(rows, dtype=np.int64) * 29 % 256).astype(np.uint8)
        expected = targets.copy()
        GF256.addmul_rows(expected, source, coefficients)
        got = targets.copy()
        backend.addmul_rows(got, source, coefficients)
        if not np.array_equal(got, expected):
            return False
    work = (np.arange(6 * 20, dtype=np.int64) * 151 % 256).astype(np.uint8).reshape(6, 20)
    expected_work = work.copy()
    exp_rows, exp_cols = GF256.eliminate_panel(expected_work, 6, 6)
    got_work = work.copy()
    got_rows, got_cols = backend.eliminate_panel(got_work, 6, 6)
    return (
        np.array_equal(got_work, expected_work)
        and np.array_equal(got_rows, exp_rows)
        and np.array_equal(got_cols, exp_cols)
    )


def load_native_backend() -> Optional["type[GF256]"]:
    """Provider for the ``native`` backend.

    Compiles (or reuses) the shared object, loads it, and only returns
    the class after it passes the reference self-test.  Any failure —
    no compiler, dlopen error, divergence — yields ``None``.
    """
    global _LIB
    if _LIB is None:
        so_path = _build_library()
        if so_path is None:
            return None
        _LIB = _load_library(so_path)
        if _LIB is None:
            return None
    if not _self_test(GF256Native):
        return None
    return GF256Native


def load_numba_backend() -> Optional["type[GF256]"]:
    """Provider for the ``numba`` backend (None when numba is absent).

    Kernels close over the module tables and are jitted on first call;
    like the native backend, the class only registers after passing the
    reference self-test, so a numba/numpy version skew can never ship
    silently-wrong arithmetic.
    """
    try:
        import numba  # type: ignore[import-not-found]
    except ImportError:
        return None

    mul_table = np.ascontiguousarray(_MUL_TABLE)

    @numba.njit(cache=False)  # type: ignore[misc]
    def _nb_addmul_rows(
        targets: np.ndarray, source: np.ndarray, coefficients: np.ndarray
    ) -> None:
        for r in range(targets.shape[0]):
            c = coefficients[r]
            if c:
                row = mul_table[c]
                for i in range(source.shape[0]):
                    targets[r, i] ^= row[source[i]]

    @numba.njit(cache=False)  # type: ignore[misc]
    def _nb_matmul(a: np.ndarray, b: np.ndarray, out: np.ndarray) -> None:
        for i in range(a.shape[0]):
            for j in range(a.shape[1]):
                c = a[i, j]
                if c:
                    row = mul_table[c]
                    for col in range(b.shape[1]):
                        out[i, col] ^= row[b[j, col]]

    class GF256Numba(GF256):
        """GF(2^8) arithmetic through numba-jitted table loops."""

        name = "numba"

        @staticmethod
        def addmul_rows(
            targets: np.ndarray, source: np.ndarray, coefficients: np.ndarray
        ) -> None:
            coefficients = np.ascontiguousarray(coefficients, dtype=np.uint8)
            source = np.ascontiguousarray(source, dtype=np.uint8)
            _nb_addmul_rows(targets, source, coefficients)
            meter_bytes(int(np.count_nonzero(coefficients)) * source.shape[0])

        @staticmethod
        def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
            a = np.ascontiguousarray(a, dtype=np.uint8)
            b = np.ascontiguousarray(b, dtype=np.uint8)
            if a.ndim != 2 or b.ndim != 2:
                raise ValueError("matmul requires 2-D operands")
            if a.shape[1] != b.shape[0]:
                raise ValueError(f"shape mismatch: {a.shape} x {b.shape}")
            out = np.zeros((a.shape[0], b.shape[1]), dtype=np.uint8)
            _nb_matmul(a, b, out)
            meter_bytes(int(np.count_nonzero(a.any(axis=1))) * b.shape[1])
            return out

    try:
        if not _self_test(GF256Numba):
            return None
    except Exception:
        return None
    return GF256Numba


__all__ = ["GF256Native", "load_native_backend", "load_numba_backend"]
