"""Random linear network coding over GF(2^8).

This package is the coding substrate of the OMNC reproduction:

* :mod:`repro.coding.gf256` — accelerated (numpy-vectorized) field engine.
* :mod:`repro.coding.gf256_baseline` — pure-Python lookup-table baseline.
* :mod:`repro.coding.matrix` — dense GF matrix algebra (RREF, rank, solve).
* :mod:`repro.coding.generation` — generations of data blocks.
* :mod:`repro.coding.packet` — coded packet format and wire serialization.
* :mod:`repro.coding.encoder` — source encoder and relay re-encoder.
* :mod:`repro.coding.decoder` — progressive Gauss-Jordan decoder (paper
  Sec. 4) and the decode-at-the-end baseline.
"""

from repro.coding.decoder import BlockDecoder, ProgressiveDecoder
from repro.coding.encoder import RelayReEncoder, SourceEncoder
from repro.coding.generation import (
    DEFAULT_BLOCK_SIZE,
    DEFAULT_BLOCKS_PER_GENERATION,
    Generation,
    GenerationParams,
    random_generation,
    split_into_generations,
)
from repro.coding.gf256 import GF256
from repro.coding.gf256_baseline import GF256Baseline
from repro.coding.packet import CodedPacket

__all__ = [
    "BlockDecoder",
    "CodedPacket",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_BLOCKS_PER_GENERATION",
    "GF256",
    "GF256Baseline",
    "Generation",
    "GenerationParams",
    "ProgressiveDecoder",
    "RelayReEncoder",
    "SourceEncoder",
    "random_generation",
    "split_into_generations",
]
