"""Project-wide symbol table and call graph for ``repro check``.

Built on the :class:`~repro.analysis.modgraph.ProjectGraph` module set,
this layer answers the questions the RPR1xx rules ask about *names*:

* what does ``np.random.Generator`` mean inside this module?  (alias
  resolution through the module's import statements);
* which classes does this class's field annotations reference, and are
  they project classes?  (payload-closure traversal for RPR103/RPR104);
* which module-level names are mutable containers, and which functions
  mutate them?  (shared-state hazards for RPR102);
* who calls whom?  (a best-effort static call graph: calls resolve
  through the alias table to project functions where possible).

Everything here is deliberately *syntactic* — no imports are executed,
so analysis of a module can never be perturbed by the side effects the
rules exist to catch.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.modgraph import ModuleInfo, ProjectGraph

__all__ = [
    "ClassInfo",
    "FieldInfo",
    "FunctionInfo",
    "ModuleSymbols",
    "SymbolTable",
    "dotted_name",
]

#: Container constructors whose result is mutable shared state when
#: bound at module level (RPR102).
_MUTABLE_CALLS = frozenset(
    {
        "list", "dict", "set", "bytearray", "defaultdict", "Counter",
        "OrderedDict", "deque",
    }
)

#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "setdefault",
        "pop", "popitem", "remove", "discard", "clear", "appendleft",
        "extendleft",
    }
)


def dotted_name(node: ast.expr) -> Optional[str]:
    """Render an ``a.b.c`` attribute chain, or ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@dataclass(frozen=True)
class FieldInfo:
    """One declared field of a class (body ``AnnAssign`` or dataclass)."""

    name: str
    annotation: Optional[ast.expr]
    default: Optional[ast.expr]
    lineno: int
    col: int


@dataclass
class FunctionInfo:
    """One function or method: its AST plus derived facts."""

    name: str
    qualname: str
    module: str
    lineno: int
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: Dotted call targets with their line numbers, unresolved.
    calls: List[Tuple[str, int]] = field(default_factory=list)
    #: Module-level names this function mutates, with the mutation line.
    global_mutations: List[Tuple[str, int]] = field(default_factory=list)
    #: Cross-module mutations: (module alias path, attr, line).
    attribute_mutations: List[Tuple[str, str, int]] = field(default_factory=list)


@dataclass
class ClassInfo:
    """One class definition: fields, self-assignments, methods."""

    name: str
    qualname: str
    module: str
    lineno: int
    col: int
    nested: bool
    bases: List[str] = field(default_factory=list)
    fields: List[FieldInfo] = field(default_factory=list)
    #: ``self.attr = value`` sites: (attr, value node, method, line, col).
    self_assigns: List[Tuple[str, ast.expr, str, int, int]] = field(
        default_factory=list
    )
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class ModuleSymbols:
    """Top-level symbols of one module."""

    name: str
    info: ModuleInfo
    #: local name -> fully-qualified dotted name (import resolution).
    aliases: Dict[str, str] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: module-level names bound to mutable containers -> binding line/col.
    mutable_globals: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    def resolve(self, dotted: str) -> str:
        """Fully-qualified form of ``dotted`` in this module's namespace."""
        head, _, rest = dotted.partition(".")
        alias = self.aliases.get(head)
        if alias is not None:
            return f"{alias}.{rest}" if rest else alias
        if (
            head in self.classes
            or head in self.functions
            or head in self.mutable_globals
        ):
            return f"{self.name}.{dotted}"
        return dotted


class _ModuleScanner(ast.NodeVisitor):
    """Single pass building one module's :class:`ModuleSymbols`."""

    def __init__(self, symbols: ModuleSymbols) -> None:
        self._symbols = symbols
        self._class_stack: List[ClassInfo] = []
        self._function_stack: List[FunctionInfo] = []

    # -- imports -----------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".", maxsplit=1)[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self._symbols.aliases[local] = target

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = node.module or ""
        if node.level:
            anchor = self._symbols.name.split(".")
            if not self._symbols.info.is_package:
                anchor = anchor[:-1]
            drop = node.level - 1
            if drop <= len(anchor):
                anchor = anchor[: len(anchor) - drop] if drop else anchor
                base = ".".join([*anchor, *filter(None, base.split("."))])
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self._symbols.aliases[local] = (
                f"{base}.{alias.name}" if base else alias.name
            )

    # -- classes -----------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        parent = self._class_stack[-1].qualname if self._class_stack else None
        scope = parent or self._symbols.name
        info = ClassInfo(
            name=node.name,
            qualname=f"{scope}.{node.name}",
            module=self._symbols.name,
            lineno=node.lineno,
            col=node.col_offset,
            nested=bool(self._function_stack),
            bases=[d for d in map(dotted_name, node.bases) if d is not None],
        )
        if not self._function_stack and not self._class_stack:
            self._symbols.classes[node.name] = info
        elif self._class_stack:
            # Nested classes keep a qualname entry for closure lookups.
            self._symbols.classes.setdefault(node.name, info)
        for statement in node.body:
            if isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                info.fields.append(
                    FieldInfo(
                        name=statement.target.id,
                        annotation=statement.annotation,
                        default=statement.value,
                        lineno=statement.lineno,
                        col=statement.col_offset,
                    )
                )
        self._class_stack.append(info)
        self.generic_visit(node)
        self._class_stack.pop()

    # -- functions ---------------------------------------------------------

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        if self._class_stack:
            owner = self._class_stack[-1]
            qualname = f"{owner.qualname}.{node.name}"
        else:
            owner = None
            qualname = f"{self._symbols.name}.{node.name}"
        info = FunctionInfo(
            name=node.name,
            qualname=qualname,
            module=self._symbols.name,
            lineno=node.lineno,
            node=node,
        )
        if owner is not None and not self._function_stack:
            owner.methods[node.name] = info
        elif owner is None and not self._function_stack:
            self._symbols.functions[node.name] = info
        self._scan_body(info, node, owner)
        self._function_stack.append(info)
        self.generic_visit(node)
        self._function_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _scan_body(
        self,
        info: FunctionInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        owner: Optional[ClassInfo],
    ) -> None:
        declared_global: set[str] = set()
        local_names: set[str] = {
            arg.arg
            for arg in (
                *node.args.posonlyargs,
                *node.args.args,
                *node.args.kwonlyargs,
                *((node.args.vararg,) if node.args.vararg else ()),
                *((node.args.kwarg,) if node.args.kwarg else ()),
            )
        }
        for statement in ast.walk(node):
            if isinstance(statement, ast.Global):
                declared_global.update(statement.names)
            elif isinstance(statement, ast.Assign):
                for target in statement.targets:
                    if isinstance(target, ast.Name):
                        if target.id in declared_global:
                            info.global_mutations.append(
                                (target.id, statement.lineno)
                            )
                        else:
                            local_names.add(target.id)
                    elif isinstance(target, ast.Subscript):
                        self._record_subscript_mutation(
                            info, target, local_names, declared_global
                        )
                if owner is not None:
                    for target in statement.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            owner.self_assigns.append(
                                (
                                    target.attr,
                                    statement.value,
                                    node.name,
                                    statement.lineno,
                                    statement.col_offset,
                                )
                            )
            elif isinstance(statement, ast.AnnAssign):
                target = statement.target
                if isinstance(target, ast.Name):
                    local_names.add(target.id)
                elif (
                    owner is not None
                    and isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and statement.value is not None
                ):
                    owner.self_assigns.append(
                        (
                            target.attr,
                            statement.value,
                            node.name,
                            statement.lineno,
                            statement.col_offset,
                        )
                    )
                    if node.name == "__init__":
                        owner.fields.append(
                            FieldInfo(
                                name=target.attr,
                                annotation=statement.annotation,
                                default=None,
                                lineno=statement.lineno,
                                col=statement.col_offset,
                            )
                        )
            elif isinstance(statement, ast.AugAssign):
                if isinstance(statement.target, ast.Subscript):
                    self._record_subscript_mutation(
                        info, statement.target, local_names, declared_global
                    )
            elif isinstance(statement, ast.Call):
                self._record_call(info, statement, local_names)
        # Second pass for mutator-method calls: local bindings are now
        # fully known, so ``x = []; x.append(...)`` inside the function
        # does not masquerade as a module-global mutation.
        for statement in ast.walk(node):
            if isinstance(statement, ast.Call):
                self._record_mutator(info, statement, local_names, declared_global)

    def _record_subscript_mutation(
        self,
        info: FunctionInfo,
        target: ast.Subscript,
        local_names: set[str],
        declared_global: set[str],
    ) -> None:
        base = target.value
        if isinstance(base, ast.Name):
            if base.id in local_names and base.id not in declared_global:
                return
            info.global_mutations.append((base.id, target.lineno))
        else:
            dotted = dotted_name(base)
            if dotted and "." in dotted:
                prefix, _, attr = dotted.rpartition(".")
                info.attribute_mutations.append((prefix, attr, target.lineno))

    def _record_call(
        self, info: FunctionInfo, call: ast.Call, local_names: set[str]
    ) -> None:
        dotted = dotted_name(call.func)
        if dotted is not None:
            info.calls.append((dotted, call.lineno))

    def _record_mutator(
        self,
        info: FunctionInfo,
        call: ast.Call,
        local_names: set[str],
        declared_global: set[str],
    ) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute) or func.attr not in _MUTATOR_METHODS:
            return
        receiver = func.value
        if isinstance(receiver, ast.Name):
            if receiver.id in local_names and receiver.id not in declared_global:
                return
            info.global_mutations.append((receiver.id, call.lineno))
        else:
            dotted = dotted_name(receiver)
            if dotted and "." in dotted:
                prefix, _, attr = dotted.rpartition(".")
                info.attribute_mutations.append((prefix, attr, call.lineno))

    # -- module-level assignments ------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        if not self._class_stack and not self._function_stack:
            for target in node.targets:
                if isinstance(target, ast.Name) and self._is_mutable(node.value):
                    self._symbols.mutable_globals[target.id] = (
                        node.lineno,
                        node.col_offset,
                    )
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if (
            not self._class_stack
            and not self._function_stack
            and isinstance(node.target, ast.Name)
            and node.value is not None
            and self._is_mutable(node.value)
        ):
            self._symbols.mutable_globals[node.target.id] = (
                node.lineno,
                node.col_offset,
            )
        self.generic_visit(node)

    @staticmethod
    def _is_mutable(value: ast.expr) -> bool:
        if isinstance(
            value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
        ):
            return True
        if isinstance(value, ast.Call):
            dotted = dotted_name(value.func)
            if dotted is not None:
                return dotted.rsplit(".", maxsplit=1)[-1] in _MUTABLE_CALLS
        return False


class SymbolTable:
    """Symbols of every module in a project, with cross-module lookups."""

    def __init__(self, project: ProjectGraph) -> None:
        self.project = project
        self.modules: Dict[str, ModuleSymbols] = {}
        for name, info in project.modules.items():
            symbols = ModuleSymbols(name=name, info=info)
            _ModuleScanner(symbols).visit(info.tree)
            self.modules[name] = symbols

    def find_class(self, qualified: str) -> Optional[ClassInfo]:
        """Class by fully-qualified name, following package re-exports.

        ``repro.protocols.base.CodedBroadcastPlan`` resolves through the
        shim module's alias table to the defining class in
        ``repro.emulator.plan`` — one hop of re-export following, which
        covers the ``from x import y`` republication idiom.
        """
        module_name, _, class_name = qualified.rpartition(".")
        module = self.modules.get(module_name)
        if module is None:
            return None
        found = module.classes.get(class_name)
        if found is not None:
            return found
        alias = module.aliases.get(class_name)
        if alias is not None and alias != qualified:
            return self.find_class(alias)
        return None

    def functions(self) -> Iterator[FunctionInfo]:
        """Every top-level function and method in the project."""
        for module in self.modules.values():
            yield from module.functions.values()
            for class_info in module.classes.values():
                yield from class_info.methods.values()

    def call_graph(self) -> Dict[str, List[str]]:
        """Best-effort static call graph over project functions.

        Keys are function qualnames; values are the resolved qualnames
        of project functions they call.  Method calls through ``self``
        resolve within the defining class; calls through imported names
        resolve through the alias table.  Unresolvable targets (builtins,
        third-party calls, dynamic dispatch) are omitted — the graph is
        sound for "definitely calls", not complete.
        """
        known: Dict[str, FunctionInfo] = {
            function.qualname: function for function in self.functions()
        }
        graph: Dict[str, List[str]] = {}
        for function in self.functions():
            module = self.modules[function.module]
            callees: set[str] = set()
            for dotted, _lineno in function.calls:
                resolved = self._resolve_call(module, function, dotted)
                if resolved is not None and resolved in known:
                    callees.add(resolved)
            graph[function.qualname] = sorted(callees)
        return graph

    def _resolve_call(
        self, module: ModuleSymbols, function: FunctionInfo, dotted: str
    ) -> Optional[str]:
        if dotted.startswith("self."):
            owner = function.qualname.rpartition(".")[0]
            return f"{owner}.{dotted[len('self.'):]}"
        resolved = module.resolve(dotted)
        # ``pkg.mod.fn`` needs no further mapping; ``ClassName.method``
        # in-module resolves through the class table.
        head = dotted.partition(".")[0]
        if head in module.classes and "." in dotted:
            return f"{module.name}.{dotted}"
        return resolved

    def reachable_functions(self, roots: Iterator[str]) -> set[str]:
        """Transitive closure of the call graph from ``roots``."""
        graph = self.call_graph()
        seen: set[str] = set()
        frontier = [root for root in roots if root in graph]
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(graph.get(node, ()))
        return seen
