"""The RPR1xx whole-program rule family for ``repro check``.

Where the RPR0xx rules (:mod:`repro.analysis.rules`) judge one module at
a time, these rules need the *project*: the module graph, the symbol
table, and the call graph.  They guard the properties that keep the
cross-process digests honest:

* **RPR101 layering-contract** — the package DAG declared in
  ``pyproject.toml`` (``util < coding/obs < topology < routing <
  optimization < emulator < protocols < scenario < exec < experiments <
  cli``) must hold: no unit may import a unit in a higher band, and the
  module graph must be acyclic under runtime imports.  ``TYPE_CHECKING``
  imports are exempt (they never execute); function-scoped imports are
  *not* (they execute on first call — a deferred cycle is still a
  cycle).  Explicit waivers live next to the contract, each with its
  rationale.
* **RPR102 worker-shared-state** — mutable module-level state in any
  module a :class:`ShardWorker`/:class:`WorkerPool` process imports is a
  cross-process hazard: the parent mutates its copy, the worker forks or
  re-imports its own, and the two silently diverge.  Flagged when a
  module-level container is mutated from function scope.
* **RPR103 payload-picklability** — types shipped across a ``Pipe``
  (``ShardInit``, ``JobSpec`` and every project class reachable through
  their field annotations) must be statically picklable: no lambda
  defaults, no generator/iterator or open-handle fields, no
  process/thread primitives, no function-local classes, no
  ``np.random.Generator`` fields, and no lambda/genexp arguments at
  construction or ``.send(...)`` sites.
* **RPR104 rng-escape** — a live ``Generator`` minted through
  :mod:`repro.util.rng` must not be stored on, or passed into, a
  payload-boundary type: ship the seed or the ``RngFactory`` and derive
  streams on the far side (that is what makes RNG consumption
  partition-independent).

All four report through the shared :class:`~repro.analysis.findings.Finding`
model, so baselines, pragmas (``# repro: ignore[RPR10x]``) and output
formats behave exactly like ``repro lint``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding
from repro.analysis.modgraph import ImportEdge, ProjectGraph
from repro.analysis.rules import _suppressions
from repro.analysis.symbols import (
    ClassInfo,
    FieldInfo,
    FunctionInfo,
    ModuleSymbols,
    SymbolTable,
    dotted_name,
)

__all__ = ["CheckConfig", "run_project_rules"]

#: Fully-qualified annotation targets that make a payload field
#: statically unpicklable (or semantically unshippable), by hazard.
_FIELD_HAZARDS: Dict[str, str] = {
    "numpy.random.Generator": "a live RNG stream (ship a seed or RngFactory)",
    "numpy.random.RandomState": "a live RNG stream (ship a seed or RngFactory)",
    "numpy.random.BitGenerator": "a live RNG stream (ship a seed or RngFactory)",
    "typing.Generator": "a generator object (generators cannot pickle)",
    "typing.Iterator": "an iterator object (iterators cannot pickle)",
    "typing.AsyncGenerator": "a generator object (generators cannot pickle)",
    "collections.abc.Generator": "a generator object (generators cannot pickle)",
    "collections.abc.Iterator": "an iterator object (iterators cannot pickle)",
    "typing.IO": "an open file handle",
    "typing.TextIO": "an open file handle",
    "typing.BinaryIO": "an open file handle",
    "io.IOBase": "an open file handle",
    "io.TextIOWrapper": "an open file handle",
    "io.BufferedReader": "an open file handle",
    "io.BufferedWriter": "an open file handle",
    "io.FileIO": "an open file handle",
    "socket.socket": "a live socket",
    "threading.Lock": "a thread primitive",
    "threading.RLock": "a thread primitive",
    "threading.Condition": "a thread primitive",
    "threading.Event": "a thread primitive",
    "threading.Semaphore": "a thread primitive",
    "multiprocessing.Queue": "a process primitive",
    "multiprocessing.Pipe": "a process primitive",
    "multiprocessing.connection.Connection": "a process primitive",
}

#: RNG fields are an RPR104 concern too, but the picklability rule owns
#: the field-annotation check; RPR104 owns the dataflow.
_RNG_PRODUCER_TAILS = ("as_rng", "fallback_rng", "default_rng")


@dataclass(frozen=True)
class CheckConfig:
    """The ``[tool.repro.check]`` contract (see ``pyproject.toml``).

    Attributes:
        package: import package the project lives under.
        layers: ordered bands, lowest first; units in one band may
            import each other and anything in a lower band.
        layer_waivers: ``"importer -> imported"`` unit pairs exempted
            from the layering check (rationale lives as comments next to
            the contract entries).
        payload_types: qualified names of classes shipped across process
            boundaries; RPR103/RPR104 analyze them and every project
            class reachable through their field annotations.
        worker_roots: modules whose import closure runs inside worker
            processes (RPR102's blast radius).
        rng_modules: modules whose functions mint generators (RPR104
            producers), on top of ``numpy.random.default_rng``.
    """

    package: str = "repro"
    layers: Tuple[Tuple[str, ...], ...] = ()
    layer_waivers: Tuple[str, ...] = ()
    payload_types: Tuple[str, ...] = ()
    worker_roots: Tuple[str, ...] = ()
    rng_modules: Tuple[str, ...] = ("repro.util.rng",)

    def waived_pairs(self) -> frozenset[Tuple[str, str]]:
        pairs = []
        for waiver in self.layer_waivers:
            importer, _, target = waiver.partition("->")
            pairs.append((importer.strip(), target.strip()))
        return frozenset(pairs)

    def band_of(self) -> Dict[str, int]:
        return {
            unit: rank
            for rank, band in enumerate(self.layers)
            for unit in band
        }


class _Reporter:
    """Emit findings with per-line pragma suppression and snippets."""

    def __init__(self, project: ProjectGraph) -> None:
        self._project = project
        self._suppressed: Dict[str, Dict[int, frozenset[str]]] = {}
        self._lines: Dict[str, List[str]] = {}
        self.findings: List[Finding] = []

    def _tables(self, module: str) -> Tuple[Dict[int, frozenset[str]], List[str]]:
        info = self._project.modules[module]
        if module not in self._suppressed:
            self._suppressed[module] = _suppressions(info.source)
            self._lines[module] = info.source.splitlines()
        return self._suppressed[module], self._lines[module]

    def report(
        self, rule: str, module: str, lineno: int, col: int, message: str
    ) -> None:
        suppressed, lines = self._tables(module)
        if rule in suppressed.get(lineno, frozenset()):
            return
        snippet = lines[lineno - 1].strip() if 1 <= lineno <= len(lines) else ""
        self.findings.append(
            Finding(
                rule=rule,
                path=self._project.modules[module].path,
                line=lineno,
                column=col + 1,
                message=message,
                snippet=snippet,
            )
        )

    def report_config(self, rule: str, message: str) -> None:
        """A finding against the contract itself (no source anchor)."""
        self.findings.append(
            Finding(
                rule=rule,
                path="pyproject.toml",
                line=1,
                column=1,
                message=message,
                snippet="[tool.repro.check]",
            )
        )


# -- RPR101: layering + cycles ---------------------------------------------


def _check_layering(
    project: ProjectGraph, config: CheckConfig, reporter: _Reporter
) -> None:
    bands = config.band_of()
    waived = config.waived_pairs()
    flagged_units: set[str] = set()
    for (importer_unit, target_unit), edges in sorted(
        project.unit_edges().items()
    ):
        if (importer_unit, target_unit) in waived:
            continue
        importer_band = bands.get(importer_unit)
        target_band = bands.get(target_unit)
        anchor = edges[0]
        for unit, band in ((importer_unit, importer_band), (target_unit, target_band)):
            if band is None and unit not in flagged_units:
                flagged_units.add(unit)
                reporter.report(
                    "RPR101",
                    anchor.importer,
                    anchor.lineno,
                    anchor.col,
                    f"package '{unit}' is not covered by the layering "
                    "contract in [tool.repro.check] — add it to a band "
                    "or waive the edge",
                )
        if importer_band is None or target_band is None:
            continue
        if importer_band < target_band:
            for edge in edges:
                reporter.report(
                    "RPR101",
                    edge.importer,
                    edge.lineno,
                    edge.col,
                    f"layering violation: '{importer_unit}' (band "
                    f"{importer_band}) imports '{target_unit}' (band "
                    f"{target_band}); invert the dependency, use a "
                    "TYPE_CHECKING import, or waive the edge with its "
                    "rationale in [tool.repro.check]",
                )


def _check_cycles(project: ProjectGraph, reporter: _Reporter) -> None:
    for cycle in project.import_cycles():
        members = set(cycle)
        anchor: Optional[ImportEdge] = None
        for edge in project.runtime_edges():
            if edge.importer == cycle[0] and edge.target in members:
                anchor = edge
                break
        pretty = " -> ".join(cycle) + f" -> {cycle[0]}"
        if anchor is None:  # pragma: no cover - cycle implies an edge
            reporter.report_config("RPR101", f"import cycle: {pretty}")
            continue
        reporter.report(
            "RPR101",
            anchor.importer,
            anchor.lineno,
            anchor.col,
            f"import cycle: {pretty} (TYPE_CHECKING imports are exempt; "
            "function-scoped imports are not — a deferred cycle is "
            "still a runtime cycle)",
        )


# -- RPR102: worker-reachable mutable module state -------------------------


def _check_worker_state(
    project: ProjectGraph,
    table: SymbolTable,
    config: CheckConfig,
    reporter: _Reporter,
) -> None:
    if not config.worker_roots:
        return
    reachable = project.reachable_from(config.worker_roots)
    # (module, global name) -> mutating function qualnames
    mutations: Dict[Tuple[str, str], List[str]] = {}
    for function in table.functions():
        module = table.modules[function.module]
        for name, _lineno in function.global_mutations:
            if name in module.mutable_globals:
                mutations.setdefault((function.module, name), []).append(
                    function.qualname
                )
        for prefix, attr, _lineno in function.attribute_mutations:
            resolved = module.resolve(prefix)
            target = table.modules.get(resolved)
            if target is not None and attr in target.mutable_globals:
                mutations.setdefault((resolved, attr), []).append(
                    function.qualname
                )
    for (module_name, name), mutators in sorted(mutations.items()):
        if module_name not in reachable:
            continue
        lineno, col = table.modules[module_name].mutable_globals[name]
        who = ", ".join(sorted(set(mutators))[:3])
        reporter.report(
            "RPR102",
            module_name,
            lineno,
            col,
            f"mutable module-level state '{name}' is mutated at runtime "
            f"(by {who}) and this module is imported by worker processes "
            "(reachable from "
            f"{'/'.join(config.worker_roots)}); parent and worker copies "
            "will diverge — pass state explicitly or pragma a "
            "deliberately process-local registry",
        )


# -- RPR103 / RPR104 helpers -----------------------------------------------


@dataclass
class _PayloadClosure:
    """Payload classes plus every project class their fields reference."""

    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: constructor names (bare and qualified) for call-site checks.
    constructors: set[str] = field(default_factory=set)


def _annotation_names(
    module: ModuleSymbols, annotation: ast.expr
) -> List[str]:
    """Resolved dotted names mentioned anywhere in an annotation."""
    names: List[str] = []
    nodes: List[ast.expr] = [annotation]
    while nodes:
        node = nodes.pop()
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                nodes.append(ast.parse(node.value, mode="eval").body)
            except SyntaxError:
                continue
            continue
        if isinstance(node, (ast.Name, ast.Attribute)):
            dotted = dotted_name(node)
            if dotted is not None:
                names.append(module.resolve(dotted))
            continue
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                nodes.append(child)
    return names


def _payload_closure(
    table: SymbolTable, config: CheckConfig, reporter: _Reporter
) -> _PayloadClosure:
    closure = _PayloadClosure()
    queue: List[str] = []
    for qualified in config.payload_types:
        info = table.find_class(qualified)
        if info is None:
            reporter.report_config(
                "RPR103",
                f"configured payload type '{qualified}' was not found in "
                "the project — update [tool.repro.check] payload-types",
            )
            continue
        queue.append(info.qualname)
    while queue:
        qualname = queue.pop()
        if qualname in closure.classes:
            continue
        info = table.find_class(qualname)
        if info is None:
            continue
        closure.classes[qualname] = info
        closure.constructors.add(info.name)
        closure.constructors.add(info.qualname)
        module = table.modules[info.module]
        referenced: List[str] = []
        for field_info in info.fields:
            if field_info.annotation is not None:
                referenced.extend(
                    _annotation_names(module, field_info.annotation)
                )
            if field_info.default is not None:
                referenced.extend(_default_factory_names(module, field_info))
        for name in referenced:
            if table.find_class(name) is not None:
                queue.append(name)
    return closure


def _default_factory_names(
    module: ModuleSymbols, field_info: FieldInfo
) -> List[str]:
    """Class names referenced by a ``field(default_factory=X)`` default."""
    default = field_info.default
    if not isinstance(default, ast.Call):
        return []
    names: List[str] = []
    for keyword in default.keywords:
        if keyword.arg == "default_factory":
            dotted = dotted_name(keyword.value)
            if dotted is not None:
                names.append(module.resolve(dotted))
    return names


def _check_picklability(
    table: SymbolTable,
    closure: _PayloadClosure,
    reporter: _Reporter,
) -> None:
    for qualname in sorted(closure.classes):
        info = closure.classes[qualname]
        module = table.modules[info.module]
        if info.nested:
            reporter.report(
                "RPR103",
                info.module,
                info.lineno,
                info.col,
                f"payload type '{info.name}' is defined inside a function; "
                "pickle resolves classes by module attribute, so a local "
                "class cannot cross a Pipe — move it to module level",
            )
        for field_info in info.fields:
            if field_info.annotation is not None:
                for resolved in _annotation_names(module, field_info.annotation):
                    hazard = _FIELD_HAZARDS.get(resolved)
                    if hazard is not None:
                        reporter.report(
                            "RPR103",
                            info.module,
                            field_info.lineno,
                            field_info.col,
                            f"payload field '{info.name}.{field_info.name}' "
                            f"holds {hazard}; it crosses a process "
                            "boundary inside "
                            f"{_payload_origin(closure, qualname)}",
                        )
            if isinstance(field_info.default, ast.Lambda):
                reporter.report(
                    "RPR103",
                    info.module,
                    field_info.lineno,
                    field_info.col,
                    f"payload field '{info.name}.{field_info.name}' defaults "
                    "to a lambda, which cannot pickle — use a module-level "
                    "function",
                )
            if isinstance(field_info.default, ast.Call):
                for keyword in field_info.default.keywords:
                    if keyword.arg == "default_factory" and isinstance(
                        keyword.value, ast.Lambda
                    ):
                        reporter.report(
                            "RPR103",
                            info.module,
                            field_info.lineno,
                            field_info.col,
                            f"payload field '{info.name}.{field_info.name}' "
                            "uses a lambda default_factory, which cannot "
                            "pickle — use a module-level function",
                        )


def _payload_origin(closure: _PayloadClosure, qualname: str) -> str:
    return (
        "a configured payload type"
        if qualname in closure.classes
        else qualname
    )


def _check_payload_callsites(
    table: SymbolTable,
    closure: _PayloadClosure,
    config: CheckConfig,
    reporter: _Reporter,
) -> None:
    """Lambdas/genexps handed to payload constructors or ``.send(...)``."""
    payload_quals = set(closure.classes)
    for module in table.modules.values():
        for node in ast.walk(module.info.tree):
            if not isinstance(node, ast.Call):
                continue
            target = dotted_name(node.func)
            if target is None:
                continue
            is_send = target.endswith(".send")
            is_ctor = (
                not is_send and module.resolve(target) in payload_quals
            )
            if not (is_send or is_ctor):
                continue
            what = (
                "a Pipe send" if is_send else f"the {target.split('.')[-1]} payload"
            )
            for argument in [*node.args, *(kw.value for kw in node.keywords)]:
                if isinstance(argument, ast.Lambda):
                    reporter.report(
                        "RPR103",
                        module.name,
                        argument.lineno,
                        argument.col_offset,
                        f"lambda passed into {what}; lambdas cannot pickle "
                        "across a process boundary",
                    )
                elif isinstance(argument, ast.GeneratorExp):
                    reporter.report(
                        "RPR103",
                        module.name,
                        argument.lineno,
                        argument.col_offset,
                        f"generator expression passed into {what}; "
                        "generators cannot pickle — materialize a list",
                    )


# -- RPR104: RNG escape ----------------------------------------------------


def _is_rng_producer(
    module: ModuleSymbols, call: ast.Call, config: CheckConfig
) -> bool:
    dotted = dotted_name(call.func)
    if dotted is None:
        return False
    if dotted.endswith(".derive"):
        return True
    resolved = module.resolve(dotted)
    tail = resolved.rsplit(".", maxsplit=1)[-1]
    if tail not in _RNG_PRODUCER_TAILS:
        return False
    if resolved == "numpy.random.default_rng" or tail == "default_rng":
        return True
    return any(
        resolved == f"{rng_module}.{tail}" for rng_module in config.rng_modules
    )


def _tainted_names(
    module: ModuleSymbols,
    body: Sequence[ast.stmt],
    config: CheckConfig,
) -> set[str]:
    """Names bound (anywhere in ``body``) to a freshly-minted generator."""
    tainted: set[str] = set()
    for statement in body:
        for node in ast.walk(statement):
            if isinstance(node, ast.Assign):
                value = node.value
                is_producer = isinstance(value, ast.Call) and _is_rng_producer(
                    module, value, config
                )
                propagates = (
                    isinstance(value, ast.Name) and value.id in tainted
                )
                if is_producer or propagates:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            tainted.add(target.id)
    return tainted


def _check_rng_escape(
    table: SymbolTable,
    closure: _PayloadClosure,
    config: CheckConfig,
    reporter: _Reporter,
) -> None:
    payload_quals = set(closure.classes)

    def offending(
        module: ModuleSymbols, argument: ast.expr, tainted: set[str]
    ) -> bool:
        if isinstance(argument, ast.Call) and _is_rng_producer(
            module, argument, config
        ):
            return True
        return isinstance(argument, ast.Name) and argument.id in tainted

    for module in table.modules.values():
        for function in _all_functions(module):
            tainted = _tainted_names(module, function.node.body, config)
            for node in ast.walk(function.node):
                if not isinstance(node, ast.Call):
                    continue
                target = dotted_name(node.func)
                if target is None:
                    continue
                is_send = target.endswith(".send")
                is_ctor = not is_send and module.resolve(target) in payload_quals
                if not (is_send or is_ctor):
                    continue
                for argument in [
                    *node.args,
                    *(kw.value for kw in node.keywords),
                ]:
                    if offending(module, argument, tainted):
                        where = (
                            "a Pipe send"
                            if is_send
                            else f"the {target.split('.')[-1]} payload"
                        )
                        reporter.report(
                            "RPR104",
                            module.name,
                            argument.lineno,
                            argument.col_offset,
                            f"live RNG stream escapes into {where}; "
                            "generators must not cross a process/digest "
                            "boundary — ship the seed or the RngFactory "
                            "and derive the stream on the far side",
                        )
        # self.<attr> = <generator> inside payload-boundary classes.
        for class_info in module.classes.values():
            if class_info.qualname not in payload_quals:
                continue
            method_taint: Dict[str, set[str]] = {}
            for method_name, method in class_info.methods.items():
                method_taint[method_name] = _tainted_names(
                    module, method.node.body, config
                )
            for attr, value, method_name, lineno, col in class_info.self_assigns:
                tainted = method_taint.get(method_name, set())
                hit = (
                    isinstance(value, ast.Call)
                    and _is_rng_producer(module, value, config)
                ) or (isinstance(value, ast.Name) and value.id in tainted)
                if hit:
                    reporter.report(
                        "RPR104",
                        module.name,
                        lineno,
                        col,
                        f"payload type '{class_info.name}' stores a live RNG "
                        f"stream on self.{attr}; store the seed (or an "
                        "RngFactory) instead and derive streams after the "
                        "boundary",
                    )


def _all_functions(module: ModuleSymbols) -> List[FunctionInfo]:
    out = list(module.functions.values())
    for class_info in module.classes.values():
        out.extend(class_info.methods.values())
    return out


# -- entry point -----------------------------------------------------------


def run_project_rules(
    project: ProjectGraph,
    config: CheckConfig,
    select: Sequence[str],
) -> List[Finding]:
    """Run the selected RPR1xx rules over a parsed project."""
    selected = frozenset(select)
    reporter = _Reporter(project)
    table: Optional[SymbolTable] = None
    if selected & {"RPR102", "RPR103", "RPR104"}:
        table = SymbolTable(project)
    if "RPR101" in selected:
        _check_layering(project, config, reporter)
        _check_cycles(project, reporter)
    if table is not None and "RPR102" in selected:
        _check_worker_state(project, table, config, reporter)
    closure: Optional[_PayloadClosure] = None
    if table is not None and selected & {"RPR103", "RPR104"}:
        closure = _payload_closure(table, config, reporter)
    if table is not None and closure is not None and "RPR103" in selected:
        _check_picklability(table, closure, reporter)
        _check_payload_callsites(table, closure, config, reporter)
    if table is not None and closure is not None and "RPR104" in selected:
        _check_rng_escape(table, closure, config, reporter)
    kept = [f for f in reporter.findings if f.rule in selected]
    return sorted(kept, key=Finding.sort_key)
