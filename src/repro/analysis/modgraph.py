"""Whole-program module graph for ``repro check``.

Parses every module of a project package (stdlib ``ast`` only) and
builds the import graph the RPR1xx rule family reasons over.  Each
import statement becomes one :class:`ImportEdge` classified by *when*
it executes:

* ``toplevel`` — module scope; runs at import time, the strongest
  coupling (and the only kind that can deadlock a circular import);
* ``lazy`` — inside a function body; deferred, but still a *runtime*
  dependency: the import executes on the first call, so it still forms
  a genuine cycle for layering purposes;
* ``typing`` — inside an ``if TYPE_CHECKING:`` block; never executes at
  runtime, so it is exempt from both cycle detection and layering
  (this is exactly the sanctioned escape hatch for annotation-only
  references to a higher layer).

Modules aggregate into *units* — the first dotted component under the
package (``repro.emulator.shard`` → ``emulator``) — which is the level
the layering contract in ``pyproject.toml`` speaks about.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

__all__ = [
    "ImportEdge",
    "ModuleInfo",
    "ProjectGraph",
    "build_project",
    "module_name_for",
]

#: Edge classification; see the module docstring.
RUNTIME_KINDS: Tuple[str, ...] = ("toplevel", "lazy")


@dataclass(frozen=True)
class ImportEdge:
    """One import statement, resolved to a project module when possible.

    Attributes:
        importer: module containing the statement.
        target: the project module imported (resolution picks the
            deepest project module that is a prefix of the imported
            name, so ``from repro.coding import gf256`` targets
            ``repro.coding.gf256`` while ``from repro.coding import
            FieldType`` targets ``repro.coding``).
        kind: ``"toplevel"`` | ``"lazy"`` | ``"typing"``.
        lineno: 1-based line of the statement (pragma anchor).
        col: 0-based column of the statement.
    """

    importer: str
    target: str
    kind: str
    lineno: int
    col: int


@dataclass
class ModuleInfo:
    """One parsed project module."""

    name: str
    path: str
    source: str
    tree: ast.Module
    is_package: bool

    @property
    def unit(self) -> str:
        """First dotted component below the package root, or ``""``.

        ``repro.emulator.shard`` → ``emulator``; top-level modules like
        ``repro.cli`` map to themselves (``cli``); the package root
        ``repro`` has no unit.
        """
        parts = self.name.split(".")
        return parts[1] if len(parts) > 1 else ""


def module_name_for(path: Path, search_root: Path) -> str:
    """Dotted module name of ``path`` relative to ``search_root``."""
    relative = path.resolve().relative_to(search_root.resolve())
    parts = list(relative.parts)
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1][: -len(".py")]
    return ".".join(parts)


class _ImportCollector(ast.NodeVisitor):
    """Collect every import with its execution classification."""

    def __init__(self, module: ModuleInfo) -> None:
        self._module = module
        self._function_depth = 0
        self._typing_depth = 0
        #: (imported dotted name, from-aliases, kind, lineno, col)
        self.raw: List[Tuple[str, Tuple[str, ...], str, int, int]] = []

    def _kind(self) -> str:
        if self._typing_depth > 0:
            return "typing"
        if self._function_depth > 0:
            return "lazy"
        return "toplevel"

    @staticmethod
    def _is_type_checking(test: ast.expr) -> bool:
        if isinstance(test, ast.Name):
            return test.id == "TYPE_CHECKING"
        if isinstance(test, ast.Attribute):
            return test.attr == "TYPE_CHECKING"
        return False

    def visit_If(self, node: ast.If) -> None:
        if self._is_type_checking(node.test):
            self._typing_depth += 1
            for statement in node.body:
                self.visit(statement)
            self._typing_depth -= 1
            for statement in node.orelse:
                self.visit(statement)
            return
        self.generic_visit(node)

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        self._function_depth += 1
        self.generic_visit(node)
        self._function_depth -= 1

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.raw.append(
                (alias.name, (), self._kind(), node.lineno, node.col_offset)
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = self._resolve_relative(node)
        if base is None:
            return
        names = tuple(alias.name for alias in node.names)
        self.raw.append((base, names, self._kind(), node.lineno, node.col_offset))

    def _resolve_relative(self, node: ast.ImportFrom) -> str | None:
        if node.level == 0:
            return node.module
        parts = self._module.name.split(".")
        if not self._module.is_package:
            parts = parts[:-1]
        drop = node.level - 1
        if drop > len(parts):
            return None
        anchor = parts[: len(parts) - drop] if drop else parts
        if node.module:
            anchor = [*anchor, *node.module.split(".")]
        return ".".join(anchor) if anchor else None


@dataclass
class ProjectGraph:
    """The parsed project: modules plus the classified import graph."""

    package: str
    modules: Dict[str, ModuleInfo]
    edges: List[ImportEdge] = field(default_factory=list)

    # -- construction ------------------------------------------------------

    def _resolve_target(self, dotted: str) -> str | None:
        """Deepest project module whose name prefixes ``dotted``."""
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            candidate = ".".join(parts[:cut])
            if candidate in self.modules:
                return candidate
        return None

    def collect_edges(self) -> None:
        """(Re)build :attr:`edges` from the module ASTs."""
        self.edges = []
        for module in self.modules.values():
            collector = _ImportCollector(module)
            collector.visit(module.tree)
            for dotted, names, kind, lineno, col in collector.raw:
                if names:
                    resolved_any = False
                    for name in names:
                        target = self._resolve_target(f"{dotted}.{name}")
                        if target is not None:
                            resolved_any = True
                            self._add_edge(module, target, kind, lineno, col)
                    if not resolved_any:
                        target = self._resolve_target(dotted)
                        if target is not None:
                            self._add_edge(module, target, kind, lineno, col)
                else:
                    target = self._resolve_target(dotted)
                    if target is not None:
                        self._add_edge(module, target, kind, lineno, col)

    def _add_edge(
        self, module: ModuleInfo, target: str, kind: str, lineno: int, col: int
    ) -> None:
        if target == module.name:
            return
        edge = ImportEdge(
            importer=module.name,
            target=target,
            kind=kind,
            lineno=lineno,
            col=col,
        )
        # One `from x import a, b` can resolve several names to the same
        # module; keep one edge per statement/target so rules report once.
        if self.edges and self.edges[-1] == edge:
            return
        self.edges.append(edge)

    # -- queries -----------------------------------------------------------

    def runtime_edges(self) -> Iterator[ImportEdge]:
        """Edges that execute at runtime (toplevel + lazy)."""
        return (e for e in self.edges if e.kind in RUNTIME_KINDS)

    def adjacency(
        self, kinds: Sequence[str] = RUNTIME_KINDS
    ) -> Dict[str, List[str]]:
        """Module adjacency restricted to ``kinds`` (sorted, deduped)."""
        table: Dict[str, List[str]] = {name: [] for name in self.modules}
        seen: set[Tuple[str, str]] = set()
        for edge in self.edges:
            if edge.kind not in kinds:
                continue
            key = (edge.importer, edge.target)
            if key not in seen:
                seen.add(key)
                table[edge.importer].append(edge.target)
        for targets in table.values():
            targets.sort()
        return table

    def import_cycles(
        self, kinds: Sequence[str] = RUNTIME_KINDS
    ) -> List[Tuple[str, ...]]:
        """Module-level cycles: every SCC with more than one member.

        Tarjan's algorithm, iterative (the emulator package alone is
        deep enough to make recursion depth a real concern), restricted
        to the given edge kinds.  Each cycle is returned as the sorted
        tuple of its member modules; cycles are sorted for stable
        output.
        """
        adjacency = self.adjacency(kinds)
        index: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: set[str] = set()
        stack: List[str] = []
        counter = 0
        cycles: List[Tuple[str, ...]] = []

        for root in sorted(adjacency):
            if root in index:
                continue
            work: List[Tuple[str, int]] = [(root, 0)]
            while work:
                node, child_index = work.pop()
                if child_index == 0:
                    index[node] = lowlink[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack.add(node)
                children = adjacency[node]
                advanced = False
                while child_index < len(children):
                    child = children[child_index]
                    child_index += 1
                    if child not in index:
                        work.append((node, child_index))
                        work.append((child, 0))
                        advanced = True
                        break
                    if child in on_stack:
                        lowlink[node] = min(lowlink[node], index[child])
                if advanced:
                    continue
                if lowlink[node] == index[node]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        cycles.append(tuple(sorted(component)))
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
        return sorted(cycles)

    def unit_edges(
        self, kinds: Sequence[str] = RUNTIME_KINDS
    ) -> Dict[Tuple[str, str], List[ImportEdge]]:
        """Cross-unit edges grouped by (importer unit, target unit)."""
        table: Dict[Tuple[str, str], List[ImportEdge]] = {}
        for edge in self.edges:
            if edge.kind not in kinds:
                continue
            importer = self.modules[edge.importer].unit
            target = self.modules[edge.target].unit
            if not importer or not target or importer == target:
                continue
            table.setdefault((importer, target), []).append(edge)
        for group in table.values():
            group.sort(key=lambda e: (e.importer, e.lineno))
        return table

    def reachable_from(
        self, roots: Iterable[str], kinds: Sequence[str] = RUNTIME_KINDS
    ) -> set[str]:
        """Modules transitively imported from ``roots`` (roots included)."""
        adjacency = self.adjacency(kinds)
        seen: set[str] = set()
        frontier = [root for root in roots if root in adjacency]
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(adjacency.get(node, ()))
        return seen


def build_project(
    search_root: Path, package: str, *, rel_root: Path | None = None
) -> ProjectGraph:
    """Parse ``<search_root>/<package>`` into a :class:`ProjectGraph`.

    ``rel_root`` anchors the repo-relative paths used in findings
    (default: the search root's parent, so ``src/repro/...`` paths come
    out when scanning ``src``).

    Raises ``SyntaxError`` annotated with the offending file if any
    module fails to parse — an unparseable tree cannot be analyzed and
    must fail the run loudly rather than silently skipping the file.
    """
    package_dir = search_root / package
    if not package_dir.is_dir():
        raise FileNotFoundError(f"package directory not found: {package_dir}")
    anchor = rel_root if rel_root is not None else search_root.parent
    modules: Dict[str, ModuleInfo] = {}
    for file_path in sorted(package_dir.rglob("*.py")):
        if "__pycache__" in file_path.parts:
            continue
        name = module_name_for(file_path, search_root)
        source = file_path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(file_path))
        try:
            rel = file_path.resolve().relative_to(anchor.resolve()).as_posix()
        except ValueError:
            rel = file_path.as_posix()
        modules[name] = ModuleInfo(
            name=name,
            path=rel,
            source=source,
            tree=tree,
            is_package=file_path.name == "__init__.py",
        )
    graph = ProjectGraph(package=package, modules=modules)
    graph.collect_edges()
    return graph
