"""``repro.analysis`` — static analysis for the repro tree.

Two commands share one findings/baseline/pragma stack:

``repro lint`` — a per-file AST linter enforcing the reproducibility
discipline at rest, before code runs:

========  ==============================================================
RPR001    no-unseeded-rng — generators must flow through util/rng
RPR002    no-wallclock — host-clock reads banned outside obs//benchmarks/
RPR003    no-set-iteration — set order is hash-randomized across runs
RPR004    no-float-equality — exact ==/!= on float literals
RPR005    public-api-annotations — exported functions fully annotated
========  ==============================================================

``repro check`` — a whole-program analyzer that parses the package into
a module graph + symbol table (:mod:`repro.analysis.modgraph`,
:mod:`repro.analysis.symbols`) and enforces the architecture contract
declared in ``[tool.repro.check]``:

========  ==============================================================
RPR101    layering-contract — layer bands respected, import graph acyclic
RPR102    worker-shared-state — no mutated module globals in worker closures
RPR103    payload-picklability — Pipe payload types statically picklable
RPR104    rng-escape — live Generator streams never cross process/digest
          boundaries (ship seeds or an RngFactory)
========  ==============================================================

See :mod:`repro.analysis.rules` / :mod:`repro.analysis.project_rules`
for per-rule rationale, and DESIGN.md §10/§15 for the catalogs.
Suppress per line with ``# repro: ignore[RPRxxx]`` (or ``# repro:
rng-root`` for RPR001); grandfathered findings live in
``repro-lint-baseline.json`` / ``repro-check-baseline.json``, which
only ever shrink.
"""

from repro.analysis.baseline import load_baseline, partition, save_baseline
from repro.analysis.checker import load_check_config
from repro.analysis.checker import main as check_main
from repro.analysis.findings import (
    CHECK_RULE_CODES,
    CHECK_RULE_SUMMARIES,
    RULE_CODES,
    RULE_SUMMARIES,
    Finding,
)
from repro.analysis.modgraph import ProjectGraph, build_project
from repro.analysis.project_rules import CheckConfig, run_project_rules
from repro.analysis.rules import LintConfig, lint_source
from repro.analysis.runner import lint_paths, main
from repro.analysis.symbols import SymbolTable

__all__ = [
    "CHECK_RULE_CODES",
    "CHECK_RULE_SUMMARIES",
    "CheckConfig",
    "Finding",
    "LintConfig",
    "ProjectGraph",
    "RULE_CODES",
    "RULE_SUMMARIES",
    "SymbolTable",
    "build_project",
    "check_main",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "load_check_config",
    "main",
    "partition",
    "run_project_rules",
    "save_baseline",
]
