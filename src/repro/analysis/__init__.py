"""``repro.analysis`` — the determinism & invariant static-analysis pass.

A custom AST linter (``repro lint``) enforcing the repo's reproducibility
discipline at rest, before code runs:

========  ==============================================================
RPR001    no-unseeded-rng — generators must flow through util/rng
RPR002    no-wallclock — host-clock reads banned outside obs//benchmarks/
RPR003    no-set-iteration — set order is hash-randomized across runs
RPR004    no-float-equality — exact ==/!= on float literals
RPR005    public-api-annotations — exported functions fully annotated
========  ==============================================================

See :mod:`repro.analysis.rules` for the rationale tied to each rule and
DESIGN.md §10 for the catalog.  Suppress per line with
``# repro: ignore[RPR00x]`` (or ``# repro: rng-root`` for RPR001);
grandfathered findings live in ``repro-lint-baseline.json``, which only
ever shrinks.
"""

from repro.analysis.baseline import load_baseline, partition, save_baseline
from repro.analysis.findings import RULE_CODES, RULE_SUMMARIES, Finding
from repro.analysis.rules import LintConfig, lint_source
from repro.analysis.runner import lint_paths, main

__all__ = [
    "Finding",
    "LintConfig",
    "RULE_CODES",
    "RULE_SUMMARIES",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "main",
    "partition",
    "save_baseline",
]
