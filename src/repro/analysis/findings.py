"""Finding model for the ``repro lint`` static-analysis pass.

A :class:`Finding` is one rule violation at one source location.  Its
*fingerprint* deliberately excludes the line number: baselines must
survive unrelated edits above a grandfathered finding, so identity is
``(rule, path, stripped source line)``.  Two identical lines violating
the same rule in one file produce equal fingerprints; the baseline
therefore matches findings as a multiset, not a set.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Ranked rule catalog; the runner reports rules in this order.
RULE_CODES: tuple[str, ...] = ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005")

RULE_SUMMARIES: dict[str, str] = {
    "RPR001": "no-unseeded-rng: random generators must come from util/rng streams",
    "RPR002": "no-wallclock: wall-clock reads are banned outside obs/ and benchmarks/",
    "RPR003": "no-set-iteration: iterating a set is nondeterministic across processes",
    "RPR004": "no-float-equality: exact ==/!= on float literals hides tolerance bugs",
    "RPR005": "public-api-annotations: exported functions must be fully annotated",
}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location."""

    rule: str
    path: str
    line: int
    column: int
    message: str
    snippet: str

    def fingerprint(self) -> tuple[str, str, str]:
        """Line-number-independent identity used for baseline matching."""
        return (self.rule, self.path, self.snippet)

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.column, self.rule)

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "snippet": self.snippet,
        }
