"""Finding model for the ``repro lint`` static-analysis pass.

A :class:`Finding` is one rule violation at one source location.  Its
*fingerprint* deliberately excludes the line number: baselines must
survive unrelated edits above a grandfathered finding, so identity is
``(rule, path, stripped source line)``.  Two identical lines violating
the same rule in one file produce equal fingerprints; the baseline
therefore matches findings as a multiset, not a set.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Ranked rule catalog; the runner reports rules in this order.
RULE_CODES: tuple[str, ...] = ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005")

RULE_SUMMARIES: dict[str, str] = {
    "RPR001": "no-unseeded-rng: random generators must come from util/rng streams",
    "RPR002": "no-wallclock: wall-clock reads are banned outside obs/ and benchmarks/",
    "RPR003": "no-set-iteration: iterating a set is nondeterministic across processes",
    "RPR004": "no-float-equality: exact ==/!= on float literals hides tolerance bugs",
    "RPR005": "public-api-annotations: exported functions must be fully annotated",
}

#: Whole-program rule family run by ``repro check`` (needs the project
#: module graph + symbol table, not just one file at a time).
CHECK_RULE_CODES: tuple[str, ...] = ("RPR101", "RPR102", "RPR103", "RPR104")

CHECK_RULE_SUMMARIES: dict[str, str] = {
    "RPR101": "layering-contract: package imports must respect the declared "
    "layer bands and stay acyclic (TYPE_CHECKING imports exempt)",
    "RPR102": "worker-shared-state: mutable module-level state reachable from "
    "worker processes diverges between parent and worker",
    "RPR103": "payload-picklability: types shipped over a Pipe must be "
    "statically picklable (no lambdas, generators, handles, RNG fields)",
    "RPR104": "rng-escape: live Generator streams must not cross process or "
    "digest boundaries — ship seeds or an RngFactory instead",
}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location."""

    rule: str
    path: str
    line: int
    column: int
    message: str
    snippet: str

    def fingerprint(self) -> tuple[str, str, str]:
        """Line-number-independent identity used for baseline matching."""
        return (self.rule, self.path, self.snippet)

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.column, self.rule)

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "snippet": self.snippet,
        }
