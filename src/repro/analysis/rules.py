"""AST rules for the ``repro lint`` determinism & invariant pass.

The repo's headline guarantees — bit-identical traces under a fixed
seed, RNG-stream-exact batched kernels, conservation/MAC invariants —
are runtime properties; these rules reject, *statically*, the code
patterns that most often break them:

* **RPR001 no-unseeded-rng** — every random generator must flow through
  the named streams of :mod:`repro.util.rng`.  A stray
  ``np.random.default_rng()`` (or legacy ``np.random.*`` / stdlib
  ``random.*`` call) creates a stream outside the experiment seed's
  control and silently forks the trace.
* **RPR002 no-wallclock** — ``time.time`` / ``perf_counter`` /
  ``datetime.now`` read the host clock; emulated time must come from
  the slot counter.  Allowed only under ``obs/`` and ``benchmarks/``,
  where wall time is the *measurement*.
* **RPR003 no-set-iteration** — iterating a ``set`` yields a
  hash-randomized order across processes; any per-element RNG draw or
  accumulation in that order diverges run-to-run.  Iterate a sorted
  view instead.
* **RPR004 no-float-equality** — ``==`` / ``!=`` against float literals
  in convergence/allocation checks is a latent tolerance bug; use an
  explicit tolerance (or pragma the exact-sentinel compares).
* **RPR005 public-api-annotations** — exported functions must be fully
  annotated so the mypy strict gate actually covers the public surface.

Suppressions: a trailing ``# repro: ignore[RPR001,...]`` silences the
listed rules on that line; ``# repro: rng-root`` marks a line as an
intentional generator root (silences RPR001 only).  The
:mod:`repro.util.rng` module itself is the designated rng root and is
exempt from RPR001 wholesale.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import PurePosixPath

from repro.analysis.findings import RULE_CODES, Finding

_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*(?:(?P<root>rng-root)|ignore\[(?P<rules>[A-Z0-9,\s]+)\])"
)

#: Call targets that mint or reseed a random stream (RPR001).
_RNG_SUFFIXES = ("random.default_rng", "random.Generator", "random.RandomState")
_RNG_BARE = frozenset({"default_rng", "RandomState"})
_NUMPY_LEGACY = frozenset(
    {
        "seed", "rand", "randn", "randint", "random", "random_sample",
        "choice", "shuffle", "permutation", "standard_normal", "uniform",
        "normal", "exponential", "poisson", "binomial",
    }
)
_STDLIB_RANDOM = frozenset(
    {
        "random", "seed", "randint", "randrange", "choice", "choices",
        "shuffle", "sample", "uniform", "gauss", "betavariate", "Random",
    }
)

#: Wall-clock call targets (RPR002).
_WALLCLOCK_DOTTED = frozenset(
    {
        "time.time", "time.time_ns", "time.perf_counter",
        "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
        "time.process_time", "time.process_time_ns",
    }
)
_WALLCLOCK_SUFFIXES = (
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
)
_WALLCLOCK_BARE = frozenset(
    {
        "time", "time_ns", "perf_counter", "perf_counter_ns",
        "monotonic", "monotonic_ns", "process_time", "process_time_ns",
    }
)

#: Names that denote set types in annotations (RPR003).
_SET_TYPE_NAMES = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}
)
#: Methods whose result is a set when called on one (RPR003).
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)


@dataclass(frozen=True)
class LintConfig:
    """Per-run rule configuration."""

    #: Rules to run (subset of :data:`RULE_CODES`).
    select: tuple[str, ...] = RULE_CODES
    #: Path suffixes of modules allowed to mint generators (RPR001).
    rng_root_modules: tuple[str, ...] = ("util/rng.py",)
    #: Path components under which wall-clock reads are allowed (RPR002).
    #: ``exec`` schedules real processes (timeouts, retry clocks), so its
    #: wall-clock use is legitimate — emulated time never flows through it.
    wallclock_allowed: tuple[str, ...] = ("obs", "benchmarks", "exec")


def _suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map line number -> rule codes suppressed on that line."""
    table: dict[int, frozenset[str]] = {}
    for number, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(line)
        if match is None:
            continue
        if match.group("root"):
            table[number] = frozenset({"RPR001"})
        else:
            codes = [code.strip() for code in match.group("rules").split(",")]
            table[number] = frozenset(code for code in codes if code)
    return table


def _dotted(node: ast.expr) -> str | None:
    """Render an ``a.b.c`` attribute chain, or ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def _annotation_is_set(node: ast.expr | None) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Subscript):
        node = node.value
    name = _dotted(node)
    if name is None:
        return False
    return name.rsplit(".", maxsplit=1)[-1] in _SET_TYPE_NAMES


@dataclass
class _Scope:
    """One function (or module) scope's set-typed name bindings."""

    set_names: set[str] = field(default_factory=set)


class _RuleVisitor(ast.NodeVisitor):
    """Single-pass visitor evaluating every selected rule."""

    def __init__(
        self,
        path: str,
        source: str,
        config: LintConfig,
    ) -> None:
        self._path = path
        self._lines = source.splitlines()
        self._suppressed = _suppressions(source)
        self._config = config
        self._select = frozenset(config.select)
        parts = PurePosixPath(path).parts
        self._is_rng_root = any(
            path.endswith(suffix) for suffix in config.rng_root_modules
        )
        self._wallclock_ok = any(
            component in parts for component in config.wallclock_allowed
        )
        #: module scope at the bottom; one scope per enclosing function
        self._scopes: list[_Scope] = [_Scope()]
        #: (class-nesting-depth, function-nesting-depth) for RPR005
        self._class_depth = 0
        self._func_depth = 0
        self.findings: list[Finding] = []

    # -- reporting ---------------------------------------------------------

    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        if rule not in self._select:
            return
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0)
        # A statement that wraps across lines honors a pragma on any of
        # its physical lines — black-style formatting regularly pushes
        # the offending expression (and the trailing comment) past the
        # anchor line.
        end = getattr(node, "end_lineno", None) or line
        if any(
            rule in self._suppressed.get(at, frozenset())
            for at in range(line, end + 1)
        ):
            return
        snippet = ""
        if 1 <= line <= len(self._lines):
            snippet = self._lines[line - 1].strip()
        self.findings.append(
            Finding(
                rule=rule,
                path=self._path,
                line=line,
                column=column + 1,
                message=message,
                snippet=snippet,
            )
        )

    # -- RPR001 / RPR002: call-site rules ----------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is not None:
            self._check_rng_call(node, dotted)
            self._check_wallclock_call(node, dotted)
        self.generic_visit(node)

    def _check_rng_call(self, node: ast.Call, dotted: str) -> None:
        if self._is_rng_root:
            return
        tail = dotted.rsplit(".", maxsplit=1)[-1]
        hit = (
            any(dotted.endswith(suffix) for suffix in _RNG_SUFFIXES)
            or dotted in _RNG_BARE
            or (
                tail in _NUMPY_LEGACY
                and (".random." in dotted or dotted.startswith("random."))
            )
            or (dotted.startswith("random.") and tail in _STDLIB_RANDOM)
            or dotted == "Random"
        )
        if hit:
            self._report(
                "RPR001",
                node,
                f"generator minted outside util/rng ({dotted}); derive a "
                "named stream from RngFactory or mark an intentional root "
                "with '# repro: rng-root'",
            )

    def _check_wallclock_call(self, node: ast.Call, dotted: str) -> None:
        if self._wallclock_ok:
            return
        hit = (
            dotted in _WALLCLOCK_DOTTED
            or any(dotted.endswith(suffix) for suffix in _WALLCLOCK_SUFFIXES)
            or dotted in _WALLCLOCK_BARE
        )
        if hit:
            allowed = "/".join(self._config.wallclock_allowed)
            self._report(
                "RPR002",
                node,
                f"wall-clock read ({dotted}) outside {allowed}; "
                "emulated time must come from the slot counter",
            )

    # -- RPR003: set iteration --------------------------------------------

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in (
                "set",
                "frozenset",
            ):
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SET_METHODS
            ):
                return True
            return False
        if isinstance(node, ast.Name):
            return any(
                node.id in scope.set_names for scope in reversed(self._scopes)
            )
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
        ):
            # a & b, a | b, ... — set-typed only if an operand provably is.
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    def _check_iteration(self, iter_node: ast.expr) -> None:
        if self._is_set_expr(iter_node):
            self._report(
                "RPR003",
                iter_node,
                "iterating a set is hash-order nondeterministic across "
                "processes; iterate sorted(...) instead",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(
        self,
        node: ast.ListComp | ast.SetComp | ast.DictComp | ast.GeneratorExp,
    ) -> None:
        for generator in node.generators:
            self._check_iteration(generator.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def visit_Assign(self, node: ast.Assign) -> None:
        scope = self._scopes[-1]
        for target in node.targets:
            if isinstance(target, ast.Name):
                if self._is_set_expr(node.value):
                    scope.set_names.add(target.id)
                else:
                    scope.set_names.discard(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            scope = self._scopes[-1]
            if _annotation_is_set(node.annotation):
                scope.set_names.add(node.target.id)
            else:
                scope.set_names.discard(node.target.id)
        self.generic_visit(node)

    # -- RPR004: float equality -------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[index], operands[index + 1]
            if _is_float_literal(left) or _is_float_literal(right):
                self._report(
                    "RPR004",
                    node,
                    "exact ==/!= against a float literal; use an explicit "
                    "tolerance (math.isclose / abs(a-b) < eps) or pragma an "
                    "exact-sentinel compare",
                )
                break
        self.generic_visit(node)

    # -- RPR005: public API annotations + scope bookkeeping ----------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_depth += 1
        self.generic_visit(node)
        self._class_depth -= 1

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        self._check_annotations(node)
        self._func_depth += 1
        scope = _Scope()
        args = node.args
        for arg in (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
        ):
            if _annotation_is_set(arg.annotation):
                scope.set_names.add(arg.arg)
        self._scopes.append(scope)
        self.generic_visit(node)
        self._scopes.pop()
        self._func_depth -= 1

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _check_annotations(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        if self._func_depth > 0:
            return  # nested helper, not part of the public surface
        is_method = self._class_depth > 0
        public = not node.name.startswith("_") or (
            is_method and node.name == "__init__"
        )
        if not public:
            return
        args = node.args
        positional = [*args.posonlyargs, *args.args]
        if is_method and positional and positional[0].arg in ("self", "cls"):
            positional = positional[1:]
        missing = [
            arg.arg
            for arg in (*positional, *args.kwonlyargs, args.vararg, args.kwarg)
            if arg is not None and arg.annotation is None
        ]
        if missing:
            self._report(
                "RPR005",
                node,
                f"public function '{node.name}' has unannotated "
                f"parameter(s): {', '.join(missing)}",
            )
        if node.returns is None:
            self._report(
                "RPR005",
                node,
                f"public function '{node.name}' is missing a return "
                "annotation",
            )


def lint_source(
    source: str,
    path: str = "<string>",
    config: LintConfig | None = None,
) -> list[Finding]:
    """Run every selected rule over one module's source text."""
    resolved = config if config is not None else LintConfig()
    tree = ast.parse(source, filename=path)
    visitor = _RuleVisitor(path, source, resolved)
    visitor.visit(tree)
    return sorted(visitor.findings, key=Finding.sort_key)
