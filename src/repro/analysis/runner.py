"""File walking, output formats and the ``repro lint`` entry point.

Exit codes: ``0`` clean (or everything grandfathered), ``1`` new
findings / stale baseline / unparseable source, ``2`` usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from repro.analysis.baseline import (
    BaselineError,
    load_baseline,
    partition,
    save_baseline,
)
from repro.analysis.findings import RULE_CODES, RULE_SUMMARIES, Finding
from repro.analysis.rules import LintConfig, lint_source

DEFAULT_BASELINE = "repro-lint-baseline.json"

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".mypy_cache", ".ruff_cache"})


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` in sorted order."""
    for path in paths:
        if path.is_dir():
            for child in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(child.parts):
                    yield child
        elif path.suffix == ".py":
            yield path


def normalize(path: Path, root: Path) -> str:
    """Repo-relative POSIX path when possible (stable fingerprints)."""
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(
    paths: Iterable[Path],
    root: Path,
    config: LintConfig,
) -> tuple[list[Finding], list[str], int]:
    """Lint every file under ``paths``.

    Returns ``(findings, parse_errors, files_checked)``.
    """
    findings: list[Finding] = []
    errors: list[str] = []
    checked = 0
    for file_path in iter_python_files(paths):
        checked += 1
        rel = normalize(file_path, root)
        try:
            source = file_path.read_text(encoding="utf-8")
            findings.extend(lint_source(source, rel, config))
        except (OSError, SyntaxError, ValueError) as exc:
            errors.append(f"{rel}: {exc}")
    return sorted(findings, key=Finding.sort_key), errors, checked


# -- output formats --------------------------------------------------------


def format_text(
    new: list[Finding], matched: list[Finding], *, show_baselined: bool
) -> Iterator[str]:
    shown = new + (matched if show_baselined else [])
    baselined_ids = {id(f) for f in matched}
    for finding in sorted(shown, key=Finding.sort_key):
        tag = " (baselined)" if id(finding) in baselined_ids else ""
        yield (
            f"{finding.path}:{finding.line}:{finding.column}: "
            f"{finding.rule}{tag} {finding.message}"
        )


def format_github(new: list[Finding], *, tool: str = "repro-lint") -> Iterator[str]:
    for finding in new:
        yield (
            f"::error file={finding.path},line={finding.line},"
            f"col={finding.column},title={tool} {finding.rule}::"
            f"{finding.message}"
        )


def format_json(
    new: list[Finding],
    matched: list[Finding],
    stale: int,
    checked: int,
    errors: list[str],
    *,
    rules: dict[str, str] | None = None,
) -> str:
    return json.dumps(
        {
            "findings": [f.to_dict() for f in new],
            "baselined": len(matched),
            "stale_baseline_entries": stale,
            "files_checked": checked,
            "parse_errors": errors,
            "rules": RULE_SUMMARIES if rules is None else rules,
        },
        indent=2,
        sort_keys=True,
    )


# -- CLI -------------------------------------------------------------------


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach ``repro lint``'s arguments to ``parser``."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files/directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="output format (github = workflow error annotations)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline file of grandfathered findings "
        f"(default: {DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="prune fixed entries from the baseline (never adds new ones)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--show-baselined",
        action="store_true",
        help="also print grandfathered findings (text format)",
    )


def run(args: argparse.Namespace, stream: TextIO | None = None) -> int:
    """Execute a configured lint run; returns the process exit code."""
    out = stream if stream is not None else sys.stdout
    if args.select is None:
        select = RULE_CODES
    else:
        select = tuple(
            code.strip() for code in args.select.split(",") if code.strip()
        )
        unknown = [code for code in select if code not in RULE_CODES]
        if unknown:
            print(f"repro lint: unknown rule(s): {', '.join(unknown)}", file=out)
            return 2
    config = LintConfig(select=select)
    root = Path.cwd()
    findings, errors, checked = lint_paths(
        [Path(p) for p in args.paths], root, config
    )

    baseline_path = Path(args.baseline) if args.baseline else Path(DEFAULT_BASELINE)
    baseline: Counter[tuple[str, str, str]] = Counter()
    if baseline_path.exists():
        try:
            baseline = load_baseline(baseline_path)
        except BaselineError as exc:
            print(f"repro lint: {exc}", file=out)
            return 2
    elif args.baseline is not None:
        print(f"repro lint: baseline {baseline_path} not found", file=out)
        return 2

    new, matched, stale = partition(findings, baseline)

    if args.update_baseline:
        if new:
            for line in format_text(new, matched, show_baselined=False):
                print(line, file=out)
            print(
                f"repro lint: refusing to update baseline with {len(new)} new "
                "finding(s); fix or pragma them first (the baseline only "
                "shrinks)",
                file=out,
            )
            return 1
        save_baseline(baseline_path, matched)
        print(
            f"repro lint: baseline rewritten with {len(matched)} entr"
            f"{'y' if len(matched) == 1 else 'ies'} "
            f"({stale} stale pruned) -> {baseline_path}",
            file=out,
        )
        return 0

    if args.format == "json":
        print(format_json(new, matched, stale, checked, errors), file=out)
    elif args.format == "github":
        for line in format_github(new):
            print(line, file=out)
        for error in errors:
            print(f"::error::repro lint parse failure: {error}", file=out)
    else:
        for line in format_text(new, matched, show_baselined=args.show_baselined):
            print(line, file=out)
        for error in errors:
            print(f"repro lint: parse failure: {error}", file=out)

    failed = bool(new or errors or stale)
    if args.format != "json":
        summary = (
            f"repro lint: {checked} file(s), {len(new)} new finding(s), "
            f"{len(matched)} baselined, {stale} stale baseline entr"
            f"{'y' if stale == 1 else 'ies'}"
        )
        print(summary, file=out)
        if stale:
            print(
                "repro lint: stale baseline entries mean code got fixed — "
                "run with --update-baseline to shrink the baseline",
                file=out,
            )
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.analysis.runner``)."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="determinism & invariant static analysis for the repro tree",
    )
    configure_parser(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
