"""The ``repro check`` entry point: whole-program architecture analysis.

Where ``repro lint`` (:mod:`repro.analysis.runner`) judges files one at
a time, ``repro check`` parses the entire package into a module graph
and symbol table and runs the RPR1xx rule family
(:mod:`repro.analysis.project_rules`) over it.  Everything downstream
of the rules — baseline matching, ``# repro: ignore[...]`` pragmas,
output formats, exit codes — is shared with the linter, so the two
commands behave identically from CI's point of view.

The contract the rules enforce lives in ``[tool.repro.check]`` in
``pyproject.toml``:

* ``layers`` — ordered bands of package units, lowest first;
* ``layer-waivers`` — ``"importer -> imported"`` pairs exempted from
  the layering check, each justified by an adjacent comment;
* ``payload-types`` — qualified names of classes shipped across process
  boundaries (``ShardInit``, ``JobSpec``);
* ``worker-roots`` — modules whose import closure runs inside worker
  processes;
* ``rng-modules`` — modules whose functions mint RNG streams.

Exit codes: ``0`` clean (or grandfathered), ``1`` new findings / stale
baseline / unparseable source, ``2`` usage or contract errors.
"""

from __future__ import annotations

import argparse
import ast
import sys
from collections import Counter
from pathlib import Path
from typing import Any, Dict, List, TextIO, Tuple

from repro.analysis.baseline import (
    BaselineError,
    load_baseline,
    partition,
    save_baseline,
)
from repro.analysis.findings import (
    CHECK_RULE_CODES,
    CHECK_RULE_SUMMARIES,
    Finding,
)
from repro.analysis.modgraph import build_project
from repro.analysis.project_rules import CheckConfig, run_project_rules
from repro.analysis.runner import format_github, format_json, format_text

DEFAULT_BASELINE = "repro-check-baseline.json"

__all__ = [
    "DEFAULT_BASELINE",
    "configure_parser",
    "load_check_config",
    "main",
    "run",
]


class CheckConfigError(ValueError):
    """Raised when ``[tool.repro.check]`` is missing or malformed."""


def _load_toml(path: Path) -> Dict[str, Any]:
    """Parse a TOML file with whatever parser this interpreter has.

    Prefers stdlib ``tomllib`` (3.11+), falls back to ``tomli`` (pulled
    in by build tooling on 3.10), and finally to a minimal reader that
    understands exactly the subset ``pyproject.toml``'s
    ``[tool.repro.check]`` table uses: bare sections plus ``key =
    <python-literal-compatible value>`` assignments (strings, numbers,
    booleans via true/false, and arbitrarily nested arrays of those).
    """
    try:
        import tomllib as toml_parser
    except ModuleNotFoundError:  # pragma: no cover - py3.10 path
        try:
            import tomli as toml_parser  # type: ignore[import-not-found, no-redef]
        except ModuleNotFoundError:
            return _parse_minimal_toml(path.read_text(encoding="utf-8"))
    with open(path, "rb") as handle:
        loaded: Dict[str, Any] = toml_parser.load(handle)
        return loaded


def _parse_minimal_toml(text: str) -> Dict[str, Any]:  # pragma: no cover
    """Last-resort TOML subset reader (no tomllib/tomli available)."""
    root: Dict[str, Any] = {}
    table = root
    pending_key: str | None = None
    pending_value = ""
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if pending_key is None:
            if not line or line.startswith("#"):
                continue
            if line.startswith("[") and line.endswith("]"):
                table = root
                for part in line[1:-1].strip().split("."):
                    table = table.setdefault(part.strip().strip('"'), {})
                continue
            key, _, value = line.partition("=")
            pending_key, pending_value = key.strip().strip('"'), value.strip()
        else:
            pending_value += " " + line
        literal = (
            pending_value.replace("true", "True").replace("false", "False")
        )
        try:
            table[pending_key] = ast.literal_eval(literal)
        except (SyntaxError, ValueError):
            continue  # value continues on the next line (multiline array)
        pending_key, pending_value = None, ""
    return root


def _string_tuple(value: Any, name: str) -> Tuple[str, ...]:
    if not isinstance(value, list) or not all(
        isinstance(item, str) for item in value
    ):
        raise CheckConfigError(f"[tool.repro.check] {name} must be a string array")
    return tuple(value)


def load_check_config(pyproject: Path) -> CheckConfig:
    """Build a :class:`CheckConfig` from ``[tool.repro.check]``."""
    if not pyproject.is_file():
        raise CheckConfigError(f"pyproject not found: {pyproject}")
    data = _load_toml(pyproject)
    section = data.get("tool", {}).get("repro", {}).get("check")
    if not isinstance(section, dict):
        raise CheckConfigError(
            f"{pyproject} has no [tool.repro.check] section — the layering "
            "contract must be declared before 'repro check' can run"
        )
    raw_layers = section.get("layers", [])
    if not isinstance(raw_layers, list):
        raise CheckConfigError("[tool.repro.check] layers must be an array")
    layers: List[Tuple[str, ...]] = []
    for band in raw_layers:
        if isinstance(band, str):
            layers.append((band,))
        else:
            layers.append(_string_tuple(band, "layers band"))
    seen: Dict[str, int] = {}
    for rank, band_units in enumerate(layers):
        for unit in band_units:
            if unit in seen:
                raise CheckConfigError(
                    f"[tool.repro.check] unit '{unit}' appears in bands "
                    f"{seen[unit]} and {rank}"
                )
            seen[unit] = rank
    return CheckConfig(
        package=str(section.get("package", "repro")),
        layers=tuple(layers),
        layer_waivers=_string_tuple(
            section.get("layer-waivers", []), "layer-waivers"
        ),
        payload_types=_string_tuple(
            section.get("payload-types", []), "payload-types"
        ),
        worker_roots=_string_tuple(
            section.get("worker-roots", []), "worker-roots"
        ),
        rng_modules=_string_tuple(
            section.get("rng-modules", ["repro.util.rng"]), "rng-modules"
        ),
    )


# -- CLI -------------------------------------------------------------------


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach ``repro check``'s arguments to ``parser``."""
    parser.add_argument(
        "--src",
        default="src",
        metavar="DIR",
        help="source root the package lives under (default: src)",
    )
    parser.add_argument(
        "--pyproject",
        default="pyproject.toml",
        metavar="PATH",
        help="pyproject.toml holding [tool.repro.check] (default: ./pyproject.toml)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="output format (github = workflow error annotations)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline file of grandfathered findings "
        f"(default: {DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="prune fixed entries from the baseline (never adds new ones)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule codes to run (default: all RPR1xx)",
    )
    parser.add_argument(
        "--show-baselined",
        action="store_true",
        help="also print grandfathered findings (text format)",
    )


def run(args: argparse.Namespace, stream: TextIO | None = None) -> int:
    """Execute a configured check run; returns the process exit code."""
    out = stream if stream is not None else sys.stdout
    if args.select is None:
        select = CHECK_RULE_CODES
    else:
        select = tuple(
            code.strip() for code in args.select.split(",") if code.strip()
        )
        unknown = [code for code in select if code not in CHECK_RULE_CODES]
        if unknown:
            print(
                f"repro check: unknown rule(s): {', '.join(unknown)}", file=out
            )
            return 2

    try:
        config = load_check_config(Path(args.pyproject))
    except CheckConfigError as exc:
        print(f"repro check: {exc}", file=out)
        return 2

    errors: List[str] = []
    findings: List[Finding] = []
    checked = 0
    try:
        project = build_project(Path(args.src), config.package)
    except FileNotFoundError as exc:
        print(f"repro check: {exc}", file=out)
        return 2
    except SyntaxError as exc:
        errors.append(f"{exc.filename}: {exc.msg} (line {exc.lineno})")
    else:
        checked = len(project.modules)
        findings = run_project_rules(project, config, select)

    baseline_path = (
        Path(args.baseline) if args.baseline else Path(DEFAULT_BASELINE)
    )
    baseline: Counter[Tuple[str, str, str]] = Counter()
    if baseline_path.exists():
        try:
            baseline = load_baseline(baseline_path)
        except BaselineError as exc:
            print(f"repro check: {exc}", file=out)
            return 2
    elif args.baseline is not None:
        print(f"repro check: baseline {baseline_path} not found", file=out)
        return 2

    new, matched, stale = partition(findings, baseline)

    if args.update_baseline:
        if new:
            for line in format_text(new, matched, show_baselined=False):
                print(line, file=out)
            print(
                f"repro check: refusing to update baseline with {len(new)} "
                "new finding(s); fix, pragma or waive them first (the "
                "baseline only shrinks)",
                file=out,
            )
            return 1
        save_baseline(baseline_path, matched)
        print(
            f"repro check: baseline rewritten with {len(matched)} entr"
            f"{'y' if len(matched) == 1 else 'ies'} "
            f"({stale} stale pruned) -> {baseline_path}",
            file=out,
        )
        return 0

    if args.format == "json":
        print(
            format_json(
                new, matched, stale, checked, errors, rules=CHECK_RULE_SUMMARIES
            ),
            file=out,
        )
    elif args.format == "github":
        for line in format_github(new, tool="repro-check"):
            print(line, file=out)
        for error in errors:
            print(f"::error::repro check parse failure: {error}", file=out)
    else:
        for line in format_text(new, matched, show_baselined=args.show_baselined):
            print(line, file=out)
        for error in errors:
            print(f"repro check: parse failure: {error}", file=out)

    failed = bool(new or errors or stale)
    if args.format != "json":
        summary = (
            f"repro check: {checked} module(s), {len(new)} new finding(s), "
            f"{len(matched)} baselined, {stale} stale baseline entr"
            f"{'y' if stale == 1 else 'ies'}"
        )
        print(summary, file=out)
        if stale:
            print(
                "repro check: stale baseline entries mean code got fixed — "
                "run with --update-baseline to shrink the baseline",
                file=out,
            )
    return 1 if failed else 0


def main(argv: List[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.analysis.checker``)."""
    parser = argparse.ArgumentParser(
        prog="repro check",
        description="whole-program architecture & cross-process determinism "
        "analysis for the repro tree",
    )
    configure_parser(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
