"""Baseline (grandfathered-findings) support for ``repro lint``.

The baseline is a checked-in JSON multiset of findings that predate the
linter.  Policy:

* a current finding that matches a baseline entry is **grandfathered**
  (reported only with ``--show-baselined``, never fails the run);
* a current finding with no baseline entry is **new** and fails;
* a baseline entry with no current finding is **stale** — the code got
  fixed.  ``--update-baseline`` prunes stale entries but *never adds*
  new ones, so the baseline shrinks monotonically toward empty.

Matching is by ``(rule, path, stripped source line)`` — stable under
unrelated edits that only shift line numbers.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.analysis.findings import Finding

_VERSION = 1

_Key = tuple[str, str, str]


class BaselineError(ValueError):
    """The baseline file exists but cannot be parsed."""


def load_baseline(path: Path) -> Counter[_Key]:
    """Read a baseline file into a finding-fingerprint multiset."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != _VERSION:
        raise BaselineError(
            f"baseline {path} has unsupported format (want version {_VERSION})"
        )
    entries = payload.get("findings", [])
    if not isinstance(entries, list):
        raise BaselineError(f"baseline {path}: 'findings' must be a list")
    counts: Counter[_Key] = Counter()
    for entry in entries:
        try:
            key = (str(entry["rule"]), str(entry["path"]), str(entry["snippet"]))
        except (TypeError, KeyError) as exc:
            raise BaselineError(f"baseline {path}: malformed entry {entry!r}") from exc
        counts[key] += 1
    return counts


def save_baseline(path: Path, findings: list[Finding]) -> None:
    """Write ``findings`` as the new baseline (sorted, stable diffs)."""
    entries = sorted(
        (
            {"rule": f.rule, "path": f.path, "snippet": f.snippet}
            for f in findings
        ),
        key=lambda e: (e["path"], e["rule"], e["snippet"]),
    )
    payload = {"version": _VERSION, "findings": entries}
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def partition(
    findings: list[Finding], baseline: Counter[_Key]
) -> tuple[list[Finding], list[Finding], int]:
    """Split findings into (new, grandfathered); also count stale entries.

    Each baseline entry absorbs at most as many findings as its
    multiplicity; the remainder are new.  Stale = baseline entries left
    unmatched after the pass.
    """
    budget = Counter(baseline)
    new: list[Finding] = []
    matched: list[Finding] = []
    for finding in findings:
        key = finding.fingerprint()
        if budget[key] > 0:
            budget[key] -= 1
            matched.append(finding)
        else:
            new.append(finding)
    stale = sum(budget.values())
    return new, matched, stale
