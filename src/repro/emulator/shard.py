"""Sharded slot-loop emulation: one session, many processes, one trace.

The serial :class:`~repro.emulator.engine.EmulationEngine` walks every
runtime every slot; at 10k+ nodes that single loop is the wall.  This
module spreads the per-slot work over long-lived worker processes while
keeping the run *bit-identical* to the serial engine in per-node RNG
mode — ``shards=1`` and ``shards=N`` produce the same trace, the same
stats, the same :class:`~repro.emulator.session.SessionResult`.

How determinism survives the cut:

* **Per-node RNG streams.**  Every MAC lottery key, channel loss vector
  and capture tie-break comes from a stream owned by the node it
  concerns (:class:`~repro.util.rng.NodeStreams`), derived from the
  session seed.  A node draws the same values no matter which process
  hosts it, so RNG consumption is partition-independent by
  construction.
* **Parent-side global MIS.**  Greedy maximal-independent-set decisions
  chain across shard cuts without bound, so grants cannot be computed
  shard-locally.  Shards return ``(key, node)`` lottery entries for
  their owned contenders; the parent merges them and runs the
  scheduler's RNG-free :meth:`grant_from_keyed` pass — the same greedy
  code the serial engine uses.
* **BSP barriers per slot.**  Each slot is three synchronized phases
  (four when unicast feedback is in play): ``begin_slot`` (credits +
  lottery keys), ``fire`` (transmissions + loss draws; every shard sees
  the full granted set, so blanking coverage is computed locally from
  the full topology), and ``resolve`` (per-receiver capture, routed to
  the receiver's owner).  Offers carry their transmitter's grant rank
  and per-broadcast delivery position, which reconstructs the serial
  engine's per-receiver arrival order and its receiver processing
  order exactly.
* **Deferred generation advance.**  The serial driver applies the
  decoded-generation ACK between slots; the sharded driver applies it
  at the next ``begin_slot`` barrier — the same point in runtime-state
  time, since nothing touches the data plane in between.

The oracle: ``ShardedSession(shards=1)`` runs the serial engine in
per-node mode in-process.  Note that per-node mode draws *different*
(equally valid) randomness than the engine's historical global streams,
so a sharded run is its own deterministic universe — compare sharded
runs against ``shards=1``, not against :func:`run_coded_session`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.emulator.channel import LossyBroadcastChannel
from repro.emulator.engine import EmulationEngine, EngineStats
from repro.emulator.node import (
    MultiSessionNodeRuntime,
    NodeRuntime,
    UnicastRuntime,
)
from repro.emulator.scheduler import ConflictGraph, IdealMacScheduler
from repro.emulator.session import (
    SessionConfig,
    SessionResult,
    build_plan_runtimes,
    plan_coding_config,
)
from repro.emulator.trace import SessionTracer
from repro.emulator.plan import SessionPlan, UnicastPathPlan
from repro.exec.pool import PersistentWorkerGroup, WorkerPool
from repro.topology.graph import Link, WirelessNetwork
from repro.topology.partition import NetworkPartition, partition_network
from repro.util.rng import NodeStreams, RngFactory

__all__ = [
    "ShardInit",
    "ShardWorker",
    "ShardedSession",
    "run_sharded_session",
    "session_digest",
    "trace_digest",
]

#: One transmission offer crossing the resolve barrier:
#: (receiver, sender, grant_rank, delivery_pos, kind, payload).
#: ``grant_rank`` is the sender's index in the granted tuple and
#: ``delivery_pos`` its index in the sender's delivered tuple — together
#: they reproduce the serial engine's offers-dict insertion order.
Offer = Tuple[int, int, int, int, str, Any]


class _DecodeLog:
    """Picklable decoded-generation recorder.

    ``build_plan_runtimes`` wires the destination's ``on_decoded``
    callback straight into session-driver closures, which cannot cross a
    process boundary.  This recorder can: it rides inside the runtime
    pickle shipped to the owning shard (pickling one ``ShardInit``
    preserves the shared reference), accumulates decode events, and is
    drained at each resolve barrier.  Single-session destinations append
    bare generation ids; multi-session destinations append
    ``(session_id, generation_id)`` tuples via
    :class:`_SessionDecodeAdapter`.
    """

    def __init__(self) -> None:
        self.events: List[Any] = []

    def __call__(self, generation_id: int) -> None:
        self.events.append(generation_id)

    def drain(self) -> List[Any]:
        drained = self.events
        self.events = []
        return drained


class _SessionDecodeAdapter:
    """Session-tagging shim between a destination and the shared log.

    One adapter per session wraps the session's ``on_decoded`` seam so
    concurrent destinations funnel into a single :class:`_DecodeLog`
    without losing who decoded.  Pickling a ``ShardInit`` keeps the
    shared-log reference intact (pickle memoises object identity within
    one payload).
    """

    def __init__(self, log: _DecodeLog, session_id: int) -> None:
        self._log = log
        self._session_id = session_id

    def __call__(self, generation_id: int) -> None:
        self._log.events.append((self._session_id, generation_id))


class _DeliveryLog:
    """Picklable end-to-end delivery recorder (unicast sessions)."""

    def __init__(self) -> None:
        self.events: List[int] = []

    def __call__(self, sequence: int) -> None:
        self.events.append(sequence)

    def drain(self) -> List[int]:
        drained = self.events
        self.events = []
        return drained


@dataclass
class ShardInit:
    """Everything one shard worker needs, in a single picklable payload.

    The runtimes dict holds only this shard's owned nodes; the network
    and participant list are complete, because blanking coverage and
    receiver filtering are global computations every shard performs
    locally (they are deterministic, so replication costs no
    coordination).  ``seed`` rebuilds the per-node RNG streams in the
    worker — streams derive lazily by (kind, node), so a worker only
    ever materializes streams for nodes it owns.
    """

    network: WirelessNetwork
    owned: Tuple[int, ...]
    runtimes: Dict[int, NodeRuntime]
    participants: Tuple[int, ...]
    slot_duration: float
    interference: str
    seed: int
    has_unicast: bool
    decode_log: _DecodeLog = field(default_factory=_DecodeLog)
    delivery_log: _DeliveryLog = field(default_factory=_DeliveryLog)


class ShardWorker:
    """The shard-resident half of the slot loop.

    Lives inside a :class:`~repro.exec.pool.PersistentWorkerGroup`
    worker; every public method is a barrier-phase handler dispatched by
    the parent via ``call_all``.  State (runtimes, RNG streams, stats
    accumulators) persists across barriers — only per-slot messages
    cross the pipe.
    """

    def __init__(self, init: ShardInit) -> None:
        self._network = init.network
        self._dt = init.slot_duration
        self._interference = init.interference
        self._has_unicast = init.has_unicast
        self._streams = NodeStreams(RngFactory(init.seed))
        # The channel's own stream is never consumed: every draw goes
        # through the per-node override, exactly like the serial engine
        # in per-node mode.
        self._channel = LossyBroadcastChannel(init.network, rng=0)
        self._decode_log = init.decode_log
        self._delivery_log = init.delivery_log
        self._pending_unicast: Dict[int, bool] = {}
        self._queue_time_sum: Dict[int, float] = {}
        self._transmissions: Dict[int, int] = {}
        self._delivered_links: Set[Link] = set()
        self._install_runtimes(dict(init.runtimes), tuple(init.participants))

    def _install_runtimes(
        self, runtimes: Dict[int, NodeRuntime], participants: Tuple[int, ...]
    ) -> None:
        self._runtimes = runtimes
        self._owned = tuple(sorted(runtimes))
        self._owned_set = frozenset(self._owned)
        self._participants = participants
        self._participant_set = frozenset(participants)
        for node in self._owned:
            self._queue_time_sum.setdefault(node, 0.0)
            self._transmissions.setdefault(node, 0)
        self._build_structures()

    def _build_structures(self) -> None:
        """Mirror of the engine's per-node-mode precomputation.

        Coverage lists exist for *every* participant — any of them can
        be granted, and blanking coverage counts all granted coverage
        disks — while receiver pairs are needed only for owned nodes
        (the only transmitters this shard fires).  Candidate order is
        sorted, matching the engine's per-node mode, so the
        transmitter's loss-draw-to-receiver mapping is identical in
        every process.
        """
        network = self._network
        self._cov_list: Dict[int, List[int]] = {}
        self._rx_pairs: Dict[int, List[Tuple[int, float]]] = {}
        for node in self._participants:
            neighbors = sorted(network.neighbors(node))
            self._cov_list[node] = neighbors
            if node in self._owned_set:
                self._rx_pairs[node] = [
                    (j, network.probability(node, j))
                    for j in neighbors
                    if j in self._participant_set
                ]
        node_count = network.node_count
        self._granted_flags: List[bool] = [False] * node_count
        self._covered_counts: List[int] = [0] * node_count

    # -- barrier phases ------------------------------------------------

    def begin_slot(self, events: Optional[List[Any]]) -> List[Tuple[float, int]]:
        """Apply deferred control events, tick clocks, draw lottery keys.

        ``events`` holds the control signals the parent queued since the
        previous slot, in arrival order: a bare ``int`` is the legacy
        single-session generation advance; ``("advance", sid, gen)``,
        ``("arrive", sid)`` and ``("depart", sid)`` are the per-session
        forms.  The serial oracle applies the same signals immediately
        after the previous ``step`` — the identical point in
        runtime-state time, since nothing touches the data plane between
        slots.  Returns ``(key, node)`` lottery entries for owned
        contenders; the parent merges all shards' entries into the
        global greedy MIS pass.
        """
        if events is not None:
            for event in events:
                if isinstance(event, int):
                    for runtime in self._runtimes.values():
                        runtime.advance_generation(event)
                elif event[0] == "advance":
                    for runtime in self._runtimes.values():
                        runtime.advance_session_generation(event[1], event[2])
                elif event[0] == "arrive":
                    for runtime in self._runtimes.values():
                        runtime.activate_session(event[1])
                elif event[0] == "depart":
                    for runtime in self._runtimes.values():
                        runtime.deactivate_session(event[1])
                else:
                    raise ValueError(f"unknown control event {event!r}")
        dt = self._dt
        floor = IdealMacScheduler.WEIGHT_FLOOR
        keyed: List[Tuple[float, int]] = []
        for node in self._owned:
            runtime = self._runtimes[node]
            runtime.on_slot(dt)
            if runtime.backlog() <= 0.0:
                continue
            weight = runtime.demand_rate(dt)
            draw = float(self._streams.get("mac", node).exponential(1.0))
            keyed.append((draw / max(weight, floor), node))
        return keyed

    def fire(
        self, granted: Tuple[int, ...]
    ) -> Tuple[List[Tuple[int, int]], List[Offer]]:
        """Fire this shard's granted transmitters against the full grant.

        The complete granted tuple (all shards) arrives so blanking
        coverage and half-duplex checks are computed exactly as the
        serial engine computes them.  Returns ``(rank, node)`` records
        of transmissions that actually fired (trace reconstruction) and
        the resulting offers.
        """
        granted_flags = self._granted_flags
        covered = self._covered_counts
        blanking = self._interference == "blanking"
        for node in granted:
            granted_flags[node] = True
        if blanking:
            for node in granted:
                for j in self._cov_list[node]:
                    covered[j] += 1
        transmitted: List[Tuple[int, int]] = []
        offers: List[Offer] = []
        try:
            for rank, node in enumerate(granted):
                if node not in self._owned_set:
                    continue
                runtime = self._runtimes[node]
                if isinstance(runtime, UnicastRuntime):
                    sequence = runtime.peek_sequence()
                    if sequence is None:
                        continue
                    target = runtime.next_hop
                    assert target is not None
                    self._transmissions[node] += 1
                    transmitted.append((rank, node))
                    self._pending_unicast[node] = False
                    if granted_flags[target]:
                        continue  # half-duplex: a transmitter cannot receive
                    if blanking and covered[target] > 1:
                        continue  # hidden-terminal collision at the receiver
                    tx_rng = self._streams.get("channel", node)
                    if self._channel.unicast(node, target, rng=tx_rng):
                        offers.append((target, node, rank, 0, "unicast", sequence))
                else:
                    packet = runtime.pop_transmission()
                    if packet is None:
                        continue
                    self._transmissions[node] += 1
                    transmitted.append((rank, node))
                    candidate_ids: List[int] = []
                    candidate_probs: List[float] = []
                    if blanking:
                        for j, p in self._rx_pairs[node]:
                            if granted_flags[j] or covered[j] > 1:
                                continue
                            if p > 0.0:
                                candidate_ids.append(j)
                                candidate_probs.append(p)
                    else:
                        for j, p in self._rx_pairs[node]:
                            if p > 0.0 and not granted_flags[j]:
                                candidate_ids.append(j)
                                candidate_probs.append(p)
                    tx_rng = self._streams.get("channel", node)
                    delivered = self._channel.broadcast_prefiltered(
                        candidate_ids, candidate_probs, rng=tx_rng
                    )
                    for pos, j in enumerate(delivered):
                        offers.append((j, node, rank, pos, "coded", packet))
        finally:
            for node in granted:
                granted_flags[node] = False
            if blanking:
                for node in granted:
                    for j in self._cov_list[node]:
                        covered[j] = 0
        return transmitted, offers

    def resolve(
        self, entries: List[Tuple[int, List[Tuple[int, str, Any]]]]
    ) -> Dict[str, Any]:
        """Per-receiver capture resolution for this shard's owned receivers.

        ``entries`` holds ``(receiver, arrivals)`` with arrivals already
        in the serial engine's per-receiver order; a multi-arrival
        receiver draws its tie-break from its own capture stream, so
        cross-receiver processing order cannot perturb any draw.
        """
        deliveries: List[Tuple[int, int, str]] = []
        for receiver, arrivals in entries:
            if len(arrivals) == 1:
                sender, kind, payload = arrivals[0]
            else:
                capture_rng = self._streams.get("capture", receiver)
                index = int(capture_rng.integers(0, len(arrivals)))
                sender, kind, payload = arrivals[index]
            self._delivered_links.add((sender, receiver))
            runtime = self._runtimes[receiver]
            if kind == "unicast":
                assert isinstance(runtime, UnicastRuntime)
                runtime.receive_sequence(payload)
            else:
                runtime.on_receive(payload, sender)
            deliveries.append((receiver, sender, kind))
        if not self._has_unicast:
            self._sample_queues()
        return {
            "deliveries": deliveries,
            "decoded": self._decode_log.drain(),
            "delivered": self._delivery_log.drain(),
        }

    def finish_slot(self, successes: Sequence[int]) -> None:
        """Settle owned unicast attempts, then sample queues.

        Only invoked for sessions containing unicast runtimes: the
        head-of-line pop in ``complete_transmission`` changes queue
        lengths, so sampling must wait for the success verdicts that the
        receivers' shards produced at the resolve barrier.
        """
        success_set = set(successes)
        for node in sorted(self._pending_unicast):
            runtime = self._runtimes[node]
            assert isinstance(runtime, UnicastRuntime)
            runtime.complete_transmission(node in success_set)
        self._pending_unicast.clear()
        self._sample_queues()

    def _sample_queues(self) -> None:
        queue_times = self._queue_time_sum
        for node in self._owned:
            queue_times[node] += self._runtimes[node].queue_length()

    # -- control plane -------------------------------------------------

    def advance_idle(self, slots: int) -> None:
        """Stall the data plane for ``slots`` slots (replan cost model)."""
        if slots <= 0:
            return
        queue_times = self._queue_time_sum
        for node in self._owned:
            queue_times[node] += self._runtimes[node].queue_length() * slots

    def set_network(self, network: WirelessNetwork) -> None:
        """Swap the topology mid-run; RNG streams are untouched."""
        if network.node_count != self._network.node_count:
            raise ValueError(
                "replacement network must keep the node count "
                f"({self._network.node_count} != {network.node_count})"
            )
        self._network = network
        self._channel.set_network(network)
        self._build_structures()

    def rebuild(self, _argument: Optional[int] = None) -> None:
        """Refresh precomputed structures (after plan updates)."""
        self._build_structures()

    def apply_plan(self, updates: Dict[int, Dict[str, Any]]) -> None:
        """Hot-swap plan parameters on owned runtimes."""
        for node, params in updates.items():
            self._runtimes[node].apply_plan(**params)

    def finalize(self, _argument: Optional[int] = None) -> Dict[str, Any]:
        """Shard-local stats for the parent's merge (non-destructive)."""
        return {
            "queue_time_sum": dict(self._queue_time_sum),
            "transmissions": dict(self._transmissions),
            "delivered_links": sorted(self._delivered_links),
        }

    def session_stats(
        self, _argument: Optional[int] = None
    ) -> Dict[int, Dict[str, Any]]:
        """Per-session composite stats for owned multi-session nodes."""
        stats: Dict[int, Dict[str, Any]] = {}
        for node in self._owned:
            runtime = self._runtimes[node]
            if isinstance(runtime, MultiSessionNodeRuntime):
                stats[node] = {
                    "sessions": runtime.session_stats(),
                    "xor_transmissions": runtime.xor_transmissions,
                }
        return stats


class ShardedSession:
    """Parent-side driver of one sharded (or serial-oracle) session.

    ``shards=1`` runs the serial engine in per-node RNG mode in-process
    — the digest oracle.  ``shards>1`` partitions the mesh spatially
    (:func:`~repro.topology.partition.partition_network`), ships each
    shard its owned runtimes, and drives the slot loop through
    per-slot barriers on a :class:`PersistentWorkerGroup`.  Both modes
    expose the same API and produce bit-identical traces and stats.
    """

    def __init__(
        self,
        network: WirelessNetwork,
        runtimes: Dict[int, NodeRuntime],
        slot_duration: float,
        *,
        rng_factory: RngFactory,
        shards: int = 1,
        interference: str = "blanking",
        tracer: SessionTracer | None = None,
        decode_log: _DecodeLog | None = None,
        delivery_log: _DeliveryLog | None = None,
        on_decoded: Callable[[Any, float], None] | None = None,
        on_delivered: Callable[[int], None] | None = None,
        start_method: str | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if shards > network.node_count:
            raise ValueError(
                f"cannot run {shards} shards on {network.node_count} node(s)"
            )
        self._network = network
        self._runtimes = runtimes
        self._dt = slot_duration
        self._interference = interference
        self._tracer = tracer
        self._decode_log = decode_log if decode_log is not None else _DecodeLog()
        self._delivery_log = (
            delivery_log if delivery_log is not None else _DeliveryLog()
        )
        self._on_decoded = on_decoded
        self._on_delivered = on_delivered
        self._has_unicast = any(
            isinstance(r, UnicastRuntime) for r in runtimes.values()
        )
        self._pending_events: List[Any] = []
        self._slots = 0
        self._elapsed = 0.0
        self._grants = 0
        self._closed = False
        self._shards = shards
        self._partition: NetworkPartition | None = None
        self._group: PersistentWorkerGroup | None = None
        self._engine: EmulationEngine | None = None
        if shards == 1:
            self._engine = EmulationEngine(
                network,
                runtimes,
                LossyBroadcastChannel(network, rng=0),
                slot_duration,
                interference=interference,
                tracer=tracer,
                node_streams=NodeStreams(rng_factory),
            )
        else:
            self._partition = partition_network(network, shards)
            self._build_parent_scheduler()
            participants = tuple(sorted(runtimes))
            owner = self._partition.owner
            payloads = []
            for shard in range(shards):
                owned_runtimes = {
                    node: runtime
                    for node, runtime in runtimes.items()
                    if owner[node] == shard
                }
                payloads.append(
                    ShardInit(
                        network=network,
                        owned=tuple(sorted(owned_runtimes)),
                        runtimes=owned_runtimes,
                        participants=participants,
                        slot_duration=slot_duration,
                        interference=interference,
                        seed=rng_factory.seed,
                        has_unicast=self._has_unicast,
                        decode_log=self._decode_log,
                        delivery_log=self._delivery_log,
                    )
                )
            pool = WorkerPool(shards, start_method=start_method)
            self._group = pool.persistent(ShardWorker, payloads)

    def _build_parent_scheduler(self) -> None:
        """(Re)build the global greedy-MIS pass over current participants.

        The parent's scheduler never consumes RNG — every key arrives
        pre-drawn from a node's own stream — so its generator argument
        is irrelevant; only the conflict structure matters.
        """
        conflicts = ConflictGraph(
            self._network,
            self._runtimes.keys(),
            two_hop=(self._interference == "conflict_free"),
        )
        self._scheduler = IdealMacScheduler(conflicts)
        self._positions = {
            node: i for i, node in enumerate(conflicts.participants)
        }

    # -- introspection -------------------------------------------------

    @property
    def shards(self) -> int:
        """Shard count (1 = in-process serial oracle)."""
        return self._shards

    @property
    def partition(self) -> NetworkPartition | None:
        """The spatial partition (None for the serial oracle)."""
        return self._partition

    @property
    def now(self) -> float:
        """Emulated seconds elapsed."""
        return self._elapsed

    @property
    def slots(self) -> int:
        """Slots executed."""
        return self._slots

    @property
    def slot_duration(self) -> float:
        """Seconds of airtime per slot."""
        return self._dt

    # -- slot loop -----------------------------------------------------

    def run(
        self,
        max_slots: int,
        *,
        stop_when: Callable[[], bool] | None = None,
    ) -> None:
        """Advance up to ``max_slots``; ``stop_when`` checked per slot."""
        if max_slots < 0:
            raise ValueError(f"max_slots must be >= 0, got {max_slots}")
        for _ in range(max_slots):
            self.step()
            if stop_when is not None and stop_when():
                break

    def step(self) -> Tuple[int, ...]:
        """Execute one slot; returns the granted transmitter set."""
        if self._engine is not None:
            granted = self._engine.step()
            self._drain_logs()
            self._bump(granted)
            return granted
        group = self._group
        assert group is not None
        shards = self._shards
        events = self._pending_events if self._pending_events else None
        self._pending_events = []
        keyed_lists = group.call_all("begin_slot", [events] * shards)
        positions = self._positions
        keyed = sorted(
            (key, positions[node])
            for entries in keyed_lists
            for key, node in entries
        )
        granted = self._scheduler.grant_from_keyed(keyed)
        tracer = self._tracer
        if tracer is not None:
            for node in granted:
                tracer.record(self._slots, self._elapsed, "grant", node)
        fire_replies = group.call_all("fire", [granted] * shards)
        if tracer is not None:
            transmitted = sorted(
                entry for reply in fire_replies for entry in reply[0]
            )
            for _rank, node in transmitted:
                tracer.record(self._slots, self._elapsed, "tx", node)
        # Group offers per receiver; per-receiver arrival order and the
        # receiver processing order both follow (grant_rank,
        # delivery_pos) — the serial offers-dict insertion order.
        per_receiver: Dict[int, List[Tuple[int, int, int, str, Any]]] = {}
        for reply in fire_replies:
            for receiver, sender, rank, pos, kind, payload in reply[1]:
                per_receiver.setdefault(receiver, []).append(
                    (rank, pos, sender, kind, payload)
                )
        ordered: List[Tuple[Tuple[int, int], int, List[Tuple[int, str, Any]]]] = []
        for receiver, arrivals in per_receiver.items():
            arrivals.sort(key=lambda entry: (entry[0], entry[1]))
            ordered.append(
                (
                    (arrivals[0][0], arrivals[0][1]),
                    receiver,
                    [(sender, kind, payload)
                     for _rank, _pos, sender, kind, payload in arrivals],
                )
            )
        ordered.sort(key=lambda entry: entry[0])
        owner = self._partition.owner if self._partition is not None else ()
        entries_per_shard: List[List[Tuple[int, List[Tuple[int, str, Any]]]]] = [
            [] for _ in range(shards)
        ]
        for _key, receiver, arrivals in ordered:
            entries_per_shard[owner[receiver]].append((receiver, arrivals))
        replies = group.call_all("resolve", entries_per_shard)
        winner: Dict[int, Tuple[int, str]] = {}
        for reply in replies:
            for receiver, sender, kind in reply["deliveries"]:
                winner[receiver] = (sender, kind)
        unicast_successes: Set[int] = set()
        for _key, receiver, _arrivals in ordered:
            sender, kind = winner[receiver]
            if tracer is not None:
                tracer.record(
                    self._slots, self._elapsed, "delivery", sender, peer=receiver
                )
            if kind == "unicast":
                unicast_successes.add(sender)
        for reply in replies:
            for generation_id in reply["decoded"]:
                self._handle_decoded(generation_id)
            for sequence in reply["delivered"]:
                if self._on_delivered is not None:
                    self._on_delivered(sequence)
        if self._has_unicast:
            successes_per_shard: List[List[int]] = [[] for _ in range(shards)]
            for sender in sorted(unicast_successes):
                successes_per_shard[owner[sender]].append(sender)
            group.call_all("finish_slot", successes_per_shard)
        self._bump(granted)
        return granted

    def _bump(self, granted: Tuple[int, ...]) -> None:
        self._slots += 1
        self._elapsed += self._dt
        self._grants += len(granted)

    def _drain_logs(self) -> None:
        """Serial-oracle decode/delivery polling (post-``engine.step``).

        Fires the parent callbacks *before* the slot counter bump, so
        ack timestamps accumulate through exactly the same float
        additions as the ``shards>1`` path.
        """
        for generation_id in self._decode_log.drain():
            self._handle_decoded(generation_id)
        for sequence in self._delivery_log.drain():
            if self._on_delivered is not None:
                self._on_delivered(sequence)

    def _handle_decoded(self, event: Any) -> None:
        if self._on_decoded is not None:
            self._on_decoded(event, self._elapsed)

    def broadcast_generation_advance(self, generation_id: int) -> None:
        """Propagate the ACK/next-generation signal to every runtime.

        The serial oracle applies it immediately (the engine's own
        path); shards defer the runtime update to the next
        ``begin_slot`` barrier — state-equivalent, because nothing
        touches the data plane between slots.
        """
        if self._engine is not None:
            self._engine.broadcast_generation_advance(generation_id)
            return
        if self._tracer is not None:
            self._tracer.record(
                self._slots, self._elapsed, "ack", -1, detail=generation_id
            )
        self._pending_events.append(generation_id)

    def broadcast_session_generation_advance(
        self, session_id: int, generation_id: int
    ) -> None:
        """Per-session ACK propagation (multi-session runs).

        Serial oracle: applied immediately via the engine.  Sharded:
        traced now, applied at the next ``begin_slot`` barrier in queue
        order — the same runtime-state point in both modes.
        """
        if self._engine is not None:
            self._engine.broadcast_session_generation_advance(
                session_id, generation_id
            )
            return
        if self._tracer is not None:
            self._tracer.record(
                self._slots,
                self._elapsed,
                "ack",
                -1,
                peer=session_id,
                detail=generation_id,
            )
        self._pending_events.append(("advance", session_id, generation_id))

    def broadcast_session_arrival(self, session_id: int) -> None:
        """Switch a dormant session live on every hosting runtime."""
        if self._engine is not None:
            self._engine.broadcast_session_arrival(session_id)
            return
        if self._tracer is not None:
            self._tracer.record(
                self._slots, self._elapsed, "arrive", -1, peer=session_id
            )
        self._pending_events.append(("arrive", session_id))

    def broadcast_session_departure(self, session_id: int) -> None:
        """Remove a session from airtime contention on every runtime."""
        if self._engine is not None:
            self._engine.broadcast_session_departure(session_id)
            return
        if self._tracer is not None:
            self._tracer.record(
                self._slots, self._elapsed, "depart", -1, peer=session_id
            )
        self._pending_events.append(("depart", session_id))

    # -- control plane -------------------------------------------------

    def advance_idle(self, slots: int) -> None:
        """Advance time with the data plane stalled (replan cost)."""
        if slots < 0:
            raise ValueError(f"slots must be >= 0, got {slots}")
        if slots == 0:
            return
        if self._engine is not None:
            self._engine.advance_idle(slots)
        else:
            assert self._group is not None
            self._group.call_all("advance_idle", [slots] * self._shards)
        self._slots += slots
        self._elapsed += slots * self._dt

    def set_network(self, network: WirelessNetwork) -> None:
        """Swap the topology mid-run on every shard."""
        if network.node_count != self._network.node_count:
            raise ValueError(
                "replacement network must keep the node count "
                f"({self._network.node_count} != {network.node_count})"
            )
        self._network = network
        if self._engine is not None:
            self._engine.set_network(network)
            return
        assert self._group is not None
        self._group.call_all("set_network", [network] * self._shards)
        self._build_parent_scheduler()

    def rebuild_runtime_structures(self) -> None:
        """Refresh precomputed slot-loop structures after plan updates.

        Unlike the serial engine's richer signature, the sharded form
        cannot swap runtime *objects* — they live in the workers — so
        parameter changes go through :meth:`apply_plan_updates`.
        """
        if self._engine is not None:
            self._engine.rebuild_runtime_structures()
            return
        assert self._group is not None
        self._group.call_all("rebuild")
        self._build_parent_scheduler()

    def apply_plan_updates(self, updates: Dict[int, Dict[str, Any]]) -> None:
        """Route ``runtime.apply_plan(**params)`` to each node's owner."""
        unknown = sorted(set(updates) - set(self._runtimes))
        if unknown:
            raise KeyError(f"no runtimes for nodes {unknown}")
        if self._engine is not None:
            for node, params in updates.items():
                self._runtimes[node].apply_plan(**params)
            return
        assert self._partition is not None and self._group is not None
        owner = self._partition.owner
        per_shard: List[Dict[int, Dict[str, Any]]] = [
            {} for _ in range(self._shards)
        ]
        for node, params in updates.items():
            per_shard[owner[node]][node] = params
        self._group.call_all("apply_plan", per_shard)

    # -- results -------------------------------------------------------

    def finalize_stats(self) -> EngineStats:
        """Merge per-shard counters into one serial-shaped stats object."""
        if self._engine is not None:
            return self._engine.stats
        assert self._group is not None
        merged = EngineStats(
            slots=self._slots, elapsed=self._elapsed, grants=self._grants
        )
        for reply in self._group.call_all("finalize"):
            merged.queue_time_sum.update(reply["queue_time_sum"])
            merged.transmissions.update(reply["transmissions"])
            merged.delivered_links.update(
                (int(i), int(j)) for i, j in reply["delivered_links"]
            )
        return merged

    def collect_session_stats(self) -> Dict[int, Dict[str, Any]]:
        """Per-node composite stats (multi-session runs).

        Each entry holds ``{"sessions": {sid: {...}}, "xor_transmissions":
        int}``.  The serial oracle reads the composites directly; sharded
        mode harvests each node's stats from its owning worker.  Nodes
        whose runtime is not a :class:`MultiSessionNodeRuntime` are
        absent.
        """
        if self._engine is not None:
            stats: Dict[int, Dict[str, Any]] = {}
            for node, runtime in self._runtimes.items():
                if isinstance(runtime, MultiSessionNodeRuntime):
                    stats[node] = {
                        "sessions": runtime.session_stats(),
                        "xor_transmissions": runtime.xor_transmissions,
                    }
            return stats
        assert self._group is not None
        merged_stats: Dict[int, Dict[str, Any]] = {}
        for reply in self._group.call_all("session_stats"):
            merged_stats.update(reply)
        return merged_stats

    def close(self) -> None:
        """Shut the worker group down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._group is not None:
            self._group.close()

    def __enter__(self) -> "ShardedSession":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()


def run_sharded_session(
    network: WirelessNetwork,
    plan: SessionPlan,
    *,
    shards: int = 1,
    session_id: int = 1,
    config: SessionConfig | None = None,
    rng: RngFactory | None = None,
    protocol_label: str | None = None,
    tracer: SessionTracer | None = None,
    start_method: str | None = None,
) -> SessionResult:
    """Sharded counterpart of :func:`run_coded_session` (any plan type).

    ``shards=1`` is the in-process serial oracle; any ``shards=N``
    produces a bit-identical :class:`SessionResult` and trace.  The
    randomness comes from per-node streams, so results are a different
    (equally valid) deterministic universe than the global-stream
    serial drivers.
    """
    config = plan_coding_config(config or SessionConfig(), plan)
    rng = rng or RngFactory(0)
    decode_log = _DecodeLog()
    delivery_log = _DeliveryLog()
    unicast = isinstance(plan, UnicastPathPlan)
    runtimes, label = build_plan_runtimes(
        network,
        plan,
        session_id=session_id,
        config=config,
        rng=rng,
        on_decoded=decode_log,
        on_delivered=delivery_log,
    )
    if unicast:
        slot = config.unicast_packet_bytes() / network.capacity
        source, destination = plan.source, plan.destination
    else:
        slot = config.coded_packet_bytes() / network.capacity
        source = plan.forwarders.source
        destination = plan.forwarders.destination

    ack_times: List[float] = []
    delivered_count = [0]
    pending_advance: List[Optional[int]] = [None]

    def on_decoded(generation_id: int, ack_time: float) -> None:
        ack_times.append(ack_time)
        pending_advance[0] = generation_id + 1

    def on_delivered(_sequence: int) -> None:
        delivered_count[0] += 1

    session = ShardedSession(
        network,
        runtimes,
        slot,
        rng_factory=rng,
        shards=shards,
        interference=config.interference,
        tracer=tracer,
        decode_log=decode_log,
        delivery_log=delivery_log,
        on_decoded=on_decoded,
        on_delivered=on_delivered,
        start_method=start_method,
    )
    max_slots = int(config.max_seconds / slot)
    target = config.target_generations

    def stop() -> bool:
        if pending_advance[0] is not None:
            session.broadcast_generation_advance(pending_advance[0])
            pending_advance[0] = None
        return target > 0 and len(ack_times) >= target

    with session:
        session.run(max_slots, stop_when=stop if not unicast else None)
        stats = session.finalize_stats()

    if unicast:
        elapsed = stats.elapsed if stats.elapsed > 0 else 1.0
        throughput = delivered_count[0] * config.block_size / elapsed
        generations = 0
        packets = delivered_count[0]
    else:
        generations = len(ack_times)
        if ack_times:
            throughput = generations * config.generation_bytes() / ack_times[-1]
        else:
            throughput = 0.0
        packets = generations * config.blocks
    return SessionResult(
        protocol=protocol_label or label,
        source=source,
        destination=destination,
        throughput_bps=throughput,
        duration=stats.elapsed,
        generations_decoded=generations,
        packets_delivered=packets,
        ack_times=tuple(ack_times) if not unicast else (),
        average_queues={n: stats.average_queue(n) for n in runtimes},
        transmissions=dict(stats.transmissions),
        participants=tuple(sorted(runtimes)),
        delivered_links=tuple(sorted(stats.delivered_links)),
    )


def session_digest(result: SessionResult) -> str:
    """Canonical SHA-256 digest of a :class:`SessionResult`.

    Floats are serialized through ``repr`` (shortest round-trip form),
    so two results digest equal iff every field is bit-identical — the
    shards=1 == shards=N oracle the tests and the CI smoke job assert.
    """
    import hashlib
    import json

    payload = {
        "protocol": result.protocol,
        "source": result.source,
        "destination": result.destination,
        "throughput_bps": repr(result.throughput_bps),
        "duration": repr(result.duration),
        "generations_decoded": result.generations_decoded,
        "packets_delivered": result.packets_delivered,
        "ack_times": [repr(t) for t in result.ack_times],
        "average_queues": {
            str(n): repr(result.average_queues[n])
            for n in sorted(result.average_queues)
        },
        "transmissions": {
            str(n): result.transmissions[n]
            for n in sorted(result.transmissions)
        },
        "participants": list(result.participants),
        "delivered_links": [list(link) for link in result.delivered_links],
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def trace_digest(tracer: SessionTracer) -> str:
    """Canonical SHA-256 digest of a tracer's retained event sequence."""
    import hashlib
    import json

    records = []
    for event in tracer.events():
        record = event.as_dict()
        record["time"] = repr(event.time)  # full precision, not rounded
        records.append(record)
    blob = json.dumps(records, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
