"""The slotted emulation engine.

Time advances in packet slots (one slot = the airtime of one packet at
the MAC channel capacity).  Each slot:

1. every runtime accrues credits / generates packets (``on_slot``);
2. the ideal MAC scheduler grants a conflict-free transmitter set;
3. granted coded transmitters broadcast — every in-range participant
   draws an independent reception; granted unicast transmitters attempt
   their head-of-line packet toward the next hop (failure = MAC
   retransmission later);
4. queue lengths are sampled for the Fig. 3 statistics.

The engine is protocol-agnostic: behaviour differences live entirely in
the runtimes (:mod:`repro.emulator.node`) and the plans that configured
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Set, Tuple

import numpy as np

from repro import obs
from repro.emulator.channel import LossyBroadcastChannel
from repro.emulator.node import NodeRuntime, UnicastRuntime
from repro.emulator.scheduler import ConflictGraph, IdealMacScheduler
from repro.emulator.trace import SessionTracer
from repro.topology.graph import Link, WirelessNetwork
from repro.util.rng import NodeStreams, fallback_rng


@dataclass
class EngineStats:
    """Aggregate counters maintained by the engine during a run."""

    slots: int = 0
    elapsed: float = 0.0
    grants: int = 0
    queue_time_sum: Dict[int, float] = field(default_factory=dict)
    transmissions: Dict[int, int] = field(default_factory=dict)
    delivered_links: Set[Link] = field(default_factory=set)

    def average_queue(self, node: int) -> float:
        """Time-averaged queue length of ``node``."""
        if self.slots == 0:
            return 0.0
        return self.queue_time_sum.get(node, 0.0) / self.slots


class EmulationEngine:
    """Run one session's runtimes over the ideal MAC and lossy channel."""

    def __init__(
        self,
        network: WirelessNetwork,
        runtimes: Dict[int, NodeRuntime],
        channel: LossyBroadcastChannel,
        slot_duration: float,
        *,
        scheduler_rng: np.random.Generator | None = None,
        capture_rng: np.random.Generator | None = None,
        interference: str = "blanking",
        tracer: SessionTracer | None = None,
        registry: obs.MetricsRegistry | None = None,
        node_streams: NodeStreams | None = None,
    ) -> None:
        if slot_duration <= 0:
            raise ValueError(f"slot_duration must be > 0, got {slot_duration}")
        if interference not in ("blanking", "capture", "conflict_free"):
            raise ValueError(f"unknown interference model {interference!r}")
        self._network = network
        self._runtimes = dict(runtimes)
        self._channel = channel
        self._dt = slot_duration
        self._interference = interference
        metrics = obs.resolve(registry)
        self._metrics = metrics
        # Resolved here (not inside the scheduler) so a mid-run rebuild
        # can hand the *same* generator to the replacement scheduler and
        # the grant stream continues uninterrupted.
        self._scheduler_rng = (
            scheduler_rng if scheduler_rng is not None
            else fallback_rng("mac-scheduler")
        )
        self._rng = (
            capture_rng if capture_rng is not None
            else fallback_rng("engine-capture")
        )
        # Per-node stream mode: every MAC lottery key, channel loss draw
        # and capture tie-break comes from a stream owned by the node it
        # concerns, making RNG consumption independent of who else is
        # active — the property the sharded slot loop
        # (:mod:`repro.emulator.shard`) needs for shards=1 == shards=N
        # bit-identity.  When None (default) the engine keeps the three
        # global streams above, bit-compatible with every existing trace.
        self._node_streams = node_streams
        self._pending_unicast: Dict[int, bool] = {}
        self._tracer = tracer
        self._stats = EngineStats(
            queue_time_sum={n: 0.0 for n in runtimes},
            transmissions={n: 0 for n in runtimes},
        )
        self._build_runtime_structures()
        scope = metrics.attach("emulator")
        self._obs_enabled = scope.enabled
        self._m_slots = scope.counter("slots", "emulation slots executed")
        self._m_grants = scope.counter("grants", "MAC grants issued")
        self._m_tx = scope.counter("transmissions", "packets put on the air")
        self._m_deliveries = scope.counter(
            "deliveries", "packets delivered to a receiver"
        )
        self._m_blanked = scope.counter(
            "blanked", "receptions lost to hidden-terminal interference"
        )
        self._m_time = scope.gauge("virtual_time", "emulated seconds elapsed")
        self._m_queue = scope.histogram(
            "queue_depth", "per-node queue length sampled every slot"
        )

    def _build_runtime_structures(self) -> None:
        """(Re)compute the precomputed slot-loop structures (the hot path).

        Participant order is the conflict graph's sorted order; per-slot
        state lives in preallocated arrays instead of rebuilt dicts.
        Derived entirely from ``self._network`` and ``self._runtimes``, so
        the live control plane can refresh everything after a topology or
        plan change without touching any RNG stream.
        """
        network = self._network
        self._conflicts = ConflictGraph(
            network,
            self._runtimes.keys(),
            two_hop=(self._interference == "conflict_free"),
        )
        self._scheduler = IdealMacScheduler(
            self._conflicts, rng=self._scheduler_rng, registry=self._metrics
        )
        participants = self._conflicts.participants
        self._participants = participants
        self._runtime_list = [self._runtimes[node] for node in participants]
        count = len(participants)
        self._backlog_buf: List[float] = [0.0] * count
        self._weight_buf: List[float] = [0.0] * count
        # Queue-time accumulators carry over: a node that participated
        # before a rebuild keeps its integral, new nodes start at zero.
        queue_time_sum = self._stats.queue_time_sum
        self._queue_time_buf: List[float] = [
            queue_time_sum.get(node, 0.0) for node in participants
        ]
        node_count = network.node_count
        # Node-indexed per-slot scratch: which nodes transmit this slot,
        # and how many granted transmitters cover each node (blanking
        # model).  Reset per slot by touched entry, not by rebuild.
        self._granted_flags: List[bool] = [False] * node_count
        self._covered_counts: List[int] = [0] * node_count
        # Per transmitter, in the network's neighborhood iteration order
        # (fixed at (re)build so the channel RNG mapping is stable):
        #  - _cov_list: every geometric neighbor (coverage targets);
        #  - _rx_pairs: (receiver, p) over neighbors that are session
        #    runtimes; p = 0 where no usable link exists (such receivers
        #    still count toward blanking — coverage is geometric).
        self._cov_list: Dict[int, List[int]] = {}
        self._rx_pairs: Dict[int, List[Tuple[int, float]]] = {}
        for node in participants:
            neighbors = list(network.neighbors(node))
            if self._node_streams is not None:
                # Per-node mode sorts the candidate order so every
                # process (shard workers unpickle their own network
                # copy) maps the transmitter's loss draws to receivers
                # identically.  The default path keeps the historical
                # frozenset order to stay bit-compatible with existing
                # traces.
                neighbors.sort()
            self._cov_list[node] = neighbors
            self._rx_pairs[node] = [
                (j, network.probability(node, j))
                for j in neighbors
                if j in self._runtimes
            ]

    def rebuild_runtime_structures(
        self, runtimes: Dict[int, NodeRuntime] | None = None
    ) -> None:
        """Refresh the precomputed slot-loop structures mid-run.

        The live control plane calls this after hot-swapping a plan
        (optionally replacing the runtime set: new forwarders appear,
        silenced ones may be dropped) or after :meth:`set_network`.
        Scheduler, channel and capture RNG streams are preserved, so a
        rebuild that changes nothing is invisible: the subsequent trace is
        bit-identical to a run that never rebuilt.
        """
        self._flush_queue_stats()
        if runtimes is not None:
            for node, runtime in runtimes.items():
                if runtime.node_id != node:
                    raise ValueError(
                        f"runtime for node {node} reports id {runtime.node_id}"
                    )
            self._runtimes = dict(runtimes)
        stats = self._stats
        for node in self._runtimes:
            stats.queue_time_sum.setdefault(node, 0.0)
            stats.transmissions.setdefault(node, 0)
        self._build_runtime_structures()

    def set_network(self, network: WirelessNetwork) -> None:
        """Swap the topology mid-run (drift epoch, node failure/recovery).

        Updates the channel's loss model and refreshes every precomputed
        neighbor/receiver structure.  Geometry must be preserved (same
        node count) — scenario dynamics move link qualities, not nodes.
        """
        if network.node_count != self._network.node_count:
            raise ValueError(
                "replacement network must keep the node count "
                f"({self._network.node_count} != {network.node_count})"
            )
        self._network = network
        self._channel.set_network(network)
        self.rebuild_runtime_structures()

    @property
    def runtimes(self) -> Dict[int, NodeRuntime]:
        """The live per-node runtimes (shared objects, not copies)."""
        return dict(self._runtimes)

    @property
    def network(self) -> WirelessNetwork:
        """The topology currently being emulated."""
        return self._network

    def advance_idle(self, slots: int) -> None:
        """Advance time with the data plane stalled (control-plane cost).

        Models the paper Sec. 4 re-initiation overhead: the node-selection
        flood and the rate-control message census occupy the channel for
        ``replan_cost().channel_seconds``, during which the session moves
        no data.  Queues hold their occupancy (their time-integral keeps
        accruing), credits do not accrue, and **no RNG stream is
        consumed**, so a zero-slot stall is exactly a no-op.
        """
        if slots < 0:
            raise ValueError(f"slots must be >= 0, got {slots}")
        if slots == 0:
            return
        queue_times = self._queue_time_buf
        for index, runtime in enumerate(self._runtime_list):
            queue_length = runtime.queue_length()
            queue_times[index] += queue_length * slots
            if self._obs_enabled:
                self._m_queue.observe(queue_length)
        stats = self._stats
        stats.slots += slots
        stats.elapsed += slots * self._dt
        if self._obs_enabled:
            self._m_slots.inc(slots)
            self._m_time.set(stats.elapsed)

    @property
    def stats(self) -> EngineStats:
        """Counters collected so far."""
        self._flush_queue_stats()
        return self._stats

    def _flush_queue_stats(self) -> None:
        """Publish the queue-time accumulator into the stats dict.

        The slot loop accumulates into a flat array; the dict view the
        stats object exposes is materialized only when someone looks.
        """
        for index, node in enumerate(self._participants):
            self._stats.queue_time_sum[node] = self._queue_time_buf[index]

    @property
    def now(self) -> float:
        """Emulated seconds elapsed."""
        return self._stats.elapsed

    @property
    def slot_duration(self) -> float:
        """Seconds of airtime per slot."""
        return self._dt

    def run(
        self,
        max_slots: int,
        *,
        stop_when: Callable[[], bool] | None = None,
    ) -> EngineStats:
        """Advance up to ``max_slots`` slots; ``stop_when`` checked each
        slot after delivery processing."""
        if max_slots < 0:
            raise ValueError(f"max_slots must be >= 0, got {max_slots}")
        for _ in range(max_slots):
            self.step()
            if stop_when is not None and stop_when():
                break
        self._flush_queue_stats()
        return self._stats

    def step(self) -> Tuple[int, ...]:
        """Execute one slot; returns the granted transmitter set."""
        dt = self._dt
        backlogs = self._backlog_buf
        weights = self._weight_buf
        # One pass per runtime: clock advance, then scheduler inputs.
        # Safe to fuse — runtimes only interact through deliveries, and
        # each holds its own RNG, so per-node slot work is independent.
        for index, runtime in enumerate(self._runtime_list):
            runtime.on_slot(dt)
            backlogs[index] = runtime.backlog()
            weights[index] = runtime.demand_rate(dt)
        if self._node_streams is None:
            granted = self._scheduler.schedule_arrays(backlogs, weights)
        else:
            granted = self._schedule_per_node(backlogs, weights)
        if self._tracer is not None:
            for node in granted:
                self._tracer.record(
                    self._stats.slots, self._stats.elapsed, "grant", node
                )
        self._deliver(granted)
        queue_times = self._queue_time_buf
        if self._obs_enabled:
            for index, runtime in enumerate(self._runtime_list):
                queue_length = runtime.queue_length()
                queue_times[index] += queue_length
                self._m_queue.observe(queue_length)
        else:
            for index, runtime in enumerate(self._runtime_list):
                queue_times[index] += runtime.queue_length()
        stats = self._stats
        stats.slots += 1
        stats.elapsed += dt
        stats.grants += len(granted)
        if self._obs_enabled:
            self._m_slots.inc()
            self._m_grants.inc(len(granted))
            self._m_time.set(stats.elapsed)
        return granted

    def _schedule_per_node(
        self, backlogs: List[float], weights: List[float]
    ) -> Tuple[int, ...]:
        """Weighted-lottery grant with per-contender key streams.

        Consumes one scalar ``Exp(1)`` draw from each contender's own
        "mac" stream (instead of one batched draw from the global
        scheduler stream), so a node's key sequence depends only on how
        often *it* contended — not on who else did.  The greedy pass is
        the scheduler's own, so grants match the global-stream mode's
        semantics exactly.
        """
        streams = self._node_streams
        assert streams is not None
        participants = self._participants
        floor = IdealMacScheduler.WEIGHT_FLOOR
        keyed: List[Tuple[float, int]] = []
        for position, backlog in enumerate(backlogs):
            if backlog <= 0.0:
                continue
            draw = float(streams.get("mac", participants[position]).exponential(1.0))
            keyed.append((draw / max(weights[position], floor), position))
        keyed.sort()
        return self._scheduler.grant_from_keyed(keyed)

    def _record_tx(self, node: int) -> None:
        if self._obs_enabled:
            self._m_tx.inc()
        if self._tracer is not None:
            self._tracer.record(
                self._stats.slots, self._stats.elapsed, "tx", node
            )

    def _deliver(self, granted: Tuple[int, ...]) -> None:
        """Resolve one slot's transmissions into per-receiver deliveries.

        The granted set is conflict-free under the scheduler's relation.
        What happens when two granted transmitters still cover a common
        receiver depends on the interference model:

        * ``"blanking"`` (default; Drift's model, Sec. 5: "a node cannot
          receive packets if it falls in the range of an interfering
          node") — the receiver hears nothing that slot.  Uncontrolled
          saturation therefore costs throughput quadratically, which is
          exactly the congestion penalty OMNC's rate control is designed
          to avoid.
        * ``"capture"`` — the receiver keeps exactly one of the arrivals
          (uniform choice): an idealized receiver that time-shares its
          airtime, the fluid reading of broadcast constraint (4).
        * ``"conflict_free"`` — cannot happen: the scheduler already
          serializes shared-receiver transmitters (two-hop conflicts),
          the Sec. 3.2 idealized broadcast MAC.
        """
        granted_flags = self._granted_flags
        for node in granted:
            granted_flags[node] = True
        blanking = self._interference == "blanking"
        streams = self._node_streams
        # Phase 1: fire transmissions and draw per-link receptions.
        offers: Dict[int, List[Tuple[int, object]]] = {}
        covered = self._covered_counts
        if blanking:
            for node in granted:
                for j in self._cov_list[node]:
                    covered[j] += 1
        for node in granted:
            runtime = self._runtimes[node]
            if isinstance(runtime, UnicastRuntime):
                sequence = runtime.peek_sequence()
                if sequence is None:
                    continue
                target = runtime.next_hop
                assert target is not None
                self._stats.transmissions[node] += 1
                self._record_tx(node)
                self._pending_unicast[node] = False
                if granted_flags[target]:
                    continue  # half-duplex: a transmitter cannot receive
                if blanking and covered[target] > 1:
                    if self._obs_enabled:
                        self._m_blanked.inc()
                    continue  # hidden-terminal collision at the receiver
                tx_rng = None if streams is None else streams.get("channel", node)
                if self._channel.unicast(node, target, rng=tx_rng):
                    offers.setdefault(target, []).append((node, sequence))
            else:
                packet = runtime.pop_transmission()
                if packet is None:
                    continue
                self._stats.transmissions[node] += 1
                self._record_tx(node)
                candidate_ids: List[int] = []
                candidate_probs: List[float] = []
                if blanking:
                    blanked = 0
                    for j, p in self._rx_pairs[node]:
                        if granted_flags[j]:
                            continue
                        if covered[j] > 1:
                            # Coverage is geometric: a receiver with no
                            # usable link from this transmitter is still
                            # blanked, matching the paper's model.
                            blanked += 1
                            continue
                        if p > 0.0:
                            candidate_ids.append(j)
                            candidate_probs.append(p)
                    if blanked and self._obs_enabled:
                        self._m_blanked.inc(blanked)
                else:
                    for j, p in self._rx_pairs[node]:
                        if p > 0.0 and not granted_flags[j]:
                            candidate_ids.append(j)
                            candidate_probs.append(p)
                tx_rng = None if streams is None else streams.get("channel", node)
                delivered = self._channel.broadcast_prefiltered(
                    candidate_ids, candidate_probs, rng=tx_rng
                )
                for j in delivered:
                    offers.setdefault(j, []).append((node, packet))
        # Phase 2: per-receiver resolution — at most one delivery per slot.
        for receiver, arrivals in offers.items():
            if len(arrivals) == 1:
                sender, payload = arrivals[0]
            else:
                capture_rng = (
                    self._rng if streams is None
                    else streams.get("capture", receiver)
                )
                index = int(capture_rng.integers(0, len(arrivals)))
                sender, payload = arrivals[index]
            self._stats.delivered_links.add((sender, receiver))
            if self._obs_enabled:
                self._m_deliveries.inc()
            if self._tracer is not None:
                self._tracer.record(
                    self._stats.slots,
                    self._stats.elapsed,
                    "delivery",
                    sender,
                    peer=receiver,
                )
            runtime = self._runtimes[receiver]
            if isinstance(self._runtimes[sender], UnicastRuntime):
                self._pending_unicast[sender] = True
                assert isinstance(runtime, UnicastRuntime)
                runtime.receive_sequence(payload)  # type: ignore[arg-type]
            elif not isinstance(runtime, UnicastRuntime):
                runtime.on_receive(payload, sender)  # type: ignore[arg-type]
        # Phase 3: settle unicast attempts (success = resolved delivery).
        for node in granted:
            runtime = self._runtimes[node]
            if isinstance(runtime, UnicastRuntime) and node in self._pending_unicast:
                runtime.complete_transmission(self._pending_unicast.pop(node))
        for node in granted:
            granted_flags[node] = False
        if blanking:
            for node in granted:
                for j in self._cov_list[node]:
                    covered[j] = 0

    def broadcast_generation_advance(self, generation_id: int) -> None:
        """Propagate an ACK/next-generation signal to every runtime.

        The paper sends the uncoded ACK over best-path routing; relays
        additionally expire on seeing newer-generation packets.  We model
        the ACK as fast and reliable (it is a single small packet on a
        high-quality path) and apply it at the slot boundary.
        """
        if self._tracer is not None:
            # The destination's decode event; detail = the new generation.
            self._tracer.record(
                self._stats.slots,
                self._stats.elapsed,
                "ack",
                -1,
                detail=generation_id,
            )
        for runtime in self._runtimes.values():
            runtime.advance_generation(generation_id)

    def broadcast_session_generation_advance(
        self, session_id: int, generation_id: int
    ) -> None:
        """Per-session ACK propagation for multi-session runs.

        Same modelling as :meth:`broadcast_generation_advance` (fast,
        reliable, applied at the slot boundary), but scoped to one
        session of the composite runtimes; other sessions' generation
        state is untouched.  ``peer`` carries the session id in the
        trace so digests distinguish concurrent ACKs.
        """
        if self._tracer is not None:
            self._tracer.record(
                self._stats.slots,
                self._stats.elapsed,
                "ack",
                -1,
                peer=session_id,
                detail=generation_id,
            )
        for runtime in self._runtimes.values():
            runtime.advance_session_generation(session_id, generation_id)

    def broadcast_session_arrival(self, session_id: int) -> None:
        """Switch a dormant session live on every hosting runtime."""
        if self._tracer is not None:
            self._tracer.record(
                self._stats.slots,
                self._stats.elapsed,
                "arrive",
                -1,
                peer=session_id,
            )
        for runtime in self._runtimes.values():
            runtime.activate_session(session_id)

    def broadcast_session_departure(self, session_id: int) -> None:
        """Remove a session from airtime contention on every runtime."""
        if self._tracer is not None:
            self._tracer.record(
                self._stats.slots,
                self._stats.elapsed,
                "depart",
                -1,
                peer=session_id,
            )
        for runtime in self._runtimes.values():
            runtime.deactivate_session(session_id)
