"""Node runtimes: the per-node data planes the emulator executes.

Three behaviours cover the four protocols (paper Sec. 5):

* :class:`CodedSourceRuntime` — streams fresh random linear combinations
  of the current generation.  Rate-driven for OMNC (the allocated b_S) or
  offered-load-driven for MORE/oldMORE (CBR until ACK).
* :class:`CodedRelayRuntime` — buffers innovative packets and re-encodes.
  Transmission pressure comes either from an allocated rate (OMNC) or
  from TX credits earned per packet heard from upstream (MORE/oldMORE).
* :class:`CodedDestinationRuntime` — progressive Gauss-Jordan decoding;
  fires a callback the instant a generation reaches full rank (the ACK).
* :class:`UnicastRuntime` — classic store-and-forward FIFO for ETX
  routing, with MAC-layer retransmissions handled by the engine.

All coded runtimes run in coefficient-only mode: coding vectors are
simulated exactly (innovation, rank, decodability are all real), payload
bytes are not materialized — they would be multiplied by the same
coefficients and carry no additional information for the metrics.  The
examples demonstrate full-payload operation end-to-end.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Sequence, Tuple, TypeAlias

import numpy as np

from repro.coding.decoder import ProgressiveDecoder
from repro.coding.encoder import RelayReEncoder, SourceEncoder
from repro.coding.generation import Generation
from repro.coding.packet import CodedPacket
from repro.emulator.plan import CodingParams

#: Anything a runtime can put on the air.  Subclasses narrow ``packet``
#: parameters to their own family's type; a session only ever wires
#: matching families together, so the narrowing is safe (marked with
#: ``type: ignore[override]`` at each override).
Packet: TypeAlias = "CodedPacket | FlowPacket | XorPacket"

DEFAULT_QUEUE_LIMIT = 500

# Distinguishes "parameter not supplied" from an explicit None (which is
# meaningful for UnicastRuntime.apply_plan's next_hop).
_UNSET = object()


class NodeRuntime:
    """Interface every emulated node implements."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id

    def apply_plan(self, **_params: object) -> None:
        """Hot-swap control-plane parameters without touching data state.

        The live control plane (see :mod:`repro.scenario`) calls this when
        a re-plan changes a node's allocation mid-run.  Buffers, decoder
        progress and generation counters persist — only rates / credits /
        routes move.  The base implementation ignores everything
        (destinations carry no plan state); rate-, credit- and path-driven
        runtimes override it with strict validation.
        """

    def on_slot(self, dt: float) -> None:
        """Advance local clocks/credits by one slot of ``dt`` seconds."""

    def backlog(self) -> float:
        """Transmission pressure for the scheduler (0 = nothing to send)."""
        return 0.0

    def demand_rate(self, dt: float) -> float:
        """Intended transmission rate in packets per slot of ``dt`` s.

        The ideal MAC uses this as the scheduling weight so that grants
        realize (or proportionally rescale) each node's intended rate.
        """
        return 0.0

    def pop_transmission(self) -> Packet | None:
        """Dequeue the packet to transmit this slot (None if drained)."""
        return None

    def on_receive(self, packet: Packet, sender: int) -> None:
        """Handle a delivered packet."""

    def on_receive_batch(self, packets: Sequence[Packet], sender: int) -> None:
        """Handle several packets delivered in one slot from ``sender``.

        Runtimes with a batch-capable data plane override this (the
        destination feeds its decoder's ``add_packets``); the default
        simply replays the single-packet path in order.
        """
        for packet in packets:
            self.on_receive(packet, sender)

    def queue_length(self) -> int:
        """Current broadcast-queue occupancy (the Fig. 3 metric)."""
        return 0

    def advance_generation(self, generation_id: int) -> None:
        """React to the session moving to ``generation_id`` (ACK heard)."""

    def advance_session_generation(
        self, session_id: int, generation_id: int
    ) -> None:
        """Per-session generation advance (multi-session composites).

        Single-session runtimes ignore it: they only ever host one
        session and take :meth:`advance_generation` instead.  The
        uniform no-op keeps the engine/shard dispatch free of
        ``isinstance`` checks.
        """

    def activate_session(self, session_id: int) -> None:
        """A session arrived (multi-session composites; no-op otherwise)."""

    def deactivate_session(self, session_id: int) -> None:
        """A session departed (multi-session composites; no-op otherwise)."""


class CodedSourceRuntime(NodeRuntime):
    """The session source: generate coded packets at a target rate."""

    def __init__(
        self,
        node_id: int,
        session_id: int,
        blocks: int,
        rate_bps: float,
        packet_bytes: int,
        rng: np.random.Generator,
        *,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        systematic: bool = False,
    ) -> None:
        super().__init__(node_id)
        if rate_bps < 0:
            raise ValueError(f"rate_bps must be >= 0, got {rate_bps}")
        if packet_bytes <= 0:
            raise ValueError(f"packet_bytes must be > 0, got {packet_bytes}")
        self._session_id = session_id
        self._blocks = blocks
        self._rate = rate_bps
        self._packet_bytes = packet_bytes
        self._rng = rng
        self._queue_limit = queue_limit
        self._systematic = systematic
        self._pending_coding: CodingParams | None = None
        self._credit = 0.0
        self._queue: Deque[CodedPacket] = deque()
        self._generation_id = 0
        self._encoder = self._make_encoder(0)
        self.packets_generated = 0
        self.packets_sent = 0
        self.packets_dropped = 0

    def _make_encoder(self, generation_id: int) -> SourceEncoder:
        # Coefficient-only generations: a 1-byte-per-block stand-in matrix
        # keeps the SourceEncoder interface while payloads stay virtual.
        matrix = np.zeros((self._blocks, 1), dtype=np.uint8)
        return SourceEncoder(
            self._session_id,
            Generation(generation_id, matrix),
            self._rng,
            payload=False,
            systematic=self._systematic,
        )

    def apply_plan(
        self,
        *,
        rate_bps: float | None = None,
        coding: CodingParams | None = None,
    ) -> None:
        """Hot-swap the allocated source rate; encoder and queue persist.

        A ``coding`` decision is *deferred*: it takes effect at the next
        generation boundary, so the in-flight generation keeps its size
        and every in-progress decode stays valid.
        """
        if rate_bps is not None:
            if rate_bps < 0:
                raise ValueError(f"rate_bps must be >= 0, got {rate_bps}")
            self._rate = rate_bps
        if coding is not None:
            self._pending_coding = coding

    def on_slot(self, dt: float) -> None:
        self._credit += self._rate * dt / self._packet_bytes
        make = int(self._credit)
        if make <= 0:
            return
        self._credit -= make
        # A saturated queue sheds load instead of banking credit, so the
        # source cannot burst-flush stale credit after an ACK.
        emit = min(make, self._queue_limit - len(self._queue))
        self.packets_dropped += make - emit
        if emit == 1:
            # Single-packet slots (the CBR common case) keep the exact
            # per-packet RNG stream of the scalar encoder path.
            self._queue.append(self._encoder.next_packet())
        elif emit > 1:
            self._queue.extend(self._encoder.next_packets(emit))
        if emit > 0:
            self.packets_generated += emit

    def backlog(self) -> float:
        return float(len(self._queue))

    def demand_rate(self, dt: float) -> float:
        return self._rate * dt / self._packet_bytes

    def pop_transmission(self) -> CodedPacket | None:
        if not self._queue:
            return None
        self.packets_sent += 1
        return self._queue.popleft()

    def queue_length(self) -> int:
        return len(self._queue)

    def advance_generation(self, generation_id: int) -> None:
        if generation_id <= self._generation_id:
            return
        self._generation_id = generation_id
        pending = self._pending_coding
        if pending is not None:
            self._blocks = pending.blocks
            self._systematic = pending.systematic
            self._pending_coding = None
        self._encoder = self._make_encoder(generation_id)
        self._queue.clear()
        # Credit persists: the source keeps its long-run rate across
        # generation boundaries.


class CodedRelayRuntime(NodeRuntime):
    """An intermediate forwarder: buffer innovative packets, re-encode.

    ``mode="rate"`` (OMNC): transmission credit accrues at the allocated
    broadcast rate.  ``mode="credit"`` (MORE/oldMORE): credit jumps by
    ``tx_credit`` whenever a packet arrives from an *upstream* node (one
    farther from the destination, per ``upstream`` set).
    """

    def __init__(
        self,
        node_id: int,
        session_id: int,
        blocks: int,
        packet_bytes: int,
        rng: np.random.Generator,
        *,
        mode: str,
        rate_bps: float = 0.0,
        tx_credit: float = 0.0,
        upstream: Tuple[int, ...] = (),
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
    ) -> None:
        super().__init__(node_id)
        if mode not in ("rate", "credit"):
            raise ValueError(f"unknown relay mode {mode!r}")
        if rate_bps < 0 or tx_credit < 0:
            raise ValueError("rate_bps and tx_credit must be >= 0")
        self._session_id = session_id
        self._blocks = blocks
        self._packet_bytes = packet_bytes
        self._rng = rng
        self._mode = mode
        self._rate = rate_bps
        self._tx_credit = tx_credit
        self._upstream = frozenset(upstream)
        self._queue_limit = queue_limit
        self._buffer = RelayReEncoder(session_id, blocks, rng)
        self._pending_coding: CodingParams | None = None
        self._credit = 0.0
        self._queue: Deque[CodedPacket] = deque()
        self._demand_ewma = 0.2
        self._enqueued_this_slot = 0.0
        self.packets_heard = 0
        self.packets_accepted = 0
        self.packets_generated = 0
        self.packets_sent = 0
        self.packets_dropped = 0

    # Rate credit banked while the buffer is empty is bounded so that a
    # late-starting relay cannot burst a flood of near-identical packets
    # from a low-rank buffer the moment content arrives.
    _CREDIT_CAP = 3.0

    # EWMA constant for the credit-mode demand estimate (packets/slot).
    _DEMAND_SMOOTHING = 0.02

    @property
    def buffered(self) -> int:
        """Innovative packets currently buffered."""
        return self._buffer.buffered

    def apply_plan(
        self,
        *,
        mode: str | None = None,
        rate_bps: float | None = None,
        tx_credit: float | None = None,
        upstream: Tuple[int, ...] | None = None,
        coding: CodingParams | None = None,
    ) -> None:
        """Hot-swap rate/credit parameters; the coding buffer persists.

        A re-plan may move the allocated rate (OMNC), the per-reception
        credit and upstream set (MORE/oldMORE), or even the drive mode.
        Buffered innovative packets, the transmit queue and banked credit
        all survive — the whole point of a live swap is not to throw away
        decoder-feeding state the session already paid airtime for.  A
        ``coding`` decision is deferred to the next generation boundary,
        where the buffer is flushed anyway.
        """
        if mode is not None:
            if mode not in ("rate", "credit"):
                raise ValueError(f"unknown relay mode {mode!r}")
            self._mode = mode
        if rate_bps is not None:
            if rate_bps < 0:
                raise ValueError(f"rate_bps must be >= 0, got {rate_bps}")
            self._rate = rate_bps
        if tx_credit is not None:
            if tx_credit < 0:
                raise ValueError(f"tx_credit must be >= 0, got {tx_credit}")
            self._tx_credit = tx_credit
        if upstream is not None:
            self._upstream = frozenset(upstream)
        if coding is not None:
            self._pending_coding = coding

    def on_slot(self, dt: float) -> None:
        if self._mode == "rate":
            self._credit = min(
                self._credit + self._rate * dt / self._packet_bytes,
                self._CREDIT_CAP,
            )
        self._drain_credit()
        if self._mode == "credit":
            # Demand estimate for the scheduler: smoothed enqueue rate.
            self._demand_ewma += self._DEMAND_SMOOTHING * (
                self._enqueued_this_slot - self._demand_ewma
            )
            self._enqueued_this_slot = 0.0

    def _drain_credit(self) -> None:
        if self._credit < 1.0 or self._buffer.buffered == 0:
            return
        make = int(self._credit)
        self._credit -= make
        emit = min(make, self._queue_limit - len(self._queue))
        self.packets_dropped += make - emit
        if emit == 1:
            # Single-packet drains keep the scalar re-encoder RNG stream.
            self._queue.append(self._buffer.next_packet())
        elif emit > 1:
            self._queue.extend(self._buffer.next_packets(emit))
        if emit > 0:
            self.packets_generated += emit
            self._enqueued_this_slot += float(emit)

    def backlog(self) -> float:
        return float(len(self._queue))

    def demand_rate(self, dt: float) -> float:
        if self._mode == "rate":
            return self._rate * dt / self._packet_bytes
        return self._demand_ewma

    def pop_transmission(self) -> CodedPacket | None:
        if not self._queue:
            return None
        self.packets_sent += 1
        return self._queue.popleft()

    def on_receive(self, packet: CodedPacket, sender: int) -> None:
        self.packets_heard += 1
        if packet.generation_id > self._buffer.generation_id:
            # A newer generation implicitly expires the old one (Sec. 4).
            self.advance_generation(packet.generation_id)
        accepted = self._buffer.accept(packet)
        if accepted:
            self.packets_accepted += 1
        if self._mode == "credit" and sender in self._upstream:
            # MORE's counter increments per packet *heard* from upstream,
            # innovative or not — the heuristic reasons about receptions.
            self._credit += self._tx_credit
            self._drain_credit()

    def queue_length(self) -> int:
        return len(self._queue)

    def advance_generation(self, generation_id: int) -> None:
        if generation_id <= self._buffer.generation_id:
            return
        pending = self._pending_coding
        if pending is not None:
            self._pending_coding = None
            if pending.blocks != self._blocks:
                # The buffer's vector width is the generation size, so a
                # size switch rebuilds it (empty, at the new generation).
                # Stale-sized packets still in flight are dropped by the
                # re-encoder's accept(), not raised.
                self._blocks = pending.blocks
                self._buffer = RelayReEncoder(
                    self._session_id,
                    self._blocks,
                    self._rng,
                    generation_id=generation_id,
                )
                self._queue.clear()
                if self._mode == "credit":
                    self._credit = 0.0
                return
        self._buffer.advance(generation_id)
        self._queue.clear()
        if self._mode == "credit":
            self._credit = 0.0


class CodedDestinationRuntime(NodeRuntime):
    """The destination: progressive decoding plus the decoded-ACK signal."""

    def __init__(
        self,
        node_id: int,
        session_id: int,
        blocks: int,
        on_decoded: Callable[[int], None],
    ) -> None:
        super().__init__(node_id)
        self._session_id = session_id
        self._blocks = blocks
        self._on_decoded = on_decoded
        self._generation_id = 0
        self._decoder = ProgressiveDecoder(blocks)
        self._pending_coding: CodingParams | None = None
        self.packets_heard = 0
        self.innovative_received = 0
        self.generations_decoded = 0
        self.blocks_decoded = 0

    @property
    def rank(self) -> int:
        """Current decoder rank for the active generation."""
        return self._decoder.rank

    def apply_plan(  # type: ignore[override]
        self, *, coding: CodingParams | None = None, **_params: object
    ) -> None:
        """Destinations carry no rate/credit state but do track the
        generation size: a ``coding`` decision re-sizes the decoder at
        the next boundary.  Everything else is ignored, as in the base."""
        if coding is not None:
            self._pending_coding = coding

    def on_receive(  # type: ignore[override]
        self, packet: CodedPacket, sender: int
    ) -> None:
        if packet.session_id != self._session_id:
            return
        if packet.generation_id != self._generation_id:
            return  # stale or early packet for another generation
        if packet.blocks != self._blocks:
            return  # stale-sized packet across an adaptive-n boundary
        self.packets_heard += 1
        if self._decoder.is_complete:
            return
        if self._decoder.add_packet(packet):
            self.innovative_received += 1
            if self._decoder.is_complete:
                self.generations_decoded += 1
                self.blocks_decoded += self._blocks
                # The uncoded ACK travels back to the source; the session
                # driver models its (fast, reliable) best-path delivery.
                self._on_decoded(self._generation_id)

    def on_receive_batch(  # type: ignore[override]
        self, packets: Sequence[CodedPacket], sender: int
    ) -> None:
        """Feed a whole slot's deliveries through one batch elimination."""
        accepted = [
            packet
            for packet in packets
            if packet.session_id == self._session_id
            and packet.generation_id == self._generation_id
            and packet.blocks == self._blocks
        ]
        if not accepted:
            return
        self.packets_heard += len(accepted)
        if self._decoder.is_complete:
            return
        verdicts = self._decoder.add_packets(accepted)
        self.innovative_received += int(np.count_nonzero(verdicts))
        if self._decoder.is_complete:
            self.generations_decoded += 1
            self.blocks_decoded += self._blocks
            self._on_decoded(self._generation_id)

    def advance_generation(self, generation_id: int) -> None:
        if generation_id <= self._generation_id:
            return
        self._generation_id = generation_id
        pending = self._pending_coding
        if pending is not None:
            self._blocks = pending.blocks
            self._pending_coding = None
        self._decoder = ProgressiveDecoder(self._blocks)


class FlowPacket:
    """A coded packet under information-flow fidelity.

    The paper's model treats packet streams through distinct relays as
    independent with high probability (Sec. 3.2) and counts information
    in units of innovative packets: "a dependent packet does not
    contribute to the information flow and is not counted in".  Under
    flow fidelity a packet carries its sender's information level; the
    receiver gains one unit iff the sender knew more than it does —
    the fluid limit of random linear coding under the paper's
    independence assumption.  Exact GF(2^8) fidelity (the default
    runtimes above) is kept for the ablation that quantifies what this
    assumption is worth.
    """

    __slots__ = ("session_id", "generation_id", "content")

    def __init__(self, session_id: int, generation_id: int, content: float) -> None:
        self.session_id = session_id
        self.generation_id = generation_id
        self.content = content

    def __repr__(self) -> str:
        return (
            f"FlowPacket(session={self.session_id}, gen={self.generation_id}, "
            f"content={self.content:.2f})"
        )


class FlowSourceRuntime(NodeRuntime):
    """Flow-fidelity source: every packet carries full knowledge."""

    def __init__(
        self,
        node_id: int,
        session_id: int,
        blocks: int,
        rate_bps: float,
        packet_bytes: int,
        *,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
    ) -> None:
        super().__init__(node_id)
        if rate_bps < 0:
            raise ValueError(f"rate_bps must be >= 0, got {rate_bps}")
        if packet_bytes <= 0:
            raise ValueError(f"packet_bytes must be > 0, got {packet_bytes}")
        self._session_id = session_id
        self._blocks = blocks
        self._rate = rate_bps
        self._packet_bytes = packet_bytes
        self._queue_limit = queue_limit
        self._pending_coding: CodingParams | None = None
        self._credit = 0.0
        self._queue: Deque[FlowPacket] = deque()
        self._generation_id = 0
        self.packets_generated = 0
        self.packets_sent = 0
        self.packets_dropped = 0

    def apply_plan(
        self,
        *,
        rate_bps: float | None = None,
        coding: CodingParams | None = None,
    ) -> None:
        """Hot-swap the allocated source rate; queue and credit persist.

        A ``coding`` decision takes effect at the next generation
        boundary (systematic mode has no flow-fidelity analogue — only
        the generation size matters here).
        """
        if rate_bps is not None:
            if rate_bps < 0:
                raise ValueError(f"rate_bps must be >= 0, got {rate_bps}")
            self._rate = rate_bps
        if coding is not None:
            self._pending_coding = coding

    def on_slot(self, dt: float) -> None:
        self._credit += self._rate * dt / self._packet_bytes
        while self._credit >= 1.0:
            self._credit -= 1.0
            if len(self._queue) >= self._queue_limit:
                self.packets_dropped += 1
                continue
            self._queue.append(
                FlowPacket(self._session_id, self._generation_id, float(self._blocks))
            )
            self.packets_generated += 1

    def backlog(self) -> float:
        return float(len(self._queue))

    def demand_rate(self, dt: float) -> float:
        return self._rate * dt / self._packet_bytes

    def pop_transmission(self) -> FlowPacket | None:
        if not self._queue:
            return None
        self.packets_sent += 1
        return self._queue.popleft()

    def queue_length(self) -> int:
        return len(self._queue)

    def advance_generation(self, generation_id: int) -> None:
        if generation_id <= self._generation_id:
            return
        self._generation_id = generation_id
        pending = self._pending_coding
        if pending is not None:
            self._blocks = pending.blocks
            self._pending_coding = None
        self._queue.clear()


class FlowRelayRuntime(NodeRuntime):
    """Flow-fidelity relay: information level instead of a subspace.

    The relay's state is a scalar ``information`` level in [0, blocks];
    a delivery from a sender whose packet carries more content raises it
    by one unit.  Outgoing packets carry the relay's current level.
    Transmission pressure follows the same two modes as the exact relay
    (allocated rate, or MORE credits).
    """

    _CREDIT_CAP = 3.0
    _DEMAND_SMOOTHING = 0.02

    def __init__(
        self,
        node_id: int,
        session_id: int,
        blocks: int,
        packet_bytes: int,
        *,
        mode: str,
        rate_bps: float = 0.0,
        tx_credit: float = 0.0,
        upstream: Tuple[int, ...] = (),
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
    ) -> None:
        super().__init__(node_id)
        if mode not in ("rate", "credit"):
            raise ValueError(f"unknown relay mode {mode!r}")
        if rate_bps < 0 or tx_credit < 0:
            raise ValueError("rate_bps and tx_credit must be >= 0")
        self._session_id = session_id
        self._blocks = blocks
        self._packet_bytes = packet_bytes
        self._mode = mode
        self._rate = rate_bps
        self._tx_credit = tx_credit
        self._upstream = frozenset(upstream)
        self._queue_limit = queue_limit
        self._pending_coding: CodingParams | None = None
        self._generation_id = 0
        self.information = 0.0
        self._credit = 0.0
        self._queue: Deque[FlowPacket] = deque()
        self._demand_ewma = 0.2
        self._enqueued_this_slot = 0.0
        self.packets_heard = 0
        self.packets_accepted = 0
        self.packets_generated = 0
        self.packets_sent = 0
        self.packets_dropped = 0

    @property
    def buffered(self) -> int:
        """Information units held (the flow analogue of buffer rank)."""
        return int(self.information)

    def apply_plan(
        self,
        *,
        mode: str | None = None,
        rate_bps: float | None = None,
        tx_credit: float | None = None,
        upstream: Tuple[int, ...] | None = None,
        coding: CodingParams | None = None,
    ) -> None:
        """Hot-swap rate/credit parameters; the information level persists.

        A ``coding`` decision takes effect at the next generation
        boundary, where the information level resets anyway.
        """
        if mode is not None:
            if mode not in ("rate", "credit"):
                raise ValueError(f"unknown relay mode {mode!r}")
            self._mode = mode
        if rate_bps is not None:
            if rate_bps < 0:
                raise ValueError(f"rate_bps must be >= 0, got {rate_bps}")
            self._rate = rate_bps
        if tx_credit is not None:
            if tx_credit < 0:
                raise ValueError(f"tx_credit must be >= 0, got {tx_credit}")
            self._tx_credit = tx_credit
        if upstream is not None:
            self._upstream = frozenset(upstream)
        if coding is not None:
            self._pending_coding = coding

    def on_slot(self, dt: float) -> None:
        if self._mode == "rate":
            self._credit = min(
                self._credit + self._rate * dt / self._packet_bytes,
                self._CREDIT_CAP,
            )
        self._drain_credit()
        if self._mode == "credit":
            self._demand_ewma += self._DEMAND_SMOOTHING * (
                self._enqueued_this_slot - self._demand_ewma
            )
            self._enqueued_this_slot = 0.0

    def _drain_credit(self) -> None:
        while self._credit >= 1.0 and self.information > 0.0:
            self._credit -= 1.0
            if len(self._queue) >= self._queue_limit:
                self.packets_dropped += 1
                continue
            self._queue.append(
                FlowPacket(self._session_id, self._generation_id, self.information)
            )
            self.packets_generated += 1
            self._enqueued_this_slot += 1.0

    def backlog(self) -> float:
        return float(len(self._queue))

    def demand_rate(self, dt: float) -> float:
        if self._mode == "rate":
            return self._rate * dt / self._packet_bytes
        return self._demand_ewma

    def pop_transmission(self) -> FlowPacket | None:
        if not self._queue:
            return None
        self.packets_sent += 1
        return self._queue.popleft()

    def on_receive(  # type: ignore[override]
        self, packet: FlowPacket, sender: int
    ) -> None:
        self.packets_heard += 1
        if packet.generation_id > self._generation_id:
            self.advance_generation(packet.generation_id)
        if packet.generation_id == self._generation_id:
            if packet.content > self.information and self.information < self._blocks:
                self.information = min(float(self._blocks), self.information + 1.0)
                self.packets_accepted += 1
        if self._mode == "credit" and sender in self._upstream:
            self._credit += self._tx_credit
            self._drain_credit()

    def queue_length(self) -> int:
        return len(self._queue)

    def advance_generation(self, generation_id: int) -> None:
        if generation_id <= self._generation_id:
            return
        self._generation_id = generation_id
        pending = self._pending_coding
        if pending is not None:
            self._blocks = pending.blocks
            self._pending_coding = None
        self.information = 0.0
        self._queue.clear()
        if self._mode == "credit":
            self._credit = 0.0


class FlowDestinationRuntime(NodeRuntime):
    """Flow-fidelity destination: ACKs once ``blocks`` units arrive."""

    def __init__(
        self,
        node_id: int,
        session_id: int,
        blocks: int,
        on_decoded: Callable[[int], None],
    ) -> None:
        super().__init__(node_id)
        self._session_id = session_id
        self._blocks = blocks
        self._on_decoded = on_decoded
        self._generation_id = 0
        self.information = 0.0
        self._pending_coding: CodingParams | None = None
        self.packets_heard = 0
        self.innovative_received = 0
        self.generations_decoded = 0
        self.blocks_decoded = 0

    @property
    def rank(self) -> int:
        """Information units gathered for the active generation."""
        return int(self.information)

    def apply_plan(  # type: ignore[override]
        self, *, coding: "CodingParams | None" = None, **_params: object
    ) -> None:
        """Track ``coding`` decisions (decode target re-sizes at the next
        boundary); every other parameter is ignored, as in the base."""
        if coding is not None:
            self._pending_coding = coding

    def on_receive(  # type: ignore[override]
        self, packet: FlowPacket, sender: int
    ) -> None:
        if packet.session_id != self._session_id:
            return
        if packet.generation_id != self._generation_id:
            return
        self.packets_heard += 1
        if self.information >= self._blocks:
            return
        if packet.content > self.information:
            self.information += 1.0
            self.innovative_received += 1
            if self.information >= self._blocks:
                self.generations_decoded += 1
                self.blocks_decoded += self._blocks
                self._on_decoded(self._generation_id)

    def advance_generation(self, generation_id: int) -> None:
        if generation_id <= self._generation_id:
            return
        self._generation_id = generation_id
        pending = self._pending_coding
        if pending is not None:
            self._blocks = pending.blocks
            self._pending_coding = None
        self.information = 0.0


class UnicastRuntime(NodeRuntime):
    """Store-and-forward FIFO node for ETX best-path routing.

    The source generates sequence-numbered packets at the offered load;
    relays forward toward ``next_hop``; the engine retries failed
    transmissions (MAC retransmissions), so the head packet stays queued
    until it crosses.
    """

    def __init__(
        self,
        node_id: int,
        next_hop: int | None,
        *,
        rate_bps: float = 0.0,
        packet_bytes: int = 1,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        on_delivered: Callable[[int], None] | None = None,
        demand_hint_bps: float = 0.0,
    ) -> None:
        super().__init__(node_id)
        if rate_bps < 0:
            raise ValueError(f"rate_bps must be >= 0, got {rate_bps}")
        if demand_hint_bps < 0:
            raise ValueError(f"demand_hint_bps must be >= 0, got {demand_hint_bps}")
        self._next_hop = next_hop
        self._rate = rate_bps
        self._packet_bytes = packet_bytes
        self._queue_limit = queue_limit
        self._on_delivered = on_delivered
        # Airtime the node needs to sustain the offered load across its
        # lossy next hop (arrival rate x expected retransmissions); the
        # session builder computes it from the path and link qualities.
        self._demand_hint = demand_hint_bps
        self._credit = 0.0
        self._queue: Deque[int] = deque()  # sequence numbers
        self._next_seq = 0
        self.packets_generated = 0
        self.packets_sent = 0
        self.packets_delivered = 0
        self.packets_dropped = 0

    @property
    def next_hop(self) -> int | None:
        """Downstream node, or None at the destination."""
        return self._next_hop

    def apply_plan(
        self,
        *,
        next_hop: object = _UNSET,
        rate_bps: float | None = None,
        demand_hint_bps: float | None = None,
    ) -> None:
        """Hot-swap the route/rate; queued packets survive the re-route.

        ``next_hop`` uses a sentinel default because ``None`` is a
        meaningful value (the node becomes/stays the sink).
        """
        if next_hop is not _UNSET:
            if next_hop is not None and not isinstance(next_hop, int):
                raise ValueError(f"next_hop must be an int or None, got {next_hop!r}")
            self._next_hop = next_hop
        if rate_bps is not None:
            if rate_bps < 0:
                raise ValueError(f"rate_bps must be >= 0, got {rate_bps}")
            self._rate = rate_bps
        if demand_hint_bps is not None:
            if demand_hint_bps < 0:
                raise ValueError(
                    f"demand_hint_bps must be >= 0, got {demand_hint_bps}"
                )
            self._demand_hint = demand_hint_bps

    def on_slot(self, dt: float) -> None:
        if self._rate <= 0:
            return
        self._credit += self._rate * dt / self._packet_bytes
        while self._credit >= 1.0:
            self._credit -= 1.0
            if len(self._queue) >= self._queue_limit:
                self.packets_dropped += 1
                continue
            self._queue.append(self._next_seq)
            self._next_seq += 1
            self.packets_generated += 1

    def backlog(self) -> float:
        if self._next_hop is None:
            return 0.0
        return float(len(self._queue))

    def demand_rate(self, dt: float) -> float:
        return self._demand_hint * dt / self._packet_bytes

    def peek_sequence(self) -> int | None:
        """Head-of-line packet (stays queued until the hop succeeds)."""
        if not self._queue or self._next_hop is None:
            return None
        return self._queue[0]

    def complete_transmission(self, success: bool) -> None:
        """Engine callback after a unicast attempt on the head packet."""
        if not self._queue:
            raise RuntimeError("no in-flight packet to complete")
        self.packets_sent += 1
        if success:
            self._queue.popleft()

    def receive_sequence(self, sequence: int) -> None:
        """A packet arrived from upstream."""
        if self._next_hop is None:
            self.packets_delivered += 1
            if self._on_delivered is not None:
                self._on_delivered(sequence)
            return
        if len(self._queue) >= self._queue_limit:
            self.packets_dropped += 1
            return
        self._queue.append(sequence)

    def queue_length(self) -> int:
        return len(self._queue)


class XorPacket:
    """An inter-session XOR of packets from distinct sessions (I²NC/COPE).

    A relay holding queued packets for two sessions can serve both in
    one airtime slot by XORing them together.  A receiver peels out the
    component of session ``s`` iff it participates in ``s`` and natively
    knows every *other* component — in this emulator, iff it hosts the
    source runtime of each other component's session (a source knows
    every packet it ever injected).  Components ride along unmodified;
    the XOR is structural, so intra-session coding semantics (innovation,
    rank, flow content) are untouched.
    """

    __slots__ = ("components",)

    #: Sentinel: an XOR packet belongs to no single session.
    session_id = -1

    def __init__(self, components: Sequence[CodedPacket | FlowPacket]) -> None:
        ordered = tuple(sorted(components, key=lambda p: p.session_id))
        if len(ordered) < 2:
            raise ValueError("an XOR packet needs at least two components")
        sids = [packet.session_id for packet in ordered]
        if len(set(sids)) != len(sids):
            raise ValueError("XOR components must come from distinct sessions")
        self.components = ordered

    @property
    def session_ids(self) -> Tuple[int, ...]:
        """Component session ids, ascending."""
        return tuple(packet.session_id for packet in self.components)

    def __repr__(self) -> str:
        return f"XorPacket(sessions={self.session_ids})"


class MultiSessionNodeRuntime(NodeRuntime):
    """Composite hosting one sub-runtime per session at a shared node.

    The engine still sees exactly one runtime per node; the composite
    fans its callbacks out to per-session sub-runtimes and arbitrates
    the node's single radio between them:

    * **scheduling** — ``backlog``/``demand_rate`` sum over *active*
      sessions, so the shared MAC sees the node's total pressure;
    * **transmission** — ``pop_transmission`` round-robins over active
      sessions with queued packets (deterministic: ascending session
      order with a cursor that resets on churn);
    * **reception** — packets route to their session's sub-runtime;
      packets for unhosted or dormant sessions drop on the floor, and
      :class:`XorPacket` components peel per the COPE rule;
    * **churn** — scenario-arriving sessions are created up front but
      *dormant*, switched live by ``activate_session`` /
      ``deactivate_session``.  Participants therefore never change
      mid-run, which keeps conflict structures static and the sharded
      loop bit-identical to the serial one.

    Per-session stats (transmissions, queue-time integral, delivered
    links) accrue at the composite and survive departure.  The queue
    integral samples at slot *start* (inside ``on_slot``, after the
    sub-runtime's own tick), unlike the engine's end-of-slot global
    sample — a deterministic convention shared by both execution paths.
    """

    def __init__(self, node_id: int) -> None:
        super().__init__(node_id)
        self._subs: Dict[int, NodeRuntime] = {}
        self._dormant: Dict[int, NodeRuntime] = {}
        self._order: List[int] = []
        self._cursor = 0
        self._session_transmissions: Dict[int, int] = {}
        self._session_queue_time: Dict[int, float] = {}
        self._session_delivered: Dict[int, set[Tuple[int, int]]] = {}
        #: Airtime slots that carried an inter-session XOR (subclasses).
        self.xor_transmissions = 0

    def add_session(
        self, session_id: int, runtime: NodeRuntime, *, active: bool = True
    ) -> None:
        """Attach ``runtime`` as this node's data plane for one session."""
        if session_id in self._subs or session_id in self._dormant:
            raise ValueError(
                f"session {session_id} already hosted at node {self.node_id}"
            )
        if runtime.node_id != self.node_id:
            raise ValueError(
                f"sub-runtime for node {runtime.node_id} cannot live at "
                f"node {self.node_id}"
            )
        if active:
            self._subs[session_id] = runtime
            self._rebuild_order()
        else:
            self._dormant[session_id] = runtime
        self._session_transmissions.setdefault(session_id, 0)
        self._session_queue_time.setdefault(session_id, 0.0)
        self._session_delivered.setdefault(session_id, set())

    def _rebuild_order(self) -> None:
        self._order = sorted(self._subs)
        self._cursor = 0

    def hosted_sessions(self) -> Tuple[int, ...]:
        """All sessions with a sub-runtime here (active and dormant)."""
        return tuple(sorted([*self._subs, *self._dormant]))

    def active_sessions(self) -> Tuple[int, ...]:
        """Sessions currently contending for this node's airtime."""
        return tuple(self._order)

    def session_runtime(self, session_id: int) -> NodeRuntime:
        """The sub-runtime for ``session_id`` (KeyError if unhosted)."""
        runtime = self._subs.get(session_id) or self._dormant.get(session_id)
        if runtime is None:
            raise KeyError(session_id)
        return runtime

    def activate_session(self, session_id: int) -> None:
        runtime = self._dormant.pop(session_id, None)
        if runtime is None:
            return
        self._subs[session_id] = runtime
        self._rebuild_order()

    def deactivate_session(self, session_id: int) -> None:
        runtime = self._subs.pop(session_id, None)
        if runtime is None:
            return
        self._dormant[session_id] = runtime
        self._rebuild_order()

    def on_slot(self, dt: float) -> None:
        for sid in self._order:
            sub = self._subs[sid]
            sub.on_slot(dt)
            self._session_queue_time[sid] += sub.queue_length() * dt

    def backlog(self) -> float:
        return sum(self._subs[sid].backlog() for sid in self._order)

    def demand_rate(self, dt: float) -> float:
        return sum(self._subs[sid].demand_rate(dt) for sid in self._order)

    def queue_length(self) -> int:
        return sum(self._subs[sid].queue_length() for sid in self._order)

    def pop_transmission(self) -> Packet | None:
        count = len(self._order)
        for offset in range(count):
            index = (self._cursor + offset) % count
            sid = self._order[index]
            packet = self._subs[sid].pop_transmission()
            if packet is not None:
                self._cursor = (index + 1) % count
                self._session_transmissions[sid] += 1
                return packet
        return None

    def on_receive(self, packet: Packet, sender: int) -> None:
        if isinstance(packet, XorPacket):
            self._receive_xor(packet, sender)
            return
        sub = self._subs.get(packet.session_id)
        if sub is None:
            return  # unhosted or dormant session: not ours to hear
        sub.on_receive(packet, sender)
        self._session_delivered[packet.session_id].add((sender, self.node_id))

    def _receive_xor(self, packet: XorPacket, sender: int) -> None:
        for component in packet.components:
            sid = component.session_id
            sub = self._subs.get(sid)
            if sub is None:
                continue
            if not self._knows_other_components(packet, sid):
                continue
            sub.on_receive(component, sender)
            self._session_delivered[sid].add((sender, self.node_id))

    def _knows_other_components(
        self, packet: XorPacket, session_id: int
    ) -> bool:
        # COPE's decodability rule, specialized: the node natively knows
        # a component iff it hosts that session's source runtime.
        for component in packet.components:
            other = component.session_id
            if other == session_id:
                continue
            runtime = self._subs.get(other) or self._dormant.get(other)
            if not isinstance(
                runtime, (CodedSourceRuntime, FlowSourceRuntime)
            ):
                return False
        return True

    def advance_generation(self, generation_id: int) -> None:
        raise RuntimeError(
            "multi-session composites take advance_session_generation, not "
            "the single-session advance_generation broadcast"
        )

    def advance_session_generation(
        self, session_id: int, generation_id: int
    ) -> None:
        runtime = self._subs.get(session_id) or self._dormant.get(session_id)
        if runtime is not None:
            runtime.advance_generation(generation_id)

    def session_stats(self) -> Dict[int, Dict[str, object]]:
        """Per-session composite stats, picklable for shard harvesting."""
        stats: Dict[int, Dict[str, object]] = {}
        for sid in sorted(self._session_transmissions):
            stats[sid] = {
                "transmissions": self._session_transmissions[sid],
                "queue_time": self._session_queue_time[sid],
                "delivered_links": sorted(self._session_delivered[sid]),
            }
        return stats


class InterSessionXorRelay(MultiSessionNodeRuntime):
    """A composite relay that codes *across* sessions (COPE/I²NC style).

    ``pairs`` lists session pairs this relay may XOR (the control plane
    — :func:`repro.protocols.intersession.plan_intersession_pairs` —
    only nominates pairs whose next hops can decode).  On each granted
    slot the relay first tries its pairs in canonical order: if both
    sessions of a pair are active with queued packets, it pops one from
    each and sends a single :class:`XorPacket` — two packets of
    progress for one slot of airtime.  Otherwise it falls back to the
    plain round-robin (intra-session RLNC only).
    """

    def __init__(
        self, node_id: int, pairs: Sequence[Tuple[int, int]]
    ) -> None:
        super().__init__(node_id)
        normalized: Dict[Tuple[int, int], None] = {}
        for a, b in pairs:
            if a == b:
                raise ValueError(f"cannot XOR session {a} with itself")
            normalized[(min(a, b), max(a, b))] = None
        self._pairs: Tuple[Tuple[int, int], ...] = tuple(sorted(normalized))

    @property
    def pairs(self) -> Tuple[Tuple[int, int], ...]:
        """Session pairs this relay may XOR, canonically ordered."""
        return self._pairs

    def pop_transmission(self) -> Packet | None:
        for a, b in self._pairs:
            sub_a = self._subs.get(a)
            sub_b = self._subs.get(b)
            if sub_a is None or sub_b is None:
                continue  # one side dormant or departed
            if sub_a.queue_length() == 0 or sub_b.queue_length() == 0:
                continue
            packet_a = sub_a.pop_transmission()
            packet_b = sub_b.pop_transmission()
            assert packet_a is not None and packet_b is not None
            assert not isinstance(packet_a, XorPacket)
            assert not isinstance(packet_b, XorPacket)
            self._session_transmissions[a] += 1
            self._session_transmissions[b] += 1
            self.xor_transmissions += 1
            return XorPacket((packet_a, packet_b))
        return super().pop_transmission()
