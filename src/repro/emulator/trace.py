"""Event tracing for emulation runs.

A :class:`SessionTracer` records per-slot events — grants, transmissions,
deliveries, generation ACKs — into a bounded in-memory log that can be
queried, summarized, or exported as JSON lines.  Tracing is opt-in (the
engine takes an optional tracer) so the hot path stays allocation-free
when it is off.

Typical use::

    tracer = SessionTracer(capacity=100_000)
    engine = EmulationEngine(..., tracer=tracer)
    engine.run(...)
    tracer.summary()            # event counts by kind
    tracer.events(kind="ack")   # iterate selected events
    tracer.to_jsonl(path)       # export for offline analysis
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, Tuple

EVENT_KINDS = ("grant", "tx", "delivery", "ack", "replan", "arrive", "depart")


@dataclass(frozen=True)
class TraceEvent:
    """One emulation event.

    Attributes:
        slot: slot index when the event occurred.
        time: emulated seconds.
        kind: one of :data:`EVENT_KINDS`.
        node: primary node (transmitter, or destination for acks; -1 for
            session-wide events like acks and replans).
        peer: secondary node (receiver for deliveries), or None.
        detail: free-form small payload (e.g. generation id for acks).
    """

    slot: int
    time: float
    kind: str
    node: int
    peer: int | None = None
    detail: int | None = None

    def as_dict(self) -> dict[str, int | float | str]:
        """JSON-compatible representation."""
        record = {
            "slot": self.slot,
            "time": round(self.time, 6),
            "kind": self.kind,
            "node": self.node,
        }
        if self.peer is not None:
            record["peer"] = self.peer
        if self.detail is not None:
            record["detail"] = self.detail
        return record


class SessionTracer:
    """Bounded event log for one emulation run.

    When ``capacity`` is exceeded the *oldest* events are dropped and
    :attr:`dropped` counts them — traces of long campaigns stay bounded
    while the most recent window (usually what you debug) survives.
    """

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self._capacity = capacity
        self._events: list[TraceEvent] = []
        self._start = 0  # logical index of the first retained event
        self.dropped = 0

    def record(
        self,
        slot: int,
        time: float,
        kind: str,
        node: int,
        peer: int | None = None,
        detail: int | None = None,
    ) -> None:
        """Append one event."""
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        self._events.append(TraceEvent(slot, time, kind, node, peer, detail))
        if len(self._events) > self._capacity:
            overflow = len(self._events) - self._capacity
            del self._events[:overflow]
            self.dropped += overflow

    def __len__(self) -> int:
        return len(self._events)

    def events(
        self,
        *,
        kind: str | None = None,
        node: int | None = None,
    ) -> Iterator[TraceEvent]:
        """Iterate retained events, optionally filtered."""
        for event in self._events:
            if kind is not None and event.kind != kind:
                continue
            if node is not None and event.node != node:
                continue
            yield event

    def summary(self) -> Dict[str, int]:
        """Event counts by kind (retained events only)."""
        counts = Counter(event.kind for event in self._events)
        return {kind: counts.get(kind, 0) for kind in EVENT_KINDS}

    def per_node_transmissions(self) -> Dict[int, int]:
        """Transmission counts per node from the retained window."""
        counts: Counter[int] = Counter()
        for event in self.events(kind="tx"):
            counts[event.node] += 1
        return dict(counts)

    def delivery_ratio(self) -> float:
        """Deliveries per transmission in the retained window."""
        summary = self.summary()
        if summary["tx"] == 0:
            return 0.0
        return summary["delivery"] / summary["tx"]

    def to_jsonl(self, path: str | Path) -> int:
        """Write retained events as JSON lines; returns the line count."""
        path = Path(path)
        with path.open("w") as handle:
            for event in self._events:
                handle.write(json.dumps(event.as_dict()) + "\n")
        return len(self._events)

    @staticmethod
    def read_jsonl(path: str | Path) -> Tuple[TraceEvent, ...]:
        """Load events previously written by :meth:`to_jsonl`."""
        events = []
        for line in Path(path).read_text().splitlines():
            record = json.loads(line)
            events.append(
                TraceEvent(
                    slot=record["slot"],
                    time=record["time"],
                    kind=record["kind"],
                    node=record["node"],
                    peer=record.get("peer"),
                    detail=record.get("detail"),
                )
            )
        return tuple(events)
