"""The lossy broadcast channel.

One transmission by node i is independently received by every in-range
node j with probability p_ij — the opportunistic-reception model OMNC is
built to exploit.  The scheduler has already ruled out collisions, so
loss draws are the only source of packet erasure.

Draws come from a dedicated generator so channel randomness is decoupled
from coding/placement randomness (see :class:`repro.util.RngFactory`).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.topology.graph import WirelessNetwork
from repro.util.rng import RngLike, as_rng


class LossyBroadcastChannel:
    """Draw per-receiver reception outcomes for broadcast transmissions."""

    def __init__(self, network: WirelessNetwork, *, rng: RngLike = None) -> None:
        self._network = network
        self._rng = as_rng(rng)
        self._transmissions = 0
        self._deliveries = 0

    @property
    def network(self) -> WirelessNetwork:
        """The topology reception draws are taken against."""
        return self._network

    def set_network(self, network: WirelessNetwork) -> None:
        """Swap the topology mid-run (link-quality drift, node failure).

        The RNG stream is untouched: the channel keeps drawing from the
        same generator, so a run whose qualities never actually change is
        bit-identical to one that never called this.
        """
        if network.node_count != self._network.node_count:
            raise ValueError(
                "replacement network must keep the node count "
                f"({self._network.node_count} != {network.node_count})"
            )
        self._network = network

    @property
    def transmissions(self) -> int:
        """Broadcast transmissions carried so far."""
        return self._transmissions

    @property
    def deliveries(self) -> int:
        """Successful (transmitter, receiver) deliveries so far."""
        return self._deliveries

    def broadcast(
        self, transmitter: int, receivers: Iterable[int]
    ) -> Tuple[int, ...]:
        """One broadcast: return the subset of ``receivers`` that heard it.

        Receivers without a link from the transmitter never receive.
        """
        candidates = [
            (j, self._network.probability(transmitter, j)) for j in receivers
        ]
        candidates = [(j, p) for j, p in candidates if p > 0.0]
        self._transmissions += 1
        if not candidates:
            return ()
        draws = self._rng.random(len(candidates))
        delivered = tuple(
            j for (j, p), u in zip(candidates, draws) if u < p
        )
        self._deliveries += len(delivered)
        return delivered

    def broadcast_prefiltered(
        self,
        receiver_ids: Sequence[int],
        probabilities: Sequence[float],
        *,
        rng: Optional[np.random.Generator] = None,
    ) -> Tuple[int, ...]:
        """:meth:`broadcast` over candidates already filtered to p > 0.

        ``receiver_ids``/``probabilities`` are aligned sequences the
        engine assembles from its precomputed per-transmitter receiver
        lists.  Consumes the RNG exactly like :meth:`broadcast` — one
        batched uniform draw per transmission, candidates in the same
        order — so both entry points produce identical loss patterns.

        ``rng`` overrides the channel's own stream for this one draw:
        the engine's per-node mode hands in the *transmitter's* stream
        so loss draws are partition-independent (see
        :class:`repro.util.rng.NodeStreams`).
        """
        generator = self._rng if rng is None else rng
        self._transmissions += 1
        if not receiver_ids:
            return ()
        draws = generator.random(len(receiver_ids))
        delivered = tuple(
            j
            for j, p, u in zip(receiver_ids, probabilities, draws.tolist())
            if u < p
        )
        self._deliveries += len(delivered)
        return delivered

    def unicast(
        self,
        transmitter: int,
        receiver: int,
        *,
        rng: Optional[np.random.Generator] = None,
    ) -> bool:
        """One unicast attempt; True on success.

        ``rng`` overrides the channel stream for this draw (per-node
        mode: the transmitter's stream), like
        :meth:`broadcast_prefiltered`.
        """
        generator = self._rng if rng is None else rng
        p = self._network.probability(transmitter, receiver)
        self._transmissions += 1
        if p <= 0.0:
            return False
        success = bool(generator.random() < p)
        if success:
            self._deliveries += 1
        return success
