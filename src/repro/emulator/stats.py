"""Session metrics: throughput gains, queue statistics, utility ratios.

These functions turn :class:`~repro.emulator.session.SessionResult`
objects into the quantities the paper's figures plot:

* **throughput gain** (Fig. 2) — a protocol's throughput divided by ETX
  routing's on the identical session;
* **time-averaged queue size** (Fig. 3) — per node involved in the
  transmission;
* **node / path utility ratios** (Fig. 4) — how much of the selected
  forwarder set and of the available path diversity a protocol actually
  used.  Paths are counted exactly with linear-time DAG dynamic
  programming (the selected forwarder graph is acyclic by construction:
  every link strictly decreases ETX distance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.emulator.session import SessionResult
from repro.routing.node_selection import ForwarderSet
from repro.topology.graph import Link


def throughput_gain(result: SessionResult, baseline: SessionResult) -> float:
    """Protocol throughput over the ETX baseline's (Fig. 2 metric).

    Returns ``inf`` when the baseline starved but the protocol moved
    data; 0 when both starved.
    """
    if baseline.throughput_bps > 0:
        return result.throughput_bps / baseline.throughput_bps
    return float("inf") if result.throughput_bps > 0 else 0.0


def count_dag_paths(
    links: Iterable[Link], source: int, destination: int
) -> int:
    """Exact number of source->destination paths in a DAG.

    Raises ``ValueError`` if the link set contains a cycle (cannot happen
    for selection DAGs; the guard catches misuse).
    """
    adjacency: Dict[int, List[int]] = {}
    nodes = {source, destination}
    for i, j in links:
        adjacency.setdefault(i, []).append(j)
        nodes.add(i)
        nodes.add(j)
    order = _topological_order(nodes, adjacency)
    counts: Dict[int, int] = {node: 0 for node in sorted(nodes)}
    counts[destination] = 1
    for node in reversed(order):
        if node == destination:
            continue
        counts[node] = sum(counts[j] for j in adjacency.get(node, ()))
    return counts[source]


def _topological_order(
    nodes: Iterable[int], adjacency: Dict[int, List[int]]
) -> List[int]:
    indegree: Dict[int, int] = {node: 0 for node in nodes}
    for i, outs in adjacency.items():
        for j in outs:
            indegree[j] += 1
    frontier = sorted(n for n, d in indegree.items() if d == 0)
    order: List[int] = []
    while frontier:
        node = frontier.pop()
        order.append(node)
        for j in adjacency.get(node, ()):
            indegree[j] -= 1
            if indegree[j] == 0:
                frontier.append(j)
    if len(order) != len(indegree):
        raise ValueError("link set contains a cycle; expected a DAG")
    return order


@dataclass(frozen=True)
class UtilityRatios:
    """The Fig. 4 pair for one session.

    Attributes:
        node_utility: transmitting nodes / selected nodes.
        path_utility: used source->destination paths / available paths.
    """

    node_utility: float
    path_utility: float


def utility_ratios(
    result: SessionResult, forwarders: ForwarderSet
) -> UtilityRatios:
    """Compute node and path utility for one coded session.

    * node utility — "the actual number of nodes involved in the
      transmission divided by the total number of selected nodes".  A
      node is involved if it transmitted at least one packet; the
      destination (which never transmits) is excluded from both counts.
    * path utility — "the total number of paths involved in the
      transmission divided by the total number of available paths after
      the node selection procedure".  Available paths live in the full
      selection DAG; a path is involved when every one of its links
      delivered at least one packet during the run.
    """
    selected = [n for n in forwarders.nodes if n != forwarders.destination]
    transmitted = [
        n for n in selected if result.transmissions.get(n, 0) > 0
    ]
    node_utility = len(transmitted) / len(selected) if selected else 0.0

    available = count_dag_paths(
        forwarders.dag_links, forwarders.source, forwarders.destination
    )
    delivered = set(result.delivered_links)
    used_links = [link for link in forwarders.dag_links if link in delivered]
    used = count_dag_paths(
        used_links, forwarders.source, forwarders.destination
    )
    path_utility = used / available if available > 0 else 0.0
    return UtilityRatios(
        node_utility=node_utility, path_utility=path_utility
    )


@dataclass(frozen=True)
class DistributionSummary:
    """Summary of an empirical distribution (one CDF curve of a figure).

    ``cdf_x`` are the sorted values; ``cdf_y`` the cumulative fractions
    — exactly the coordinates the paper's CDF plots use.
    """

    mean: float
    median: float
    minimum: float
    maximum: float
    count: int
    cdf_x: Tuple[float, ...]
    cdf_y: Tuple[float, ...]

    def fraction_below(self, threshold: float) -> float:
        """Empirical P(value < threshold)."""
        if self.count == 0:
            return 0.0
        values = np.asarray(self.cdf_x)
        return float(np.count_nonzero(values < threshold) / self.count)


def summarize(values: Sequence[float]) -> DistributionSummary:
    """Build a :class:`DistributionSummary` from raw session values."""
    data = np.asarray(sorted(values), dtype=float)
    if data.size == 0:
        return DistributionSummary(
            mean=0.0,
            median=0.0,
            minimum=0.0,
            maximum=0.0,
            count=0,
            cdf_x=(),
            cdf_y=(),
        )
    fractions = np.arange(1, data.size + 1) / data.size
    return DistributionSummary(
        mean=float(np.mean(data)),
        median=float(np.median(data)),
        minimum=float(data[0]),
        maximum=float(data[-1]),
        count=int(data.size),
        cdf_x=tuple(float(v) for v in data),
        cdf_y=tuple(float(f) for f in fractions),
    )


def jain_fairness_index(values: Sequence[float]) -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)``.

    The canonical fairness metric for the multi-session figures: 1.0
    when every session gets the same throughput, approaching ``1/n``
    when one session starves the rest.  Conventions:

    * an empty sequence has no sessions to be unfair to — returns 0.0;
    * all-zero allocations are (degenerately) perfectly fair — 1.0;
    * negative values are rejected (throughputs are non-negative).
    """
    data = [float(v) for v in values]
    if any(v < 0.0 for v in data):
        raise ValueError("jain_fairness_index requires non-negative values")
    if not data:
        return 0.0
    square_sum = sum(v * v for v in data)
    if square_sum == 0.0:  # repro: ignore[RPR004] exact all-zero sentinel
        return 1.0
    total = sum(data)
    return (total * total) / (len(data) * square_sum)


def ascii_cdf(
    summary: DistributionSummary,
    *,
    width: int = 60,
    height: int = 12,
    label: str = "",
) -> str:
    """Render a CDF as an ASCII plot (experiment scripts print these)."""
    if summary.count == 0:
        return f"{label}: (no data)"
    xs = np.asarray(summary.cdf_x)
    ys = np.asarray(summary.cdf_y)
    lo, hi = xs[0], xs[-1]
    span = hi - lo if hi > lo else 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = min(width - 1, int((x - lo) / span * (width - 1)))
        row = min(height - 1, int((1.0 - y) * (height - 1)))
        grid[row][col] = "*"
    lines = ["".join(row) for row in grid]
    header = f"{label} (n={summary.count}, mean={summary.mean:.3g})"
    footer = f"{lo:.3g}{' ' * (width - 12)}{hi:.3g}"
    return "\n".join([header] + lines + [footer])
