"""Drift-style packet-level emulation (paper Sec. 5).

The emulator executes real protocol logic (actual coding vectors, actual
innovation checks) over simulated lower layers:

* :mod:`repro.emulator.scheduler` — the ideal MAC: conflict-free maximal
  scheduling among interfering transmitters.
* :mod:`repro.emulator.channel` — the lossy broadcast channel (PHY loss
  draws only; the scheduler removed collisions).
* :mod:`repro.emulator.node` — per-node data planes (rate-driven coding,
  credit-driven coding, store-and-forward).
* :mod:`repro.emulator.engine` — the slot loop.
* :mod:`repro.emulator.session` — session drivers and results.
* :mod:`repro.emulator.stats` — figure metrics (gains, queues, utility).
"""

from repro.emulator.channel import LossyBroadcastChannel
from repro.emulator.engine import EmulationEngine, EngineStats
from repro.emulator.multisession import (
    InterSessionXorRelay,
    MultiSessionOutcome,
    multi_session_digest,
    run_multi_session,
)
from repro.emulator.node import (
    CodedDestinationRuntime,
    CodedRelayRuntime,
    CodedSourceRuntime,
    MultiSessionNodeRuntime,
    NodeRuntime,
    UnicastRuntime,
    XorPacket,
)
from repro.emulator.scheduler import ConflictGraph, IdealMacScheduler
from repro.emulator.session import (
    SessionConfig,
    SessionResult,
    run_coded_session,
    run_unicast_session,
)
from repro.emulator.shard import (
    ShardedSession,
    run_sharded_session,
    session_digest,
    trace_digest,
)
from repro.emulator.trace import SessionTracer, TraceEvent
from repro.emulator.stats import (
    DistributionSummary,
    UtilityRatios,
    ascii_cdf,
    count_dag_paths,
    jain_fairness_index,
    summarize,
    throughput_gain,
    utility_ratios,
)

__all__ = [
    "CodedDestinationRuntime",
    "CodedRelayRuntime",
    "CodedSourceRuntime",
    "ConflictGraph",
    "DistributionSummary",
    "EmulationEngine",
    "EngineStats",
    "IdealMacScheduler",
    "InterSessionXorRelay",
    "LossyBroadcastChannel",
    "MultiSessionNodeRuntime",
    "MultiSessionOutcome",
    "NodeRuntime",
    "SessionConfig",
    "SessionResult",
    "SessionTracer",
    "ShardedSession",
    "TraceEvent",
    "UnicastRuntime",
    "UtilityRatios",
    "XorPacket",
    "ascii_cdf",
    "count_dag_paths",
    "jain_fairness_index",
    "multi_session_digest",
    "run_coded_session",
    "run_multi_session",
    "run_sharded_session",
    "run_unicast_session",
    "session_digest",
    "summarize",
    "trace_digest",
    "throughput_gain",
    "utility_ratios",
]
