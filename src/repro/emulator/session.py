"""Session drivers: run one unicast session under a protocol plan.

This is the experiment-facing surface of the emulator.  A *session* takes
a :class:`~repro.topology.graph.WirelessNetwork`, a protocol plan, and a
:class:`SessionConfig`, builds the per-node runtimes, and executes the
slot loop until either the target number of generations is decoded or the
emulated-time budget runs out.

The paper's setup (Sec. 5): generations of 40 blocks x 1 KB, UDP CBR
offered load at half the channel capacity, throughput computed at each
"successfully decoded" ACK and averaged over the session.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Tuple

from repro import obs
from repro.coding.generation import (
    DEFAULT_BLOCK_SIZE,
    DEFAULT_BLOCKS_PER_GENERATION,
    MAX_GENERATION_BLOCKS,
)
from repro.coding.packet import HEADER_BYTES
from repro.emulator.channel import LossyBroadcastChannel
from repro.emulator.engine import EmulationEngine, EngineStats
from repro.emulator.node import (
    CodedDestinationRuntime,
    CodedRelayRuntime,
    CodedSourceRuntime,
    FlowDestinationRuntime,
    FlowRelayRuntime,
    FlowSourceRuntime,
    NodeRuntime,
    UnicastRuntime,
)
from repro.emulator.plan import (
    CodedBroadcastPlan,
    CreditBroadcastPlan,
    SessionPlan,
    UnicastPathPlan,
)
from repro.emulator.trace import SessionTracer
from repro.topology.graph import Link, WirelessNetwork
from repro.util.rng import RngFactory

_UNICAST_HEADER_BYTES = 24  # IP/MAC-style header for plain forwarding


@dataclass(frozen=True)
class SessionConfig:
    """Shared knobs of one emulated session.

    Attributes:
        blocks: data blocks per generation (paper: 40).
        block_size: bytes per block (paper: 1024).
        cbr_fraction: offered load as a fraction of channel capacity
            (paper: 0.5, i.e. 10^4 B/s on the 2x10^4 B/s channel).
        max_seconds: emulated-time budget.
        target_generations: stop after this many decoded generations
            (0 = run the full time budget, as the paper's 800 s sessions
            do).
        queue_limit: per-node broadcast queue cap in packets.
        interference: the emulator's interference model — "blanking"
            (Drift's Sec. 5 model, default), "capture", or
            "conflict_free" (the Sec. 3.2 idealized broadcast MAC).  See
            :class:`repro.emulator.engine.EmulationEngine`.
        coding_fidelity: "flow" (default) counts information in
            innovative-packet units under the paper's stream-independence
            assumption (Sec. 3.2); "exact" simulates real GF(2^8) coding
            vectors with per-packet rank checks.  The ablation benchmark
            compares the two — exact coding reveals how much the
            independence assumption overstates multipath capacity on deep
            forwarder DAGs.
        systematic: sources emit each generation's blocks plainly before
            dense repair packets (decode-cost optimization, exact
            fidelity only — flow fidelity has no elimination to skip).
    """

    blocks: int = DEFAULT_BLOCKS_PER_GENERATION
    block_size: int = DEFAULT_BLOCK_SIZE
    cbr_fraction: float = 0.5
    max_seconds: float = 120.0
    target_generations: int = 0
    queue_limit: int = 500
    interference: str = "blanking"
    coding_fidelity: str = "flow"
    systematic: bool = False

    def __post_init__(self) -> None:
        if self.blocks <= 0 or self.block_size <= 0:
            raise ValueError("blocks and block_size must be > 0")
        if self.blocks > MAX_GENERATION_BLOCKS:
            raise ValueError(
                f"blocks must be <= {MAX_GENERATION_BLOCKS} "
                f"(GF(2^8) coefficient-header limit), got {self.blocks}"
            )
        if not isinstance(self.systematic, bool):
            raise TypeError(
                f"systematic must be bool, got {type(self.systematic).__name__}"
            )
        if not 0.0 < self.cbr_fraction <= 1.0:
            raise ValueError("cbr_fraction must be in (0, 1]")
        if self.max_seconds <= 0:
            raise ValueError("max_seconds must be > 0")
        if self.target_generations < 0:
            raise ValueError("target_generations must be >= 0")
        if self.queue_limit <= 0:
            raise ValueError("queue_limit must be > 0")
        if self.interference not in ("blanking", "capture", "conflict_free"):
            raise ValueError(f"unknown interference model {self.interference!r}")
        if self.coding_fidelity not in ("flow", "exact"):
            raise ValueError(f"unknown coding fidelity {self.coding_fidelity!r}")

    def coded_packet_bytes(self) -> int:
        """Wire size of one coded packet (payload + coding header)."""
        return self.block_size + HEADER_BYTES + self.blocks

    def unicast_packet_bytes(self) -> int:
        """Wire size of one plain forwarded packet."""
        return self.block_size + _UNICAST_HEADER_BYTES

    def generation_bytes(self) -> int:
        """Payload bytes per generation."""
        return self.blocks * self.block_size


@dataclass(frozen=True)
class SessionResult:
    """Everything the experiments measure about one session run.

    Attributes:
        protocol: protocol label ("omnc", "more", "oldmore", "etx").
        source / destination: endpoints.
        throughput_bps: payload throughput in bytes/second (the paper's
            per-ACK average).
        duration: emulated seconds executed.
        generations_decoded: full generations recovered (coded sessions).
        packets_delivered: packets delivered end-to-end (unicast
            sessions; equals generations * blocks for coded ones).
        ack_times: emulated time of each decoded-generation ACK.
        average_queues: time-averaged queue length per participating
            node (Fig. 3 metric).
        transmissions: packets actually transmitted per node.
        participants: nodes the plan placed in the session.
        delivered_links: (i, j) pairs that carried at least one delivered
            packet (used by the Fig. 4 path-utility metric).
    """

    protocol: str
    source: int
    destination: int
    throughput_bps: float
    duration: float
    generations_decoded: int
    packets_delivered: int
    ack_times: Tuple[float, ...]
    average_queues: Dict[int, float]
    transmissions: Dict[int, int]
    participants: Tuple[int, ...]
    delivered_links: Tuple[Link, ...]

    @property
    def active_nodes(self) -> Tuple[int, ...]:
        """Nodes that transmitted at least one packet."""
        return tuple(
            sorted(n for n, tx in self.transmissions.items() if tx > 0)
        )

    def mean_queue(self) -> float:
        """Average of the per-node time-averaged queues (Fig. 3 summary).

        Averaged over nodes involved in the transmission, as in the
        paper.
        """
        involved = [
            self.average_queues[n]
            for n, tx in self.transmissions.items()
            if tx > 0
        ]
        if not involved:
            return 0.0
        return float(sum(involved) / len(involved))


class _AckTracker:
    """Collects decoded-generation events and drives generation advance."""

    def __init__(self) -> None:
        self.ack_times: List[float] = []
        self.engine: EmulationEngine | None = None
        self.pending_advance: int | None = None

    def on_decoded(self, generation_id: int) -> None:
        assert self.engine is not None
        self.ack_times.append(self.engine.now)
        # Applied after the delivery phase of the slot completes.
        self.pending_advance = generation_id + 1

    def apply_pending(self) -> None:
        if self.pending_advance is not None and self.engine is not None:
            self.engine.broadcast_generation_advance(self.pending_advance)
            self.pending_advance = None


def plan_coding_config(config: SessionConfig, plan: SessionPlan) -> SessionConfig:
    """Fold a plan-carried coding decision into the session config.

    Plans that carry :class:`~repro.emulator.plan.CodingParams` (today:
    :class:`CodedBroadcastPlan`) override the config's generation size
    and systematic flag for the whole session; plans without one leave
    the config untouched.  Every session entry point applies this before
    sizing slots or building runtimes, so a plan-carried decision and an
    explicitly configured one behave identically.
    """
    coding = getattr(plan, "coding", None)
    if coding is None:
        return config
    return replace(config, blocks=coding.blocks, systematic=coding.systematic)


def build_plan_runtimes(
    network: WirelessNetwork,
    plan: SessionPlan,
    *,
    session_id: int = 1,
    config: SessionConfig | None = None,
    rng: RngFactory | None = None,
    on_decoded: Callable[[int], None] | None = None,
    on_delivered: Callable[[int], None] | None = None,
) -> Tuple[Dict[int, NodeRuntime], str]:
    """Construct the per-node runtimes any plan type needs, plus a label.

    The public seam shared by the session drivers below and the live
    control plane (:mod:`repro.scenario.runner`): coded plans include
    the destination runtime (wired to ``on_decoded``), unicast plans
    wire the destination's delivery callback to ``on_delivered``.
    """
    config = plan_coding_config(config or SessionConfig(), plan)
    rng = rng or RngFactory(0)
    if isinstance(plan, CodedBroadcastPlan):
        runtimes, label = _build_rate_runtimes(
            network, plan, session_id, config, rng
        )
    elif isinstance(plan, CreditBroadcastPlan):
        runtimes, label = _build_credit_runtimes(
            network, plan, session_id, config, rng
        )
    elif isinstance(plan, UnicastPathPlan):
        return (
            _build_unicast_runtimes(network, plan, config, on_delivered),
            "etx",
        )
    else:
        raise TypeError(f"unsupported plan type {type(plan).__name__}")
    destination = plan.forwarders.destination
    decoded = on_decoded if on_decoded is not None else (lambda _gen: None)
    if config.coding_fidelity == "exact":
        runtimes[destination] = CodedDestinationRuntime(
            destination, session_id, config.blocks, decoded
        )
    else:
        runtimes[destination] = FlowDestinationRuntime(
            destination, session_id, config.blocks, decoded
        )
    return runtimes, label


def run_coded_session(
    network: WirelessNetwork,
    plan: CodedBroadcastPlan | CreditBroadcastPlan,
    *,
    session_id: int = 1,
    config: SessionConfig | None = None,
    rng: RngFactory | None = None,
    protocol_label: str | None = None,
    registry: obs.MetricsRegistry | None = None,
    tracer: SessionTracer | None = None,
) -> SessionResult:
    """Emulate one network-coded session (OMNC, MORE or oldMORE plan).

    ``registry``/``tracer`` flow through to the engine; when omitted the
    engine falls back to the global :mod:`repro.obs` registry, so a
    ``with obs.collecting():`` block instruments the whole session with
    no further plumbing.
    """
    config = plan_coding_config(config or SessionConfig(), plan)
    rng = rng or RngFactory(0)
    if not isinstance(plan, (CodedBroadcastPlan, CreditBroadcastPlan)):
        raise TypeError(f"unsupported plan type {type(plan).__name__}")
    source = plan.forwarders.source
    destination = plan.forwarders.destination

    tracker = _AckTracker()
    runtimes, label = build_plan_runtimes(
        network,
        plan,
        session_id=session_id,
        config=config,
        rng=rng,
        on_decoded=tracker.on_decoded,
    )
    dest_runtime = runtimes[destination]

    channel = LossyBroadcastChannel(network, rng=rng.derive("channel"))
    slot = config.coded_packet_bytes() / network.capacity
    engine = EmulationEngine(
        network,
        runtimes,
        channel,
        slot,
        scheduler_rng=rng.derive("mac"),
        capture_rng=rng.derive("capture"),
        interference=config.interference,
        registry=registry,
        tracer=tracer,
    )
    tracker.engine = engine

    max_slots = int(config.max_seconds / slot)
    target = config.target_generations

    def stop() -> bool:
        tracker.apply_pending()
        return target > 0 and dest_runtime.generations_decoded >= target

    stats = engine.run(max_slots, stop_when=stop)
    return _coded_result(
        protocol_label or label,
        source,
        destination,
        plan,
        config,
        stats,
        dest_runtime,
        tracker,
        runtimes,
    )


def _build_rate_runtimes(
    network: WirelessNetwork,
    plan: CodedBroadcastPlan,
    session_id: int,
    config: SessionConfig,
    rng: RngFactory,
) -> Tuple[Dict[int, NodeRuntime], str]:
    """OMNC: rate-driven source and relays."""
    forwarders = plan.forwarders
    cbr = config.cbr_fraction * network.capacity
    runtimes: Dict[int, NodeRuntime] = {}
    packet_bytes = config.coded_packet_bytes()
    exact = config.coding_fidelity == "exact"
    for node in forwarders.nodes:
        if node == forwarders.destination:
            continue
        if node == forwarders.source:
            rate = min(plan.rates.get(node, 0.0), cbr)
            if exact:
                runtimes[node] = CodedSourceRuntime(
                    node,
                    session_id,
                    config.blocks,
                    rate,
                    packet_bytes,
                    rng.derive("coding", node),
                    queue_limit=config.queue_limit,
                    systematic=config.systematic,
                )
            else:
                runtimes[node] = FlowSourceRuntime(
                    node,
                    session_id,
                    config.blocks,
                    rate,
                    packet_bytes,
                    queue_limit=config.queue_limit,
                )
        else:
            rate = plan.rates.get(node, 0.0)
            if rate <= 0.0:
                continue  # unallocated forwarders stay silent listeners
            if exact:
                runtimes[node] = CodedRelayRuntime(
                    node,
                    session_id,
                    config.blocks,
                    packet_bytes,
                    rng.derive("coding", node),
                    mode="rate",
                    rate_bps=rate,
                    queue_limit=config.queue_limit,
                )
            else:
                runtimes[node] = FlowRelayRuntime(
                    node,
                    session_id,
                    config.blocks,
                    packet_bytes,
                    mode="rate",
                    rate_bps=rate,
                    queue_limit=config.queue_limit,
                )
    return runtimes, "omnc"


def _build_credit_runtimes(
    network: WirelessNetwork,
    plan: CreditBroadcastPlan,
    session_id: int,
    config: SessionConfig,
    rng: RngFactory,
) -> Tuple[Dict[int, NodeRuntime], str]:
    """MORE/oldMORE: CBR source, credit-driven relays."""
    forwarders = plan.forwarders
    distance = forwarders.etx_distance
    cbr = config.cbr_fraction * network.capacity
    packet_bytes = config.coded_packet_bytes()
    runtimes: Dict[int, NodeRuntime] = {}
    exact = config.coding_fidelity == "exact"
    for node in forwarders.nodes:
        if node == forwarders.destination:
            continue
        if node == forwarders.source:
            if exact:
                runtimes[node] = CodedSourceRuntime(
                    node,
                    session_id,
                    config.blocks,
                    cbr,
                    packet_bytes,
                    rng.derive("coding", node),
                    queue_limit=config.queue_limit,
                    systematic=config.systematic,
                )
            else:
                runtimes[node] = FlowSourceRuntime(
                    node,
                    session_id,
                    config.blocks,
                    cbr,
                    packet_bytes,
                    queue_limit=config.queue_limit,
                )
            continue
        credit = plan.tx_credits.get(node, 0.0)
        if credit <= 0.0:
            continue  # pruned forwarder
        upstream = tuple(
            i for i in forwarders.nodes if distance[i] > distance[node]
        )
        if exact:
            runtimes[node] = CodedRelayRuntime(
                node,
                session_id,
                config.blocks,
                packet_bytes,
                rng.derive("coding", node),
                mode="credit",
                tx_credit=credit,
                upstream=upstream,
                queue_limit=config.queue_limit,
            )
        else:
            runtimes[node] = FlowRelayRuntime(
                node,
                session_id,
                config.blocks,
                packet_bytes,
                mode="credit",
                tx_credit=credit,
                upstream=upstream,
                queue_limit=config.queue_limit,
            )
    return runtimes, "more"


def _coded_result(
    label: str,
    source: int,
    destination: int,
    plan: SessionPlan,
    config: SessionConfig,
    stats: EngineStats,
    dest_runtime: CodedDestinationRuntime | FlowDestinationRuntime,
    tracker: _AckTracker,
    runtimes: Dict[int, NodeRuntime],
) -> SessionResult:
    generations = dest_runtime.generations_decoded
    # Decoded-blocks accounting: for static sessions this is exactly
    # generations * config.blocks (same integer product, bit-identical
    # throughput); for adaptive-n sessions it credits each generation at
    # the size it actually ran.
    blocks_decoded = dest_runtime.blocks_decoded
    if tracker.ack_times:
        # Paper: throughput computed at each decoded ACK, averaged over
        # the session == total decoded payload over time of last ACK.
        elapsed = tracker.ack_times[-1]
        throughput = blocks_decoded * config.block_size / elapsed
    else:
        throughput = 0.0
    return SessionResult(
        protocol=label,
        source=source,
        destination=destination,
        throughput_bps=throughput,
        duration=stats.elapsed,
        generations_decoded=generations,
        packets_delivered=blocks_decoded,
        ack_times=tuple(tracker.ack_times),
        average_queues={
            n: stats.average_queue(n) for n in runtimes
        },
        transmissions=dict(stats.transmissions),
        participants=tuple(sorted(runtimes)),
        delivered_links=tuple(sorted(stats.delivered_links)),
    )


def _build_unicast_runtimes(
    network: WirelessNetwork,
    plan: UnicastPathPlan,
    config: SessionConfig,
    on_delivered: Callable[[int], None] | None,
) -> Dict[int, NodeRuntime]:
    """ETX: store-and-forward runtimes along the planned path."""
    cbr = config.cbr_fraction * network.capacity
    packet_bytes = config.unicast_packet_bytes()
    runtimes: Dict[int, NodeRuntime] = {}
    for index, node in enumerate(plan.path):
        next_hop = plan.path[index + 1] if index + 1 < len(plan.path) else None
        rate = cbr if node == plan.source else 0.0
        runtimes[node] = UnicastRuntime(
            node,
            next_hop,
            rate_bps=rate,
            packet_bytes=packet_bytes,
            queue_limit=config.queue_limit,
            on_delivered=on_delivered,
            demand_hint_bps=unicast_demand_hint(network, node, next_hop, cbr),
        )
    return runtimes


def unicast_demand_hint(
    network: WirelessNetwork,
    node: int,
    next_hop: int | None,
    cbr: float,
) -> float:
    """Airtime demand of a path node: offered load inflated by the hop's
    expected retransmission count (MAC retries on the lossy link)."""
    if next_hop is None:
        return 0.0
    hop_p = max(network.probability(node, next_hop), 1e-3)
    return cbr / hop_p


def run_unicast_session(
    network: WirelessNetwork,
    plan: UnicastPathPlan,
    *,
    config: SessionConfig | None = None,
    rng: RngFactory | None = None,
    registry: obs.MetricsRegistry | None = None,
    tracer: SessionTracer | None = None,
) -> SessionResult:
    """Emulate one ETX best-path session with MAC retransmissions."""
    config = config or SessionConfig()
    rng = rng or RngFactory(0)
    packet_bytes = config.unicast_packet_bytes()
    delivered_count = [0]

    def on_delivered(_sequence: int) -> None:
        delivered_count[0] += 1

    runtimes = _build_unicast_runtimes(network, plan, config, on_delivered)
    channel = LossyBroadcastChannel(network, rng=rng.derive("channel"))
    slot = packet_bytes / network.capacity
    engine = EmulationEngine(
        network,
        runtimes,
        channel,
        slot,
        scheduler_rng=rng.derive("mac"),
        capture_rng=rng.derive("capture"),
        interference=config.interference,
        registry=registry,
        tracer=tracer,
    )
    max_slots = int(config.max_seconds / slot)
    stats = engine.run(max_slots)
    elapsed = stats.elapsed if stats.elapsed > 0 else 1.0
    throughput = delivered_count[0] * config.block_size / elapsed
    return SessionResult(
        protocol="etx",
        source=plan.source,
        destination=plan.destination,
        throughput_bps=throughput,
        duration=stats.elapsed,
        generations_decoded=0,
        packets_delivered=delivered_count[0],
        ack_times=(),
        average_queues={n: stats.average_queue(n) for n in runtimes},
        transmissions=dict(stats.transmissions),
        participants=tuple(sorted(runtimes)),
        delivered_links=tuple(sorted(stats.delivered_links)),
    )
