"""Session plans: the contract between control planes and the emulator.

A *plan* is the static, per-session output of a protocol's control plane
(node selection + whatever rate/credit computation it performs).  The
emulator executes plans, so the emulator *owns* the plan types — the
protocol planners (:mod:`repro.protocols`, one layer above) produce
instances of an interface defined by the layer that consumes them.
This inversion keeps the package graph acyclic: before it, the data
plane imported :mod:`repro.protocols.base` while the protocols imported
the emulator's node runtimes (the ``emulator ⇄ protocols`` cycle
flagged by ``repro check`` RPR101).  :mod:`repro.protocols.base`
re-exports every name here, so planner-side imports are unchanged.

The emulator knows three node behaviours:

* **rate-driven coded broadcast** (OMNC): node i re-encodes and
  broadcasts at the allocated rate b_i.
* **credit-driven coded broadcast** (MORE / oldMORE): node i gains
  ``tx_credit`` transmission credits per packet heard from upstream and
  broadcasts while it has credit; the source transmits continuously at
  the offered load.
* **best-path unicast forwarding** (ETX routing): store-and-forward along
  one path with per-hop MAC retransmissions.

Keeping the plan/behaviour split mirrors the paper's architecture: the
optimization (or heuristic) runs once per session, then the data plane
simply follows it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple

from repro.coding.generation import GenerationParams
from repro.routing.node_selection import ForwarderSet


@dataclass(frozen=True)
class CodingParams:
    """A per-session (or per-epoch) coding decision carried by plans.

    Attributes:
        blocks: generation size n the session should use from the next
            generation boundary onward.
        systematic: emit each generation's blocks plainly first, with
            dense RLNC repair packets after (decode-cost optimization;
            delivered payloads are byte-identical either way).

    The dataclass is deliberately tiny and picklable: it crosses shard
    worker pipes verbatim inside ``apply_plan`` updates.
    """

    blocks: int
    systematic: bool = False

    def __post_init__(self) -> None:
        # Reuse the canonical generation-size validation (positive int,
        # GF(2^8) coefficient-header limit of 255).
        GenerationParams(blocks=self.blocks, block_size=1)
        if not isinstance(self.systematic, bool):
            raise TypeError(
                f"systematic must be bool, got {type(self.systematic).__name__}"
            )


@dataclass(frozen=True)
class CodedBroadcastPlan:
    """Plan for rate-driven network coding (OMNC).

    Attributes:
        forwarders: the node-selection result (defines the session DAG).
        rates: broadcast rate per node in **bytes/second** (already
            rescaled into the MAC-feasible region).
        predicted_throughput: the optimization's gamma in bytes/second —
            the paper compares emulated against predicted throughput.
        iterations: rate-control iterations spent (0 if planned via the
            centralized LP).
        coding: optional coding decision for the session; ``None`` keeps
            the session config's generation size.  Carried on the plan so
            a control plane can size generations per epoch and the data
            plane can honor the switch at a generation boundary.
    """

    forwarders: ForwarderSet
    rates: Dict[int, float]
    predicted_throughput: float
    iterations: int = 0
    coding: "CodingParams | None" = None

    def __post_init__(self) -> None:
        for node, rate in self.rates.items():
            if node not in self.forwarders.nodes:
                raise ValueError(f"rate assigned to unselected node {node}")
            if rate < 0:
                raise ValueError(f"negative rate for node {node}: {rate}")

    @property
    def kind(self) -> str:
        """Behaviour key understood by the emulator."""
        return "rate"

    def active_nodes(self, threshold: float = 1e-9) -> FrozenSet[int]:
        """Nodes with a positive broadcast rate (plus the destination)."""
        active = {n for n, r in self.rates.items() if r > threshold}
        active.add(self.forwarders.destination)
        return frozenset(active)


@dataclass(frozen=True)
class CreditBroadcastPlan:
    """Plan for credit-driven network coding (MORE and oldMORE).

    Attributes:
        forwarders: the node-selection result.
        tx_credits: transmission credit gained per upstream packet heard,
            per node.  The source is not credit-driven (it streams at the
            offered load) and has no entry.
        expected_transmissions: the z_i vector (per delivered source
            packet) that produced the credits — kept for analysis.
    """

    forwarders: ForwarderSet
    tx_credits: Dict[int, float]
    expected_transmissions: Dict[int, float]

    def __post_init__(self) -> None:
        for node, credit in self.tx_credits.items():
            if node not in self.forwarders.nodes:
                raise ValueError(f"credit assigned to unselected node {node}")
            if credit < 0:
                raise ValueError(f"negative credit for node {node}: {credit}")

    @property
    def kind(self) -> str:
        """Behaviour key understood by the emulator."""
        return "credit"

    def active_nodes(self, threshold: float = 1e-9) -> FrozenSet[int]:
        """Nodes that may transmit: positive credit, plus source/dest."""
        active = {n for n, c in self.tx_credits.items() if c > threshold}
        active.add(self.forwarders.source)
        active.add(self.forwarders.destination)
        return frozenset(active)


@dataclass(frozen=True)
class UnicastPathPlan:
    """Plan for best-path store-and-forward routing (ETX).

    Attributes:
        path: the node sequence source..destination.
        path_etx: total expected transmission count of the path.
    """

    path: Tuple[int, ...]
    path_etx: float

    def __post_init__(self) -> None:
        if len(self.path) < 2:
            raise ValueError("path needs at least source and destination")
        if len(set(self.path)) != len(self.path):
            raise ValueError(f"path revisits a node: {self.path}")
        if self.path_etx < len(self.path) - 1:
            raise ValueError(
                f"path ETX {self.path_etx} below hop count {len(self.path) - 1}"
            )

    @property
    def kind(self) -> str:
        """Behaviour key understood by the emulator."""
        return "unicast"

    @property
    def source(self) -> int:
        """First node of the path."""
        return self.path[0]

    @property
    def destination(self) -> int:
        """Last node of the path."""
        return self.path[-1]

    @property
    def hop_count(self) -> int:
        """Number of links on the path."""
        return len(self.path) - 1


#: Any plan a session driver can execute (see
#: :func:`repro.emulator.session.build_plan_runtimes`).
SessionPlan = CodedBroadcastPlan | CreditBroadcastPlan | UnicastPathPlan
