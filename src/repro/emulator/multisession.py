"""Multi-session emulation: N concurrent unicasts over shared airtime.

The single-session drivers wire one runtime per node and one decoder at
one destination.  This module lifts that assumption: every node hosts a
:class:`~repro.emulator.node.MultiSessionNodeRuntime` composite holding
one sub-runtime per session it participates in, the MAC arbitrates the
node's *total* pressure, and transmissions round-robin across the
sessions sharing the radio.  The paper's conclusion claims OMNC "can be
flexibly extended to the multiple-unicast case"; this is that extension
meeting the data plane.

Design points:

* **One plan per session.**  ``run_multi_session`` takes a mapping
  ``session_id -> plan`` (coded plans only — rate-driven OMNC or
  credit-driven MORE; ETX unicast stays single-session).  Sessions can
  mix protocols, which is exactly how the fig6 experiment compares
  OMNC-multi against MORE-per-flow under identical contention.
* **Shard-safe by construction.**  The driver runs on
  :class:`~repro.emulator.shard.ShardedSession` in per-node RNG mode for
  any ``shards >= 1``; control events (per-session generation advances,
  arrivals, departures) queue through the same slot-boundary path as the
  single-session ACK, so ``shards=1`` and ``shards=N`` are bit-identical.
* **Churn without topology churn.**  Scenario ``session_arrive`` /
  ``session_depart`` events switch pre-built sub-runtimes between
  dormant and active; the participant set — and with it every conflict
  structure and RNG stream mapping — never changes mid-run.
* **Inter-session XOR.**  :class:`InterSessionXorRelay` (planned by
  :mod:`repro.protocols.intersession`) XORs one queued packet from each
  of two sessions into a single airtime slot when both flows have
  traffic, COPE/I²NC style; receivers peel components per the rule in
  :class:`~repro.emulator.node.XorPacket`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Mapping,
    Sequence,
    Tuple,
)

from repro.emulator.node import InterSessionXorRelay, MultiSessionNodeRuntime
from repro.emulator.session import (
    SessionConfig,
    SessionResult,
    build_plan_runtimes,
)
from repro.emulator.shard import (
    ShardedSession,
    _DecodeLog,
    _SessionDecodeAdapter,
    session_digest,
)
from repro.emulator.stats import jain_fairness_index
from repro.emulator.trace import SessionTracer
from repro.emulator.plan import (
    CodedBroadcastPlan,
    CreditBroadcastPlan,
    SessionPlan,
)
from repro.topology.graph import WirelessNetwork
from repro.util.rng import RngFactory

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (scenario -> emulator)
    from repro.scenario.spec import ScenarioSpec

__all__ = [
    "InterSessionXorRelay",
    "MultiSessionOutcome",
    "multi_session_digest",
    "run_multi_session",
]


@dataclass(frozen=True)
class MultiSessionOutcome:
    """Everything a multi-session run measures.

    Attributes:
        protocol: run-level label (e.g. "omnc-multi", "more-per-flow").
        sessions: per-session :class:`SessionResult`, keyed by id.
        duration: emulated seconds executed.
        aggregate_throughput_bps: sum of per-session throughputs.
        fairness: Jain fairness index over per-session throughputs.
        transmissions: airtime slots actually used (all nodes).
        xor_transmissions: slots that carried an inter-session XOR.
        arrivals / departures: scenario churn applied, as
            ``(time, session_id)`` pairs in firing order.
    """

    protocol: str
    sessions: Dict[int, SessionResult]
    duration: float
    aggregate_throughput_bps: float
    fairness: float
    transmissions: int
    xor_transmissions: int
    arrivals: Tuple[Tuple[float, int], ...] = ()
    departures: Tuple[Tuple[float, int], ...] = ()

    @property
    def session_ids(self) -> Tuple[int, ...]:
        """All session ids, ascending."""
        return tuple(sorted(self.sessions))

    def throughputs(self) -> Dict[int, float]:
        """Per-session throughput in bytes/second."""
        return {
            sid: self.sessions[sid].throughput_bps
            for sid in sorted(self.sessions)
        }


def _extract_churn(
    plans: Mapping[int, SessionPlan], scenario: "ScenarioSpec | None"
) -> Tuple[List[Tuple[float, str, int]], frozenset[int]]:
    """Scenario churn as a sorted (time, kind, session) timeline.

    Sessions with an arrival event start dormant.  Events referencing
    unknown sessions are rejected — every session needs a pre-built
    plan (participants are fixed at start, only activity changes).
    """
    if scenario is None:
        return [], frozenset()
    timeline: List[Tuple[float, str, int]] = []
    dormant: List[int] = []
    for event in scenario.events:
        if event.kind not in ("session_arrive", "session_depart"):
            continue
        session_id = event.session_id
        if session_id is None or session_id not in plans:
            raise ValueError(
                f"scenario {event.kind} references unknown session "
                f"{session_id!r}; every churned session needs a plan"
            )
        kind = "arrive" if event.kind == "session_arrive" else "depart"
        timeline.append((event.at, kind, session_id))
        if kind == "arrive":
            dormant.append(session_id)
    timeline.sort()
    return timeline, frozenset(dormant)


def run_multi_session(
    network: WirelessNetwork,
    plans: Mapping[int, SessionPlan],
    *,
    shards: int = 1,
    config: SessionConfig | None = None,
    rng: RngFactory | None = None,
    xor_pairs: Mapping[int, Sequence[Tuple[int, int]]] | None = None,
    scenario: "ScenarioSpec | None" = None,
    tracer: SessionTracer | None = None,
    protocol_label: str | None = None,
    start_method: str | None = None,
) -> MultiSessionOutcome:
    """Emulate N concurrent coded unicast sessions over shared airtime.

    ``plans`` maps each session id to its coded plan (OMNC rate plans
    and MORE credit plans mix freely); every session's runtimes are
    built up front and merged into per-node composites, so nodes shared
    by several sessions contend once at the MAC with their summed
    pressure and round-robin the grant across sessions.

    ``xor_pairs`` (node -> session pairs) upgrades those nodes to
    :class:`InterSessionXorRelay`.  ``scenario`` contributes
    ``session_arrive`` / ``session_depart`` events: arriving sessions
    start dormant and switch live at their event time; departing ones
    stop contending (their delivered state and stats survive).

    ``shards=1`` is the in-process serial oracle; any ``shards=N``
    produces a bit-identical outcome and trace (per-node RNG streams +
    slot-boundary control events, exactly like the single-session
    sharded driver).

    With ``config.target_generations > 0`` the run stops once every
    session has decoded that many generations (sessions that depart
    early may keep the run at its full time budget).
    """
    config = config or SessionConfig()
    rng = rng or RngFactory(0)
    if not plans:
        raise ValueError("run_multi_session needs at least one session plan")
    for sid, plan in plans.items():
        if sid < 0:
            raise ValueError(f"session ids must be >= 0, got {sid}")
        if not isinstance(plan, (CodedBroadcastPlan, CreditBroadcastPlan)):
            raise TypeError(
                f"session {sid}: multi-session runs take coded plans, got "
                f"{type(plan).__name__}"
            )
    timeline, dormant = _extract_churn(plans, scenario)
    xor_pairs = xor_pairs or {}

    decode_log = _DecodeLog()
    labels: Dict[int, str] = {}
    composites: Dict[int, MultiSessionNodeRuntime] = {}
    for sid in sorted(plans):
        runtimes, label = build_plan_runtimes(
            network,
            plans[sid],
            session_id=sid,
            config=config,
            rng=rng.spawn(f"msession-{sid}"),
            on_decoded=_SessionDecodeAdapter(decode_log, sid),
        )
        labels[sid] = label
        for node in sorted(runtimes):
            composite = composites.get(node)
            if composite is None:
                if node in xor_pairs:
                    composite = InterSessionXorRelay(
                        node, tuple(xor_pairs[node])
                    )
                else:
                    composite = MultiSessionNodeRuntime(node)
                composites[node] = composite
            composite.add_session(
                sid, runtimes[node], active=sid not in dormant
            )

    slot = config.coded_packet_bytes() / network.capacity
    ack_times: Dict[int, List[float]] = {sid: [] for sid in sorted(plans)}
    pending_advances: List[Tuple[int, int]] = []
    arrivals: List[Tuple[float, int]] = []
    departures: List[Tuple[float, int]] = []

    def on_decoded(event: Any, ack_time: float) -> None:
        sid, generation_id = event
        ack_times[sid].append(ack_time)
        pending_advances.append((sid, generation_id + 1))

    session = ShardedSession(
        network,
        dict(composites),
        slot,
        rng_factory=rng,
        shards=shards,
        interference=config.interference,
        tracer=tracer,
        decode_log=decode_log,
        on_decoded=on_decoded,
        start_method=start_method,
    )
    max_slots = int(config.max_seconds / slot)
    target = config.target_generations
    event_index = [0]

    def tick() -> bool:
        # Churn first, then decoded-generation advances — a fixed order
        # shared by the serial (immediate) and sharded (queued) paths.
        while (
            event_index[0] < len(timeline)
            and timeline[event_index[0]][0] <= session.now
        ):
            at, kind, sid = timeline[event_index[0]]
            event_index[0] += 1
            if kind == "arrive":
                session.broadcast_session_arrival(sid)
                arrivals.append((session.now, sid))
            else:
                session.broadcast_session_departure(sid)
                departures.append((session.now, sid))
        for sid, generation_id in pending_advances:
            session.broadcast_session_generation_advance(sid, generation_id)
        pending_advances.clear()
        if target <= 0:
            return False
        return all(len(times) >= target for times in ack_times.values())

    with session:
        session.run(max_slots, stop_when=tick)
        stats = session.finalize_stats()
        node_stats = session.collect_session_stats()

    elapsed = stats.elapsed if stats.elapsed > 0 else 1.0
    results: Dict[int, SessionResult] = {}
    xor_total = 0
    for node in sorted(node_stats):
        xor_total += int(node_stats[node]["xor_transmissions"])
    for sid in sorted(plans):
        plan = plans[sid]
        assert isinstance(plan, (CodedBroadcastPlan, CreditBroadcastPlan))
        forwarders = plan.forwarders
        times = ack_times[sid]
        generations = len(times)
        if times:
            throughput = generations * config.generation_bytes() / times[-1]
        else:
            throughput = 0.0
        average_queues: Dict[int, float] = {}
        transmissions: Dict[int, int] = {}
        delivered: List[Tuple[int, int]] = []
        participants: List[int] = []
        for node in sorted(node_stats):
            per_session = node_stats[node]["sessions"]
            if sid not in per_session:
                continue
            participants.append(node)
            entry = per_session[sid]
            average_queues[node] = float(entry["queue_time"]) / elapsed
            transmissions[node] = int(entry["transmissions"])
            delivered.extend(
                (int(i), int(j)) for i, j in entry["delivered_links"]
            )
        results[sid] = SessionResult(
            protocol=labels[sid],
            source=forwarders.source,
            destination=forwarders.destination,
            throughput_bps=throughput,
            duration=stats.elapsed,
            generations_decoded=generations,
            packets_delivered=generations * config.blocks,
            ack_times=tuple(times),
            average_queues=average_queues,
            transmissions=transmissions,
            participants=tuple(participants),
            delivered_links=tuple(sorted(delivered)),
        )

    throughputs = [results[sid].throughput_bps for sid in sorted(results)]
    return MultiSessionOutcome(
        protocol=protocol_label or "multi",
        sessions=results,
        duration=stats.elapsed,
        aggregate_throughput_bps=float(sum(throughputs)),
        fairness=jain_fairness_index(throughputs),
        transmissions=int(sum(stats.transmissions.values())),
        xor_transmissions=xor_total,
        arrivals=tuple(arrivals),
        departures=tuple(departures),
    )


def multi_session_digest(outcome: MultiSessionOutcome) -> str:
    """Canonical SHA-256 digest of a :class:`MultiSessionOutcome`.

    Per-session payloads reuse :func:`session_digest`; run-level floats
    serialize through ``repr`` — two outcomes digest equal iff every
    field is bit-identical, which is the shards=1 == shards=N oracle
    for multi-session runs.
    """
    payload = {
        "protocol": outcome.protocol,
        "sessions": {
            str(sid): session_digest(outcome.sessions[sid])
            for sid in sorted(outcome.sessions)
        },
        "duration": repr(outcome.duration),
        "aggregate_throughput_bps": repr(outcome.aggregate_throughput_bps),
        "fairness": repr(outcome.fairness),
        "transmissions": outcome.transmissions,
        "xor_transmissions": outcome.xor_transmissions,
        "arrivals": [[repr(at), sid] for at, sid in outcome.arrivals],
        "departures": [[repr(at), sid] for at, sid in outcome.departures],
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
