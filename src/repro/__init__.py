"""repro — reproduction of "Optimized Multipath Network Coding in Lossy
Wireless Networks" (Zhang & Li, ICDCS 2008).

The package implements the OMNC protocol and everything it stands on:

* :mod:`repro.coding` — random linear network coding over GF(2^8) with
  progressive Gauss-Jordan decoding and an accelerated field engine.
* :mod:`repro.topology` — random lossy-wireless topologies with an
  empirical PHY (distance -> reception probability) model.
* :mod:`repro.routing` — ETX metric, shortest paths, node selection.
* :mod:`repro.optimization` — the sUnicast LP and the distributed
  Lagrangian rate-control algorithm (paper Table 1).
* :mod:`repro.protocols` — OMNC plus the MORE, oldMORE and ETX-routing
  baselines.
* :mod:`repro.emulator` — Drift-style packet-level emulation: ideal MAC,
  lossy broadcast channel, session driver, metrics.
* :mod:`repro.experiments` — harnesses that regenerate every figure of
  the paper's evaluation (Figs. 1-4) and its headline claims.

Quickstart::

    from repro import quickstart_network, run_session_comparison

See ``examples/quickstart.py`` for an end-to-end walkthrough.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
