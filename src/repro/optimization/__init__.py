"""The OMNC optimization framework (paper Sec. 3).

* :mod:`repro.optimization.problem` — the session graph abstraction.
* :mod:`repro.optimization.sunicast` — the sUnicast LP, solved centrally
  (reference optimum), plus the min-cost variant used by oldMORE.
* :mod:`repro.optimization.subgradient` — step-size schedules.
* :mod:`repro.optimization.sub1_routing` — SUB1: shortest-path routing
  with ln-utility injection and primal recovery.
* :mod:`repro.optimization.sub2_rates` — SUB2: broadcast-rate allocation
  with congestion prices and the proximal update.
* :mod:`repro.optimization.rate_control` — the Table 1 driver.
* :mod:`repro.optimization.messages` — message-passing execution of the
  same algorithm, proving it runs on one-hop exchanges only.
* :mod:`repro.optimization.multi_session` — the multiple-unicast
  extension sketched in the paper's conclusion.
* :mod:`repro.optimization.replanning` — the Sec. 4 control-plane
  re-initiation cost model (flood + message census).
"""

from repro.optimization.multi_session import (
    MultiSessionRateControl,
    MultiSessionResult,
    MultiSunicastSolution,
    solve_multi_sunicast,
    solve_multi_sunicast_detailed,
)
from repro.optimization.problem import (
    SessionGraph,
    session_graph_from_network,
    session_graph_from_selection,
)
from repro.optimization.rate_control import (
    RateControlAlgorithm,
    RateControlConfig,
    RateControlDuals,
    RateControlResult,
    feasible_scaling,
    multi_feasible_scaling,
)
from repro.optimization.replanning import ReplanCost, replan_cost
from repro.optimization.sub1_routing import Sub1Iterate, Sub1Router
from repro.optimization.sub2_rates import Sub2Iterate, Sub2RateAllocator
from repro.optimization.subgradient import (
    ConstantStepSize,
    DiminishingStepSize,
    StepSizeSchedule,
    project_nonnegative,
)
from repro.optimization.sunicast import (
    InfeasibleSessionError,
    SUnicastSolution,
    solve_min_cost,
    solve_min_cost_routing,
    solve_sunicast,
    verify_feasibility,
)

__all__ = [
    "ConstantStepSize",
    "DiminishingStepSize",
    "InfeasibleSessionError",
    "MultiSessionRateControl",
    "MultiSessionResult",
    "MultiSunicastSolution",
    "RateControlAlgorithm",
    "RateControlConfig",
    "RateControlDuals",
    "RateControlResult",
    "ReplanCost",
    "SUnicastSolution",
    "SessionGraph",
    "StepSizeSchedule",
    "Sub1Iterate",
    "Sub1Router",
    "Sub2Iterate",
    "Sub2RateAllocator",
    "feasible_scaling",
    "multi_feasible_scaling",
    "project_nonnegative",
    "replan_cost",
    "solve_multi_sunicast",
    "solve_multi_sunicast_detailed",
    "session_graph_from_network",
    "session_graph_from_selection",
    "solve_min_cost",
    "solve_min_cost_routing",
    "solve_sunicast",
    "verify_feasibility",
]
