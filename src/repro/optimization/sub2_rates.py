"""SUB2 — broadcast/encoding rate allocation (paper Sec. 3.3).

Given the prices lambda_ij, SUB2 is

    max  sum_i w_i b_i,   w_i = sum_j lambda_ij p_ij
    s.t. b_i + sum_{j in N(i)} b_j <= C   for i in V \\ S           (4)

The paper relaxes (4) with congestion prices beta_i — "the congestion
price charged on node i for its violation of the channel capacity" —
updated by the subgradient rule (15):

    beta_i(t+1) = [beta_i(t) - theta(t) * (C - b_i - sum_j b_j)]^+

Because the inner Lagrangian (16) is linear in b, the paper adds a
proximal quadratic term -c * ||b - b(t)||^2 to make it strictly convex,
yielding the closed-form update (17):

    b_i(t+1) = clip( b_i(t) + (w_i - beta_i - sum_{j in N(i)} beta_j) / (2c),
                     0, C )

Finally primal recovery (18) averages the iterates.

Every quantity a node needs — its own w_i, its neighbors' beta_j and
b_j — travels one hop, which is why the paper calls the algorithm
distributed ("each node sends its rate and congestion price to its
neighbors").  The message-passing version lives in
:mod:`repro.optimization.messages`; this module is the numerical core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.optimization.problem import SessionGraph
from repro.optimization.recovery import IterateAverager
from repro.optimization.subgradient import project_nonnegative
from repro.topology.graph import Link


@dataclass(frozen=True)
class Sub2Iterate:
    """One SUB2 update: instantaneous rates and congestion prices."""

    rates: Dict[int, float]
    congestion_prices: Dict[int, float]
    worst_violation: float


class Sub2RateAllocator:
    """Stateful SUB2 solver with congestion pricing and primal recovery."""

    def __init__(
        self,
        graph: SessionGraph,
        *,
        proximal_c: float = 0.5,
        initial_rate: float = 0.01,
        primal_recovery: bool = True,
        recovery_tail: float = 0.5,
        initial_rates: Dict[int, float] | None = None,
        initial_beta: Dict[int, float] | None = None,
    ) -> None:
        if proximal_c <= 0:
            raise ValueError(f"proximal_c must be > 0, got {proximal_c}")
        if not 0 <= initial_rate <= 1:
            raise ValueError(f"initial_rate must be in [0, 1], got {initial_rate}")
        self._graph = graph
        self._proximal_c = proximal_c
        self._primal_recovery = primal_recovery
        # "Set elements in b ... to small positive numbers. Initialize the
        # dual variables to 0." (Table 1, step 1.)  A warm re-plan instead
        # seeds b(t) / beta(t) from a previous run's final iterate (values
        # clipped back into the feasible box; missing nodes cold-start).
        warm_rates = initial_rates or {}
        warm_beta = initial_beta or {}
        self._rates: Dict[int, float] = {
            node: min(1.0, max(0.0, warm_rates.get(node, initial_rate)))
            for node in graph.nodes
        }
        self._rates[graph.destination] = 0.0  # destination never broadcasts
        self._beta: Dict[int, float] = {
            node: max(0.0, warm_beta.get(node, 0.0))
            for node in graph.mac_constrained_nodes()
        }
        self._node_order = list(graph.nodes)
        self._averager = IterateAverager(len(self._node_order), tail=recovery_tail)
        self._last: Sub2Iterate | None = None

    @property
    def iterations(self) -> int:
        """Number of SUB2 steps taken."""
        return self._averager.count

    @property
    def last_iterate(self) -> Sub2Iterate | None:
        """The most recent per-iteration solution."""
        return self._last

    @property
    def rates(self) -> Dict[int, float]:
        """Current instantaneous broadcast rates b(t)."""
        return dict(self._rates)

    @property
    def congestion_prices(self) -> Dict[int, float]:
        """Current congestion prices beta(t)."""
        return dict(self._beta)

    @property
    def recovered_rates(self) -> Dict[int, float]:
        """b_bar(t): averaged rates (eq. 18), or the latest rates when
        primal recovery is disabled (ablation)."""
        if self.iterations == 0 or not self._primal_recovery:
            return dict(self._rates)
        averaged = self._averager.average()
        return {
            node: float(averaged[k]) for k, node in enumerate(self._node_order)
        }

    def step(
        self,
        prices: Dict[Link, float],
        step_size: float,
        union_prices: Dict[int, float] | None = None,
    ) -> Sub2Iterate:
        """One synchronized SUB2 update.

        Order follows Table 1 step 4: update the primal variable b with
        (17), then the congestion price beta with (15), both from the
        previous iteration's neighbor values.

        ``union_prices`` carries the multipliers mu_i of the broadcast
        information constraint (5b); they enter the local coefficient as
        ``mu_i * q_i`` — the reward per unit of rate for carrying the
        node's aggregate outgoing flow.
        """
        if step_size <= 0:
            raise ValueError(f"step_size must be > 0, got {step_size}")
        weights = self._link_weights(prices)
        if union_prices:
            for node, mu in union_prices.items():
                if mu < 0:
                    raise ValueError(f"negative union price on node {node}: {mu}")
                if mu:
                    weights[node] = weights.get(node, 0.0) + mu * (
                        self._graph.union_probability(node)
                    )
        old_rates = dict(self._rates)
        old_beta = dict(self._beta)

        # (17) proximal rate update, clipped to the loose bounds [0, C=1].
        for node in self._graph.nodes:
            if node == self._graph.destination:
                continue
            charge = old_beta.get(node, 0.0) + sum(
                old_beta.get(j, 0.0) for j in self._graph.neighbors[node]
            )
            gradient = weights.get(node, 0.0) - charge
            updated = old_rates[node] + gradient / (2.0 * self._proximal_c)
            self._rates[node] = min(1.0, max(0.0, updated))

        # (15) congestion price update from the *new* rates' slack.
        worst = 0.0
        for node in self._graph.mac_constrained_nodes():
            load = self._rates[node] + sum(
                self._rates[j] for j in self._graph.neighbors[node]
            )
            slack = 1.0 - load
            worst = max(worst, max(0.0, -slack))
            self._beta[node] = project_nonnegative(
                self._beta[node] - step_size * slack
            )

        self._averager.push(
            np.array([self._rates[node] for node in self._node_order])
        )
        iterate = Sub2Iterate(
            rates=dict(self._rates),
            congestion_prices=dict(self._beta),
            worst_violation=worst,
        )
        self._last = iterate
        return iterate

    def _link_weights(self, prices: Dict[Link, float]) -> Dict[int, float]:
        """w_i = sum over outgoing links of lambda_ij * p_ij."""
        weights: Dict[int, float] = {}
        for link in self._graph.links:
            i, _ = link
            price = prices.get(link, 0.0)
            if price < 0:
                raise ValueError(f"negative price on link {link}: {price}")
            weights[i] = weights.get(i, 0.0) + price * self._graph.probability[link]
        return weights
