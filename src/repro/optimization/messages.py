"""Message-passing execution of the distributed rate control algorithm.

:class:`RateControlAlgorithm` computes Table 1 with global visibility for
speed.  This module re-executes the same algorithm as genuinely local
node programs exchanging messages, demonstrating the paper's
distributedness claim and *counting the messages*, which backs the
paper's overhead discussion: "Beside the shortest path algorithm, the
only step that needs message passing is in equation (15) and (17), where
each node sends its rate and congestion price to its neighbors."

Per outer iteration:

1. **SUB1** — a distance-vector (Bellman-Ford) exchange over the link
   costs lambda_ij computes every node's cheapest route to the
   destination; the source then launches a flow-setup token that walks
   the shortest path, letting each on-path transmitter learn its x_ij.
   Every node-to-neighbor distance advertisement counts as one message.
2. **SUB2** — every node broadcasts (b_i, beta_i) to its neighbors: one
   message per node per iteration (a single local broadcast reaches all
   neighbors under the broadcast MAC).
3. **lambda update** — local at the transmitter: it knows b_i, p_ij and
   learns x_ij from the flow token.

Numerically the node programs apply the identical update formulas, so
the recovered allocation matches :class:`RateControlAlgorithm` up to
shortest-path tie-breaking (ties between equal-cost paths may resolve
differently; tests assert agreement of throughput and rates, not of
paths).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.optimization.problem import SessionGraph
from repro.optimization.rate_control import (
    RateControlConfig,
    RateControlDuals,
    RateControlResult,
)
from repro.optimization.recovery import IterateAverager
from repro.optimization.subgradient import project_nonnegative
from repro.topology.graph import Link

_INF = float("inf")


@dataclass
class MessageStats:
    """Counts of protocol messages exchanged, by purpose."""

    distance_advertisements: int = 0
    flow_setup_tokens: int = 0
    rate_price_broadcasts: int = 0

    @property
    def total(self) -> int:
        """All messages across purposes."""
        return (
            self.distance_advertisements
            + self.flow_setup_tokens
            + self.rate_price_broadcasts
        )


@dataclass
class _NodeState:
    """Local state of one node program."""

    node: int
    rate: float
    beta: float = 0.0
    # Outgoing-link multipliers owned by this transmitter.
    prices: Dict[Link, float] = field(default_factory=dict)
    # Broadcast-information multiplier mu_i of constraint (5b) — also
    # owned locally: its subgradient b_i q_i - sum_j x_ij uses only
    # quantities the transmitter already knows.
    union_price: float = 0.0
    # Last flow assignment learned from the flow-setup token.
    flows: Dict[Link, float] = field(default_factory=dict)
    # Distance-vector state for SUB1.
    distance: float = _INF
    next_hop: int | None = None
    # Neighbor values received last exchange.
    neighbor_rates: Dict[int, float] = field(default_factory=dict)
    neighbor_betas: Dict[int, float] = field(default_factory=dict)


class MessagePassingRateControl:
    """Run Table 1 as local node programs over simulated messages."""

    def __init__(
        self,
        graph: SessionGraph,
        config: RateControlConfig | None = None,
    ) -> None:
        self._graph = graph
        self._config = config or RateControlConfig()
        self._stats = MessageStats()
        self._iteration = 0
        self._nodes: Dict[int, _NodeState] = {}
        for node in graph.nodes:
            state = _NodeState(node=node, rate=self._config.initial_rate)
            for link in graph.out_links(node):
                state.prices[link] = 0.0
                state.flows[link] = 0.0
            self._nodes[node] = state
        self._nodes[graph.destination].rate = 0.0
        self._flow_averager = IterateAverager(
            len(graph.links), tail=self._config.recovery_tail
        )
        self._rate_averager = IterateAverager(
            len(graph.nodes), tail=self._config.recovery_tail
        )
        self._link_order = list(graph.links)
        self._node_order = list(graph.nodes)
        self._rate_history: List[Dict[int, float]] = []
        self._gamma_history: List[float] = []

    @property
    def stats(self) -> MessageStats:
        """Messages exchanged so far."""
        return self._stats

    @property
    def iteration(self) -> int:
        """Outer iterations executed."""
        return self._iteration

    # ------------------------------------------------------------------
    # Phases of one outer iteration
    # ------------------------------------------------------------------
    def _sub1_distance_exchange(self) -> None:
        """Distributed Bellman-Ford on the current lambda costs."""
        graph = self._graph
        for state in self._nodes.values():
            state.distance = _INF
            state.next_hop = None
        self._nodes[graph.destination].distance = 0.0
        # Synchronous rounds; each round every node advertises its current
        # distance to neighbors (one broadcast = one message per node that
        # has a finite distance).
        for _ in range(len(graph.nodes)):
            changed = False
            snapshot = {n: s.distance for n, s in self._nodes.items()}
            advertisers = sum(1 for d in snapshot.values() if d < _INF)
            self._stats.distance_advertisements += advertisers
            for link in graph.links:
                i, j = link
                through = snapshot[j]
                if through == _INF:
                    continue
                owner = self._nodes[i]
                cost = owner.prices[link] + owner.union_price + through
                state = self._nodes[i]
                if cost < state.distance - 1e-15:
                    state.distance = cost
                    state.next_hop = j
                    changed = True
            if not changed:
                break

    def _sub1_flow_setup(self) -> Tuple[Dict[Link, float], float]:
        """Walk the flow-setup token from source to destination."""
        graph = self._graph
        source_state = self._nodes[graph.source]
        if source_state.distance == _INF:
            raise RuntimeError("destination unreachable in session graph")
        path_cost = source_state.distance
        cap = self._config.gamma_cap
        gamma = cap if path_cost <= 1.0 / cap else 1.0 / path_cost
        flows = {link: 0.0 for link in graph.links}
        node = graph.source
        visited = {node}
        while node != graph.destination:
            state = self._nodes[node]
            nxt = state.next_hop
            assert nxt is not None and nxt not in visited
            flows[(node, nxt)] = gamma
            self._stats.flow_setup_tokens += 1
            node = nxt
            visited.add(node)
        # Nodes record their own outgoing assignment; off-path links are 0.
        for state in self._nodes.values():
            for link in state.flows:
                state.flows[link] = flows[link]
        return flows, gamma

    def _sub2_exchange_and_update(self, theta: float) -> None:
        """(17) rate update and (15) price update from neighbor messages."""
        graph = self._graph
        # Everyone broadcasts (b, beta) once; neighbors capture it.
        for node, state in self._nodes.items():
            self._stats.rate_price_broadcasts += 1
            for j in graph.neighbors[node]:
                peer = self._nodes[j]
                peer.neighbor_rates[node] = state.rate
                peer.neighbor_betas[node] = state.beta
        # (17): proximal ascent on the local Lagrangian coefficient.
        new_rates: Dict[int, float] = {}
        for node, state in self._nodes.items():
            if node == graph.destination:
                new_rates[node] = 0.0
                continue
            w = sum(
                state.prices[link] * graph.probability[link]
                for link in state.prices
            )
            if state.prices:
                w += state.union_price * graph.union_probability(node)
            charge = state.beta + sum(
                state.neighbor_betas.get(j, 0.0) for j in graph.neighbors[node]
            )
            updated = state.rate + (w - charge) / (2.0 * self._config.proximal_c)
            new_rates[node] = min(1.0, max(0.0, updated))
        for node, rate in new_rates.items():
            self._nodes[node].rate = rate
        # A second (b) exchange so beta sees this iteration's rates, as in
        # the reference implementation's update order.
        for node, state in self._nodes.items():
            self._stats.rate_price_broadcasts += 1
            for j in graph.neighbors[node]:
                self._nodes[j].neighbor_rates[node] = state.rate
        # (15): congestion price from the neighborhood load.
        for node in graph.mac_constrained_nodes():
            state = self._nodes[node]
            load = state.rate + sum(
                state.neighbor_rates.get(j, 0.0) for j in graph.neighbors[node]
            )
            state.beta = project_nonnegative(state.beta - theta * (1.0 - load))

    def _lambda_update(self, theta: float) -> None:
        """(8) plus the local (5b) multiplier: both at the transmitter."""
        graph = self._graph
        for node, state in self._nodes.items():
            for link, price in state.prices.items():
                surplus = (
                    state.rate * graph.probability[link] - state.flows[link]
                )
                state.prices[link] = project_nonnegative(price - theta * surplus)
            if state.prices:
                outflow = sum(state.flows[link] for link in state.flows)
                surplus = (
                    state.rate * graph.union_probability(node) - outflow
                )
                state.union_price = project_nonnegative(
                    state.union_price - theta * surplus
                )

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------
    def step(self) -> None:
        """One outer iteration (Table 1 steps 3-5) over messages."""
        theta = self._config.step_size(self._iteration)
        self._sub1_distance_exchange()
        flows, _ = self._sub1_flow_setup()
        self._sub2_exchange_and_update(theta)
        self._lambda_update(theta)
        self._flow_averager.push(
            np.array([flows[link] for link in self._link_order])
        )
        self._rate_averager.push(
            np.array([self._nodes[n].rate for n in self._node_order])
        )
        self._rate_history.append(self.recovered_rates())
        self._gamma_history.append(self._recovered_throughput())
        self._iteration += 1

    def recovered_rates(self) -> Dict[int, float]:
        """Current averaged broadcast rates."""
        if self._rate_averager.count == 0:
            return {n: self._nodes[n].rate for n in self._node_order}
        averaged = self._rate_averager.average()
        return {n: float(averaged[k]) for k, n in enumerate(self._node_order)}

    def recovered_flows(self) -> Dict[Link, float]:
        """Current averaged link flows."""
        averaged = self._flow_averager.average()
        return {l: float(averaged[k]) for k, l in enumerate(self._link_order)}

    def _recovered_throughput(self) -> float:
        flows = self.recovered_flows()
        out = sum(flows[l] for l in self._graph.out_links(self._graph.source))
        back = sum(flows[l] for l in self._graph.in_links(self._graph.source))
        return out - back

    def run(self) -> RateControlResult:
        """Iterate to convergence; same stopping rule as the fast driver."""
        config = self._config
        stable = 0
        converged = False
        previous: Dict[int, float] | None = None
        while self._iteration < config.max_iterations:
            self.step()
            recovered = self.recovered_rates()
            if previous is not None:
                delta = max(abs(recovered[n] - previous[n]) for n in recovered)
                scale = max(max(recovered.values()), 1e-9)
                if delta / scale < config.tolerance:
                    stable += 1
                else:
                    stable = 0
                if self._iteration >= config.min_iterations and stable >= config.patience:
                    converged = True
                    break
            previous = recovered
        link_prices: Dict[Link, float] = {}
        for state in self._nodes.values():
            link_prices.update(state.prices)
        return RateControlResult(
            broadcast_rates=self.recovered_rates(),
            flows=self.recovered_flows(),
            throughput=self._recovered_throughput(),
            iterations=self._iteration,
            converged=converged,
            rate_history=tuple(self._rate_history),
            gamma_history=tuple(self._gamma_history),
            capacity=self._graph.capacity,
            duals=RateControlDuals(
                link_prices=link_prices,
                congestion_prices={
                    n: s.beta for n, s in self._nodes.items()
                },
                union_prices={
                    n: s.union_price for n, s in self._nodes.items()
                },
                rates={n: s.rate for n, s in self._nodes.items()},
                iteration=self._iteration,
            ),
        )
