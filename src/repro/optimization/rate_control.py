"""The distributed rate control algorithm — paper Table 1.

    1. Initialize parameters.  Set elements in b, x to small positive
       numbers.  Initialize the dual variables to 0.
    2. Repeat until convergence:
    3.   Solve SUB1: shortest path with link cost lambda_ij; update the
         information rate x_ij by (12)(13).
    4.   Solve SUB2: update b_i with (17)(18); update the congestion
         price beta_i with (15); send beta_i, b_i to neighbors.
    5.   Update the Lagrange multiplier lambda_ij with (8):
         lambda_ij(t+1) = [lambda_ij(t) - theta(t)(b_i p_ij - x_ij)]^+

:class:`RateControlAlgorithm` composes :class:`~repro.optimization.
sub1_routing.Sub1Router` and :class:`~repro.optimization.sub2_rates.
Sub2RateAllocator` exactly this way and records per-iteration history so
the Fig. 1 convergence plot can be regenerated.

The result's rates are capacity-normalized; use
:meth:`RateControlResult.rates_bytes_per_second` for engineering units.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro import obs
from repro.optimization.problem import SessionGraph
from repro.optimization.sub1_routing import Sub1Router
from repro.optimization.sub2_rates import Sub2RateAllocator
from repro.optimization.subgradient import (
    DiminishingStepSize,
    StepSizeSchedule,
    project_nonnegative,
)
from repro.optimization.sunicast import SUnicastSolution
from repro.topology.graph import Link


@dataclass(frozen=True)
class RateControlConfig:
    """Tuning knobs of the distributed algorithm.

    Defaults follow the paper where it is explicit (step-size constants
    from Fig. 1) and sensible engineering choices elsewhere.

    Attributes:
        step_size: theta(t) schedule for both multiplier updates.  The
            default is theta(t) = 1 / (0.5 + 0.1 t): the paper's A=1 and
            B=0.5 with a gentler decay constant.  The paper's Fig. 1 uses
            C=10 with *unnormalized* rates (10^5 B/s scale); in our
            capacity-normalized units (subgradients of order 1) that
            literal constant would freeze the multipliers after a handful
            of iterations, so the decay is rescaled to preserve the same
            total multiplier travel.
        proximal_c: the "arbitrarily small positive constant" c of the
            proximal term in (17); smaller tracks the optimum closer but
            oscillates more.
        initial_rate: the "small positive numbers" b starts from.
        gamma_cap: upper bound on per-iteration injected flow (normalized
            capacity units).
        max_iterations: hard stop.
        min_iterations: do not test convergence before this many steps.
        tolerance: relative-change threshold on the recovered rates.
        patience: consecutive below-tolerance iterations required to
            declare convergence.
        primal_recovery: disable to ablate eqs. (13)/(18).
        recovery_tail: fraction of recent iterates entering the primal
            recovery average (1.0 = paper-literal full average; see
            :mod:`repro.optimization.recovery`).
    """

    step_size: StepSizeSchedule = field(
        default_factory=lambda: DiminishingStepSize(a=1.0, b=0.5, c=0.1)
    )
    proximal_c: float = 0.5
    initial_rate: float = 0.01
    gamma_cap: float = 1.0
    max_iterations: int = 400
    min_iterations: int = 20
    tolerance: float = 8e-3
    patience: int = 4
    primal_recovery: bool = True
    recovery_tail: float = 0.5

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.min_iterations < 1 or self.min_iterations > self.max_iterations:
            raise ValueError("min_iterations must be in [1, max_iterations]")
        if self.tolerance <= 0:
            raise ValueError("tolerance must be > 0")
        if self.patience < 1:
            raise ValueError("patience must be >= 1")
        if not 0.0 < self.recovery_tail <= 1.0:
            raise ValueError("recovery_tail must be in (0, 1]")


@dataclass(frozen=True)
class RateControlDuals:
    """Final optimizer state a re-plan can warm-start from.

    The paper concedes (Sec. 4) that when link qualities drift "the node
    selection and rate allocation have to be re-initiated".  After mild
    drift the optimum moves little, so restarting the subgradient method
    from the previous dual prices — instead of Table 1 step 1's zeros —
    re-converges in far fewer iterations.  This is the *public* warm-start
    surface: everything here is read off :class:`RateControlResult`, never
    out of solver internals.

    Attributes:
        link_prices: final Lagrange multipliers lambda_ij of the
            loss-coupling constraint (5).
        congestion_prices: final congestion prices beta_i of the MAC
            constraint (4).
        union_prices: final multipliers mu_i of the broadcast information
            constraint (5b).
        rates: final instantaneous broadcast rates b(t) (primal
            warm start for the proximal update (17)).
        iteration: outer iterations the producing run had executed —
            continuing the diminishing step-size schedule theta(t) from
            here keeps the warm duals from being kicked away by the large
            early steps.
    """

    link_prices: Dict[Link, float]
    congestion_prices: Dict[int, float]
    union_prices: Dict[int, float]
    rates: Dict[int, float]
    iteration: int

    def __post_init__(self) -> None:
        for label, prices in (
            ("link", self.link_prices),
            ("congestion", self.congestion_prices),
            ("union", self.union_prices),
        ):
            for key, value in prices.items():
                if value < 0:
                    raise ValueError(f"negative {label} price on {key}: {value}")
        if self.iteration < 0:
            raise ValueError(f"iteration must be >= 0, got {self.iteration}")


@dataclass(frozen=True)
class RateControlResult:
    """Outcome of one rate-control run.

    Attributes:
        broadcast_rates: recovered b_bar per node (normalized).
        flows: recovered x_bar per link (normalized).
        throughput: recovered end-to-end rate gamma_bar (normalized) —
            measured as net recovered flow out of the source.
        iterations: outer iterations executed.
        converged: whether the stopping rule fired before the cap.
        rate_history: per-iteration recovered b_bar snapshots (Fig. 1).
        gamma_history: per-iteration recovered throughput.
        capacity: channel capacity for denormalization.
        duals: final dual prices (lambda, beta, mu) and primal iterate —
            pass as ``warm_start`` to a later run on a drifted topology.
    """

    broadcast_rates: Dict[int, float]
    flows: Dict[Link, float]
    throughput: float
    iterations: int
    converged: bool
    rate_history: Tuple[Dict[int, float], ...]
    gamma_history: Tuple[float, ...]
    capacity: float
    duals: RateControlDuals | None = None

    @property
    def link_prices(self) -> Dict[Link, float]:
        """Final lambda_ij (empty when the run recorded no duals)."""
        return dict(self.duals.link_prices) if self.duals else {}

    @property
    def congestion_prices(self) -> Dict[int, float]:
        """Final beta_i (empty when the run recorded no duals)."""
        return dict(self.duals.congestion_prices) if self.duals else {}

    def rates_bytes_per_second(self) -> Dict[int, float]:
        """Broadcast rates in bytes/second."""
        return {n: b * self.capacity for n, b in self.broadcast_rates.items()}

    def throughput_bytes_per_second(self) -> float:
        """End-to-end rate in bytes/second."""
        return self.throughput * self.capacity

    def as_solution(self) -> SUnicastSolution:
        """View the recovered allocation as a solver solution (for the
        shared feasibility checker)."""
        return SUnicastSolution(
            throughput=self.throughput,
            flows=dict(self.flows),
            broadcast_rates=dict(self.broadcast_rates),
            objective=self.throughput,
        )


class RateControlAlgorithm:
    """Run Table 1 on one session graph.

    With observability on, each outer iteration is exposed twice over:
    aggregates under the ``optimizer.`` namespace (iteration counter,
    step-size gauge, dual-price gauges, primal-residual histogram) and a
    full ``rate_control.iteration`` trace record carrying the lambda /
    beta / mu trajectories — the machine-readable form of Fig. 1.
    """

    def __init__(
        self,
        graph: SessionGraph,
        config: RateControlConfig | None = None,
        *,
        warm_start: RateControlDuals | None = None,
        registry: obs.MetricsRegistry | None = None,
        tracer: obs.EventTracer | None = None,
    ) -> None:
        self._graph = graph
        self._config = config or RateControlConfig()
        self._sub1 = Sub1Router(
            graph,
            gamma_cap=self._config.gamma_cap,
            primal_recovery=self._config.primal_recovery,
            recovery_tail=self._config.recovery_tail,
        )
        self._sub2 = Sub2RateAllocator(
            graph,
            proximal_c=self._config.proximal_c,
            initial_rate=self._config.initial_rate,
            primal_recovery=self._config.primal_recovery,
            recovery_tail=self._config.recovery_tail,
            initial_rates=warm_start.rates if warm_start else None,
            initial_beta=warm_start.congestion_prices if warm_start else None,
        )
        # Warm start (re-planning after drift): seed the duals from the
        # previous run's final prices instead of Table 1 step 1's zeros.
        # Keys are matched by .get() — drift preserves the link set, but a
        # changed forwarder DAG simply leaves the new links at 0.
        warm_links = warm_start.link_prices if warm_start else {}
        warm_union = warm_start.union_prices if warm_start else {}
        self._prices: Dict[Link, float] = {
            link: warm_links.get(link, 0.0) for link in graph.links
        }
        # Multipliers of the broadcast information constraint (5b):
        # sum_j x_ij <= b_i * q_i (see repro.optimization.sunicast).
        self._union_prices: Dict[int, float] = {
            node: warm_union.get(node, 0.0) for node in graph.transmitters()
        }
        # Continue the diminishing step-size schedule where the previous
        # run stopped: replaying the large early theta(t) would throw the
        # warm duals right back to a cold trajectory.
        self._step_offset = warm_start.iteration if warm_start else 0
        self._iteration = 0
        scope = obs.resolve(registry).attach("optimizer")
        self._tracer = obs.resolve_tracer(tracer)
        self._observing = scope.enabled or self._tracer.enabled
        self._m_iterations = scope.counter(
            "iterations", "outer subgradient iterations executed"
        )
        self._m_theta = scope.gauge("step_size", "current step size theta(t)")
        self._m_lambda_max = scope.gauge(
            "lambda_max", "largest link price lambda_ij"
        )
        self._m_beta_max = scope.gauge(
            "beta_max", "largest congestion price beta_i"
        )
        self._m_residual = scope.histogram(
            "primal_residual",
            "worst violation of x_ij <= b_i p_ij at the recovered primal point",
        )

    @property
    def prices(self) -> Dict[Link, float]:
        """Current Lagrange multipliers lambda_ij."""
        return dict(self._prices)

    @property
    def union_prices(self) -> Dict[int, float]:
        """Current broadcast-information multipliers mu_i."""
        return dict(self._union_prices)

    @property
    def iteration(self) -> int:
        """Outer iterations executed so far."""
        return self._iteration

    def step(self) -> None:
        """One outer iteration: SUB1, SUB2, multiplier update (steps 3-5)."""
        theta = self._config.step_size(self._iteration + self._step_offset)
        # SUB1 sees the total price of routing one unit over link (i, j):
        # the per-link price lambda_ij plus the transmitter's aggregate
        # broadcast-information price mu_i.
        effective = {
            link: self._prices[link] + self._union_prices.get(link[0], 0.0)
            for link in self._graph.links
        }
        sub1 = self._sub1.step(effective)
        sub2 = self._sub2.step(self._prices, theta, self._union_prices)
        # (8): the subgradient of the relaxed constraint (5) at the
        # instantaneous primal solution.
        for link in self._graph.links:
            i, _ = link
            surplus = sub2.rates[i] * self._graph.probability[link] - sub1.flows[link]
            self._prices[link] = project_nonnegative(
                self._prices[link] - theta * surplus
            )
        # Same subgradient form for (5b): surplus = b_i q_i - sum_j x_ij.
        for node in self._union_prices:
            outflow = sum(
                sub1.flows[link] for link in self._graph.out_links(node)
            )
            surplus = (
                sub2.rates[node] * self._graph.union_probability(node) - outflow
            )
            self._union_prices[node] = project_nonnegative(
                self._union_prices[node] - theta * surplus
            )
        self._iteration += 1
        if self._observing:
            self._observe_iteration(theta, sub2.congestion_prices)

    def run(self) -> RateControlResult:
        """Iterate to convergence and return the recovered allocation."""
        config = self._config
        rate_history: List[Dict[int, float]] = []
        gamma_history: List[float] = []
        stable_iterations = 0
        converged = False
        previous_rates: Dict[int, float] | None = None

        while self._iteration < config.max_iterations:
            self.step()
            recovered = self._sub2.recovered_rates
            rate_history.append(recovered)
            gamma_history.append(self._recovered_throughput())
            if previous_rates is not None:
                delta = max(
                    abs(recovered[n] - previous_rates[n]) for n in recovered
                )
                scale = max(max(recovered.values()), 1e-9)
                if delta / scale < config.tolerance:
                    stable_iterations += 1
                else:
                    stable_iterations = 0
                if (
                    self._iteration >= config.min_iterations
                    and stable_iterations >= config.patience
                ):
                    converged = True
                    break
            previous_rates = recovered

        return RateControlResult(
            broadcast_rates=self._sub2.recovered_rates,
            flows=self._sub1.recovered_flows,
            throughput=self._recovered_throughput(),
            iterations=self._iteration,
            converged=converged,
            rate_history=tuple(rate_history),
            gamma_history=tuple(gamma_history),
            capacity=self._graph.capacity,
            duals=RateControlDuals(
                link_prices=dict(self._prices),
                congestion_prices=self._sub2.congestion_prices,
                union_prices=dict(self._union_prices),
                rates=self._sub2.rates,
                iteration=self._iteration + self._step_offset,
            ),
        )

    def _observe_iteration(
        self, theta: float, congestion_prices: Dict[int, float]
    ) -> None:
        """Publish one iteration's dual state and primal-recovery residual."""
        flows = self._sub1.recovered_flows
        rates = self._sub2.recovered_rates
        residual = 0.0
        for link, flow in flows.items():
            slack = flow - rates.get(link[0], 0.0) * self._graph.probability[link]
            if slack > residual:
                residual = slack
        lambda_values = self._prices.values()
        beta_values = congestion_prices.values()
        mu_values = self._union_prices.values()
        self._m_iterations.inc()
        self._m_theta.set(theta)
        self._m_lambda_max.set(max(lambda_values, default=0.0))
        self._m_beta_max.set(max(beta_values, default=0.0))
        self._m_residual.observe(residual)
        self._tracer.emit(
            "rate_control.iteration",
            t=self._iteration,
            theta=theta,
            lambda_mean=(
                sum(lambda_values) / len(self._prices) if self._prices else 0.0
            ),
            lambda_max=max(lambda_values, default=0.0),
            beta_mean=(
                sum(beta_values) / len(congestion_prices)
                if congestion_prices
                else 0.0
            ),
            beta_max=max(beta_values, default=0.0),
            mu_max=max(mu_values, default=0.0),
            residual=residual,
        )

    def _recovered_throughput(self) -> float:
        """Net recovered flow out of the source — the usable gamma_bar."""
        flows = self._sub1.recovered_flows
        out = sum(flows[l] for l in self._graph.out_links(self._graph.source))
        back = sum(flows[l] for l in self._graph.in_links(self._graph.source))
        return out - back


def feasible_scaling(
    graph: SessionGraph,
    rates: Dict[int, float],
    *,
    saturate: bool = False,
    max_scale_up: float = 2.0,
) -> Tuple[Dict[int, float], float]:
    """Rescale rates against the MAC constraint (4).

    "Feasible schedules can be generated by rescaling the broadcast rate"
    (Sec. 3.2): if any receiver's neighborhood load exceeds the capacity,
    divide every rate by the worst overload factor.

    With ``saturate=True`` the vector is also scaled *up* (bounded by
    ``max_scale_up``) until the tightest neighborhood reaches the
    capacity.  The paper frames the allocation's value as the rate
    *vector* ("rather than to compute the absolute optimal throughput
    value", Sec. 3.2); when the binding constraint was informational
    (5b) rather than the MAC, saturating preserves the optimized
    proportions while using the airtime the schedule actually has —
    headroom that covers the redundancy real coded streams incur.

    Returns the scaled rates and the divisor applied (< 1 means the
    vector was scaled up).
    """
    worst = 0.0
    for node in graph.mac_constrained_nodes():
        load = rates.get(node, 0.0) + sum(
            rates.get(j, 0.0) for j in graph.neighbors[node]
        )
        worst = max(worst, load)
    if worst <= 0.0:
        return dict(rates), 1.0
    if worst > 1.0:
        factor = worst
    elif saturate:
        factor = max(worst, 1.0 / max_scale_up)
    else:
        factor = 1.0
    if factor == 1.0:  # repro: ignore[RPR004] exact sentinel set above
        return dict(rates), 1.0
    return {n: min(1.0, b / factor) for n, b in rates.items()}, factor


def multi_feasible_scaling(
    graphs: Sequence[SessionGraph],
    rates_list: Sequence[Dict[int, float]],
    *,
    saturate: bool = False,
    max_scale_up: float = 2.0,
) -> Tuple[List[Dict[int, float]], float]:
    """Jointly rescale several sessions against the *shared* MAC.

    The multi-session MAC constraint charges each receiver's
    neighborhood with the summed load of every session
    (:mod:`repro.optimization.multi_session`), so feasibility repair
    must use one common divisor: scaling sessions independently would
    re-break the coupling and skew the optimizer's inter-session
    proportions.  Semantics otherwise match :func:`feasible_scaling`
    (scale down by the worst overload; with ``saturate=True`` scale up
    to fill the tightest neighborhood, bounded by ``max_scale_up``).

    Returns the scaled per-session rates and the common divisor.
    """
    if len(graphs) != len(rates_list):
        raise ValueError(
            f"got {len(graphs)} graphs but {len(rates_list)} rate vectors"
        )
    constrained = sorted(
        {node for graph in graphs for node in graph.mac_constrained_nodes()}
    )
    worst = 0.0
    for node in constrained:
        load = 0.0
        for graph, rates in zip(graphs, rates_list):
            if node not in graph.nodes:
                continue
            load += rates.get(node, 0.0) + sum(
                rates.get(j, 0.0) for j in graph.neighbors[node]
            )
        worst = max(worst, load)
    if worst <= 0.0:
        return [dict(rates) for rates in rates_list], 1.0
    if worst > 1.0:
        factor = worst
    elif saturate:
        factor = max(worst, 1.0 / max_scale_up)
    else:
        factor = 1.0
    if factor == 1.0:  # repro: ignore[RPR004] exact sentinel set above
        return [dict(rates) for rates in rates_list], 1.0
    return [
        {n: min(1.0, b / factor) for n, b in rates.items()}
        for rates in rates_list
    ], factor
