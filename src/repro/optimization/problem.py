"""The session graph: the optimization's view of one unicast session.

After node selection, the paper works on "the resulting topology graph
G(V, E), where V is the set of selected nodes involved in the unicast and
E is the set of directed links" (Sec. 3.2).  :class:`SessionGraph`
captures exactly that, plus the two pieces of context the constraints
need: reception probabilities p_ij on links, and neighborhoods N(i) among
the selected nodes for the broadcast MAC constraint.

All rates inside the optimization are **normalized by the channel
capacity C**, so capacities are 1.0 and throughputs live in [0, 1].  This
makes the paper's dimensionless step-size constants (A=1, B=0.5, C=10 in
Fig. 1) directly applicable; :meth:`SessionGraph.denormalize_rates`
converts results back to bytes/second.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Tuple

from repro.routing.node_selection import ForwarderSet
from repro.topology.graph import Link, WirelessNetwork


@dataclass(frozen=True)
class SessionGraph:
    """Immutable optimization input for one unicast session.

    Attributes:
        source: source node id.
        destination: destination node id.
        nodes: selected nodes (includes source and destination).
        links: directed links (i, j) available to the session.
        probability: p_ij per link.
        neighbors: N(i) restricted to selected nodes — the transmitters
            node i competes with under the broadcast MAC constraint.
        capacity: the MAC channel capacity in bytes/second (used only for
            denormalization; the optimization itself is capacity-1).
    """

    source: int
    destination: int
    nodes: Tuple[int, ...]
    links: Tuple[Link, ...]
    probability: Mapping[Link, float]
    neighbors: Mapping[int, FrozenSet[int]]
    capacity: float

    def __post_init__(self) -> None:
        node_set = set(self.nodes)
        if self.source not in node_set or self.destination not in node_set:
            raise ValueError("source and destination must be selected nodes")
        if self.source == self.destination:
            raise ValueError("source and destination must differ")
        if self.capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {self.capacity}")
        for (i, j) in self.links:
            if i not in node_set or j not in node_set:
                raise ValueError(f"link ({i},{j}) references unselected nodes")
            p = self.probability.get((i, j), 0.0)
            if not 0.0 < p <= 1.0:
                raise ValueError(f"link ({i},{j}) needs probability in (0,1], got {p}")

    @property
    def node_count(self) -> int:
        """|V| of the session graph."""
        return len(self.nodes)

    @property
    def link_count(self) -> int:
        """|E| of the session graph."""
        return len(self.links)

    def out_links(self, node: int) -> Tuple[Link, ...]:
        """Directed links leaving ``node``."""
        return tuple((i, j) for (i, j) in self.links if i == node)

    def in_links(self, node: int) -> Tuple[Link, ...]:
        """Directed links entering ``node``."""
        return tuple((i, j) for (i, j) in self.links if j == node)

    def supply(self, node: int) -> int:
        """The sigma(i) of flow conservation: +1 source, -1 destination."""
        if node == self.source:
            return 1
        if node == self.destination:
            return -1
        return 0

    def transmitters(self) -> Tuple[int, ...]:
        """Nodes that may broadcast: everyone with an outgoing link."""
        return tuple(sorted({i for (i, _) in self.links}))

    def union_probability(self, node: int) -> float:
        """q_i = 1 - prod_j (1 - p_ij): probability one broadcast by
        ``node`` reaches at least one downstream session node.

        This is the hyperarc capacity coefficient of the broadcast
        information constraint (5b); see
        :func:`repro.optimization.sunicast.solve_sunicast`.
        """
        miss = 1.0
        for link in self.out_links(node):
            miss *= 1.0 - self.probability[link]
        return 1.0 - miss

    def mac_constrained_nodes(self) -> Tuple[int, ...]:
        """Nodes carrying a broadcast MAC constraint: i in V \\ {S}.

        The paper applies constraint (4) to "any receiver (and possibly
        transmitter) i in V\\S".
        """
        return tuple(n for n in self.nodes if n != self.source)

    def denormalize_rates(self, rates: Dict[int, float]) -> Dict[int, float]:
        """Convert capacity-normalized node rates to bytes/second."""
        return {node: rate * self.capacity for node, rate in rates.items()}

    def denormalize_flows(self, flows: Dict[Link, float]) -> Dict[Link, float]:
        """Convert capacity-normalized link flows to bytes/second."""
        return {link: rate * self.capacity for link, rate in flows.items()}


def session_graph_from_selection(
    network: WirelessNetwork,
    forwarders: ForwarderSet,
    *,
    probabilities: Mapping[Link, float] | None = None,
) -> SessionGraph:
    """Build the optimization input from a node-selection result.

    ``probabilities`` may supply measured link qualities; the default uses
    the network's ground truth.  Only the selection's DAG links enter E —
    information flows strictly toward the destination, matching the
    paper's "each relay is closer to the destination than its
    predecessor" assumption.
    """
    prob: Dict[Link, float] = {}
    for (i, j) in forwarders.dag_links:
        if probabilities is not None:
            p = probabilities.get((i, j), 0.0)
        else:
            p = network.probability(i, j)
        if p > 0.0:
            prob[(i, j)] = float(p)
    links = tuple(sorted(prob))
    neighbors = {
        node: network.neighbors(node) & forwarders.nodes
        for node in forwarders.nodes
    }
    return SessionGraph(
        source=forwarders.source,
        destination=forwarders.destination,
        nodes=tuple(sorted(forwarders.nodes)),
        links=links,
        probability=prob,
        neighbors=neighbors,
        capacity=network.capacity,
    )


def session_graph_from_network(
    network: WirelessNetwork, source: int, destination: int
) -> SessionGraph:
    """Session graph over the *whole* network (no node selection).

    Useful for tiny hand-built topologies where every node is already a
    useful forwarder (the Fig. 1 sample, the diamond).
    """
    prob = {(i, j): p for i, j, p in network.links()}
    neighbors = {node: network.neighbors(node) for node in network.nodes()}
    return SessionGraph(
        source=source,
        destination=destination,
        nodes=tuple(network.nodes()),
        links=tuple(sorted(prob)),
        probability=prob,
        neighbors=neighbors,
        capacity=network.capacity,
    )
