"""Step-size schedules for the subgradient iterations.

The paper adopts "diminishing step sizes that guarantee convergence
regardless of the initial value of lambda.  Specifically,
theta(t) = A / (B + C*t) where A, B and C are tunable parameters that
regulate convergence speed" (Sec. 3.3), with A=1, B=0.5, C=10 in the
Fig. 1 showcase.

A constant schedule is provided for the step-size ablation benchmark:
constant steps only reach a neighborhood of the optimum, which the
ablation makes visible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_non_negative, check_positive


class StepSizeSchedule:
    """Interface: map iteration index t (0-based) to a step size."""

    def __call__(self, t: int) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class DiminishingStepSize(StepSizeSchedule):
    """theta(t) = a / (b + c * t) — the paper's schedule.

    It is square-summable-but-not-summable for c > 0, the classic
    condition under which dual subgradient iterates converge to an
    optimal dual solution.
    """

    a: float = 1.0
    b: float = 0.5
    c: float = 10.0

    def __post_init__(self) -> None:
        check_positive("a", self.a)
        check_positive("b", self.b)
        check_non_negative("c", self.c)

    def __call__(self, t: int) -> float:
        if t < 0:
            raise ValueError(f"iteration index must be >= 0, got {t}")
        return self.a / (self.b + self.c * t)


@dataclass(frozen=True)
class ConstantStepSize(StepSizeSchedule):
    """theta(t) = value; converges only to a neighborhood (ablation)."""

    value: float = 0.05

    def __post_init__(self) -> None:
        check_positive("value", self.value)

    def __call__(self, t: int) -> float:
        if t < 0:
            raise ValueError(f"iteration index must be >= 0, got {t}")
        return self.value


def project_nonnegative(value: float) -> float:
    """The [.]^+ projection used by every multiplier update."""
    return value if value > 0.0 else 0.0
