"""The sUnicast linear program (paper Sec. 3.2) and its centralized solver.

    maximize   gamma                                               (1)
    subject to sum_j x_ij - sum_j x_ji = gamma * sigma(i)          (2)
               x_ij >= 0                                           (3)
               b_i + sum_{j in N(i)} b_j <= C   for i in V \\ S     (4)
               b_i * p_ij >= x_ij                                  (5)
               0 <= b_i <= C

(The explicit bound b_i <= C is the "loose lower and upper bounds" the
paper adds for boundedness; it is implied by (4) for any node with a
neighbor.)

The LP is solved centrally with scipy's HiGHS backend.  It serves three
roles in this repository: the reference optimum that the distributed
algorithm must approach, the oldMORE-style planner reuses its matrix
builder with a different objective, and the throughput predictions the
paper compares emulated results against ("the actual emulated throughput
of OMNC tends to be lower than the optimized throughput computed by the
sUnicast framework", Sec. 5).

All rates are capacity-normalized (C = 1); see
:mod:`repro.optimization.problem`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csr_matrix

from repro.optimization.problem import SessionGraph
from repro.topology.graph import Link


@dataclass(frozen=True)
class SUnicastSolution:
    """A solved rate allocation.

    Attributes:
        throughput: optimal gamma (normalized; multiply by capacity for
            bytes/second).
        flows: information rate x_ij per link (normalized).
        broadcast_rates: broadcast rate b_i per node (normalized).
        objective: raw objective value (equals throughput for sUnicast;
            total transmission cost for the min-cost variant).
    """

    throughput: float
    flows: Dict[Link, float]
    broadcast_rates: Dict[int, float]
    objective: float

    def active_links(self, threshold: float = 1e-6) -> Tuple[Link, ...]:
        """Links carrying more than ``threshold`` normalized flow."""
        return tuple(
            sorted(link for link, x in self.flows.items() if x > threshold)
        )

    def active_nodes(self, threshold: float = 1e-6) -> Tuple[int, ...]:
        """Nodes with broadcast rate above ``threshold``."""
        return tuple(
            sorted(n for n, b in self.broadcast_rates.items() if b > threshold)
        )


class InfeasibleSessionError(RuntimeError):
    """Raised when the LP has no feasible rate allocation."""


def _index_variables(graph: SessionGraph) -> Tuple[Dict[Link, int], Dict[int, int], int]:
    """Column layout: [x per link | b per node | gamma]."""
    link_index = {link: k for k, link in enumerate(graph.links)}
    node_index = {
        node: len(link_index) + k for k, node in enumerate(graph.nodes)
    }
    gamma_index = len(link_index) + len(node_index)
    return link_index, node_index, gamma_index


def _build_constraints(
    graph: SessionGraph,
    link_index: Dict[Link, int],
    node_index: Dict[int, int],
    gamma_index: int,
    *,
    fixed_gamma: float | None = None,
    broadcast_information: bool = True,
    mac_constraint: bool = True,
) -> Tuple[csr_matrix, np.ndarray, csr_matrix, np.ndarray]:
    """Assemble (A_eq, b_eq, A_ub, b_ub) shared by both LP variants.

    With ``fixed_gamma`` the gamma column is removed from the equality
    system and moved to the right-hand side (min-cost mode).
    """
    columns = gamma_index + 1
    eq_rows: List[int] = []
    eq_cols: List[int] = []
    eq_vals: List[float] = []
    eq_rhs: List[float] = []
    # Flow conservation (2): one row per node.
    for row, node in enumerate(graph.nodes):
        for link in graph.out_links(node):
            eq_rows.append(row)
            eq_cols.append(link_index[link])
            eq_vals.append(1.0)
        for link in graph.in_links(node):
            eq_rows.append(row)
            eq_cols.append(link_index[link])
            eq_vals.append(-1.0)
        sigma = graph.supply(node)
        if fixed_gamma is None:
            if sigma != 0:
                eq_rows.append(row)
                eq_cols.append(gamma_index)
                eq_vals.append(-float(sigma))
            eq_rhs.append(0.0)
        else:
            eq_rhs.append(float(sigma) * fixed_gamma)

    ub_rows: List[int] = []
    ub_cols: List[int] = []
    ub_vals: List[float] = []
    ub_rhs: List[float] = []
    row = 0
    # Loss coupling (5): x_ij - b_i * p_ij <= 0.
    for link in graph.links:
        i, _ = link
        ub_rows.append(row)
        ub_cols.append(link_index[link])
        ub_vals.append(1.0)
        ub_rows.append(row)
        ub_cols.append(node_index[i])
        ub_vals.append(-graph.probability[link])
        ub_rhs.append(0.0)
        row += 1
    # Broadcast information constraint (5b): sum_j x_ij <= b_i * q_i with
    # q_i = 1 - prod_j (1 - p_ij).  One transmission carries at most one
    # new information unit network-wide, so a node's total outgoing
    # *distinct* flow is capped by its rate times the probability that at
    # least one downstream node hears it — the hyperarc capacity of Lun
    # et al. [17].  The paper's per-link (5) alone lets the LP count one
    # broadcast as independent flow to several receivers, which random
    # linear coding cannot realize for a single unicast; see DESIGN.md.
    if broadcast_information:
        for node in graph.transmitters():
            out = graph.out_links(node)
            if not out:
                continue
            q = graph.union_probability(node)
            for link in out:
                ub_rows.append(row)
                ub_cols.append(link_index[link])
                ub_vals.append(1.0)
            ub_rows.append(row)
            ub_cols.append(node_index[node])
            ub_vals.append(-q)
            ub_rhs.append(0.0)
            row += 1
    # Broadcast MAC (4): b_i + sum_{j in N(i)} b_j <= 1 for i in V \ S.
    if mac_constraint:
        for node in graph.mac_constrained_nodes():
            ub_rows.append(row)
            ub_cols.append(node_index[node])
            ub_vals.append(1.0)
            for j in graph.neighbors[node]:
                ub_rows.append(row)
                ub_cols.append(node_index[j])
                ub_vals.append(1.0)
            ub_rhs.append(1.0)
            row += 1

    a_eq = csr_matrix(
        (eq_vals, (eq_rows, eq_cols)), shape=(len(eq_rhs), columns)
    )
    a_ub = csr_matrix(
        (ub_vals, (ub_rows, ub_cols)), shape=(len(ub_rhs), columns)
    )
    return a_eq, np.array(eq_rhs), a_ub, np.array(ub_rhs)


def solve_sunicast(
    graph: SessionGraph,
    *,
    broadcast_information: bool = True,
    mac_constraint: bool = True,
) -> SUnicastSolution:
    """Solve the throughput-maximization LP for one session.

    Returns normalized rates; raises :class:`InfeasibleSessionError` if no
    positive-throughput allocation exists (e.g. a disconnected session
    graph).

    ``broadcast_information=False`` drops constraint (5b), recovering the
    paper's original formulation exactly — its optimum counts one
    broadcast as independent flow to several receivers, so it is an upper
    bound that real coded streams cannot always realize (the ablation
    benchmark quantifies the gap).

    ``mac_constraint=False`` drops constraint (4) — the congestion-blind
    planning the paper attributes to MORE/oldMORE; the MAC-constraint
    ablation emulates the resulting over-subscribed rates to show the
    queue blow-up OMNC's rate control avoids.
    """
    link_index, node_index, gamma_index = _index_variables(graph)
    a_eq, b_eq, a_ub, b_ub = _build_constraints(
        graph,
        link_index,
        node_index,
        gamma_index,
        broadcast_information=broadcast_information,
        mac_constraint=mac_constraint,
    )
    columns = gamma_index + 1
    cost = np.zeros(columns)
    cost[gamma_index] = -1.0  # maximize gamma
    bounds = [(0.0, None)] * len(link_index)
    bounds += [(0.0, 1.0)] * len(node_index)
    bounds += [(0.0, None)]
    result = linprog(
        cost,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        raise InfeasibleSessionError(f"sUnicast LP failed: {result.message}")
    return _extract_solution(result.x, link_index, node_index, gamma_index)


def solve_min_cost(graph: SessionGraph, *, throughput: float = 1e-3) -> SUnicastSolution:
    """The oldMORE-style min-cost formulation (Lun et al. [17]).

    Minimize total broadcast rate sum_i b_i subject to delivering
    ``throughput`` units end-to-end under the same loss coupling (5) —
    but **without** the MAC constraint (4): the formulation "has no rate
    control mechanism and does not explore path diversity well" (Sec. 2).
    Because the objective charges every transmission, the optimum
    concentrates flow on the cheapest (highest-quality) paths, which is
    precisely the node/path-pruning behaviour Fig. 4 attributes to
    oldMORE.
    """
    if throughput <= 0:
        raise ValueError(f"throughput must be > 0, got {throughput}")
    link_index, node_index, gamma_index = _index_variables(graph)
    a_eq, b_eq, a_ub, b_ub = _build_constraints(
        graph, link_index, node_index, gamma_index, fixed_gamma=throughput
    )
    columns = gamma_index + 1
    # Drop the MAC rows: they are the last len(mac_constrained_nodes())
    # inequality rows appended by the builder.
    mac_rows = len(graph.mac_constrained_nodes())
    if mac_rows:
        a_ub = a_ub[: a_ub.shape[0] - mac_rows]
        b_ub = b_ub[: len(b_ub) - mac_rows]
    cost = np.zeros(columns)
    for node, col in node_index.items():
        cost[col] = 1.0  # minimize total broadcast rate
    bounds = [(0.0, None)] * len(link_index)
    bounds += [(0.0, None)] * len(node_index)  # no capacity cap either
    bounds += [(0.0, 0.0)]  # gamma column unused in min-cost mode
    result = linprog(
        cost,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        raise InfeasibleSessionError(f"min-cost LP failed: {result.message}")
    solution = _extract_solution(result.x, link_index, node_index, gamma_index)
    return SUnicastSolution(
        throughput=throughput,
        flows=solution.flows,
        broadcast_rates=solution.broadcast_rates,
        objective=float(result.fun),
    )


def solve_min_cost_routing(
    graph: SessionGraph, *, throughput: float = 1e-3
) -> SUnicastSolution:
    """Min-cost with store-and-forward transmission-count semantics.

    Minimize ``sum_ij x_ij / p_ij`` — each unit of flow on link (i, j)
    pays its full expected transmission count, with no broadcast sharing
    between sibling links.  This is the compression of the Lun et al.
    min-cost formulation that the preliminary MORE applied in practice;
    its optimum concentrates on the cheapest (ETX-shortest) routes, which
    reproduces the paper's observation that oldMORE "tends to prune a
    large number of nodes associated with low quality links, and fails to
    explore path diversity" (Fig. 4).  Contrast with :func:`solve_min_cost`,
    whose per-link coupling shares one broadcast rate across sibling
    links and therefore spreads flow (the ablation benchmark compares the
    two).

    The returned ``broadcast_rates`` hold each node's transmission rate
    z_i = sum_j x_ij / p_ij (unnormalized by throughput).
    """
    if throughput <= 0:
        raise ValueError(f"throughput must be > 0, got {throughput}")
    link_index = {link: k for k, link in enumerate(graph.links)}
    columns = len(link_index)
    eq_rows: List[int] = []
    eq_cols: List[int] = []
    eq_vals: List[float] = []
    eq_rhs: List[float] = []
    for row, node in enumerate(graph.nodes):
        for link in graph.out_links(node):
            eq_rows.append(row)
            eq_cols.append(link_index[link])
            eq_vals.append(1.0)
        for link in graph.in_links(node):
            eq_rows.append(row)
            eq_cols.append(link_index[link])
            eq_vals.append(-1.0)
        eq_rhs.append(float(graph.supply(node)) * throughput)
    a_eq = csr_matrix(
        (eq_vals, (eq_rows, eq_cols)), shape=(len(eq_rhs), columns)
    )
    cost = np.zeros(columns)
    for link, col in link_index.items():
        cost[col] = 1.0 / graph.probability[link]
    result = linprog(
        cost,
        A_eq=a_eq,
        b_eq=np.array(eq_rhs),
        bounds=[(0.0, None)] * columns,
        method="highs",
    )
    if not result.success:
        raise InfeasibleSessionError(f"min-cost routing LP failed: {result.message}")
    flows = {link: float(result.x[col]) for link, col in link_index.items()}
    rates: Dict[int, float] = {node: 0.0 for node in graph.nodes}
    for link, x in flows.items():
        rates[link[0]] += x / graph.probability[link]
    return SUnicastSolution(
        throughput=throughput,
        flows=flows,
        broadcast_rates=rates,
        objective=float(result.fun),
    )


def _extract_solution(
    x: np.ndarray,
    link_index: Dict[Link, int],
    node_index: Dict[int, int],
    gamma_index: int,
) -> SUnicastSolution:
    flows = {link: float(x[col]) for link, col in link_index.items()}
    rates = {node: float(x[col]) for node, col in node_index.items()}
    gamma = float(x[gamma_index])
    return SUnicastSolution(
        throughput=gamma, flows=flows, broadcast_rates=rates, objective=gamma
    )


def verify_feasibility(
    graph: SessionGraph,
    solution: SUnicastSolution,
    *,
    tolerance: float = 1e-6,
) -> Dict[str, float]:
    """Measure constraint violations of a rate allocation.

    Returns the worst violation per constraint family (0 when satisfied);
    used by tests and by the primal-recovery convergence checks.
    """
    worst_flow = 0.0
    for node in graph.nodes:
        outflow = sum(solution.flows.get(l, 0.0) for l in graph.out_links(node))
        inflow = sum(solution.flows.get(l, 0.0) for l in graph.in_links(node))
        expected = graph.supply(node) * solution.throughput
        worst_flow = max(worst_flow, abs(outflow - inflow - expected))
    worst_loss = 0.0
    for link in graph.links:
        i, _ = link
        slack = (
            solution.broadcast_rates.get(i, 0.0) * graph.probability[link]
            - solution.flows.get(link, 0.0)
        )
        worst_loss = max(worst_loss, max(0.0, -slack))
    worst_union = 0.0
    for node in graph.transmitters():
        outflow = sum(
            solution.flows.get(link, 0.0) for link in graph.out_links(node)
        )
        slack = (
            solution.broadcast_rates.get(node, 0.0)
            * graph.union_probability(node)
            - outflow
        )
        worst_union = max(worst_union, max(0.0, -slack))
    worst_mac = 0.0
    for node in graph.mac_constrained_nodes():
        load = solution.broadcast_rates.get(node, 0.0) + sum(
            solution.broadcast_rates.get(j, 0.0) for j in graph.neighbors[node]
        )
        worst_mac = max(worst_mac, max(0.0, load - 1.0))
    return {
        "flow_conservation": worst_flow if worst_flow > tolerance else 0.0,
        "loss_coupling": worst_loss if worst_loss > tolerance else 0.0,
        "broadcast_information": worst_union if worst_union > tolerance else 0.0,
        "mac": worst_mac if worst_mac > tolerance else 0.0,
    }
