"""Control-plane re-initiation cost (paper Sec. 4 overhead).

OMNC "is based on the presumption that the link qualities in the target
network are relatively stable over time ... In cases where link
qualities change significantly, the node selection and rate allocation
have to be re-initiated, which brings a certain amount of overhead."
This module prices exactly that re-initiation: the pseudo-broadcast
flood for node selection plus the rate-control message census, in
messages and in channel-seconds.

It lives in the optimization layer — not in :mod:`repro.topology.dynamics`,
where it started — because measuring a re-plan *runs* the optimizer and
the routing flood, and hosting that in topology created the
``topology ⇄ optimization`` / ``topology ⇄ routing`` import cycles the
RPR101 layering contract forbids.  The drift model itself
(:func:`repro.topology.dynamics.perturb_link_qualities`,
:func:`repro.topology.dynamics.quality_drift`) stays in topology, which
needs nothing above it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.optimization.messages import MessagePassingRateControl
from repro.optimization.problem import session_graph_from_selection
from repro.optimization.rate_control import RateControlConfig
from repro.routing.node_selection import select_forwarders
from repro.routing.pseudo_broadcast import reliable_flood
from repro.topology.graph import WirelessNetwork

__all__ = ["ReplanCost", "replan_cost"]


@dataclass(frozen=True)
class ReplanCost:
    """Control-plane cost of one re-initiation (paper Sec. 4 overhead).

    Attributes:
        flood_transmissions: expected MAC transmissions of the
            node-selection pseudo-broadcast flood.
        rate_control_messages: messages exchanged by the distributed
            rate control run.
        rate_control_iterations: outer iterations it took.
        channel_seconds: total airtime of both phases at the network's
            capacity, assuming ``control_packet_bytes`` per message —
            the session's data plane is stalled for (at most) this long.
    """

    flood_transmissions: float
    rate_control_messages: int
    rate_control_iterations: int
    channel_seconds: float


def replan_cost(
    network: WirelessNetwork,
    source: int,
    destination: int,
    *,
    control_packet_bytes: int = 64,
    config: Optional[RateControlConfig] = None,
) -> ReplanCost:
    """Measure the full cost of re-initiating one session's control plane.

    Runs the actual node-selection flood cost model and the actual
    message-passing rate control on the (new) topology, so the returned
    numbers are measurements, not estimates.
    """
    if control_packet_bytes <= 0:
        raise ValueError("control_packet_bytes must be > 0")
    flood = reliable_flood(network, source)
    forwarders = select_forwarders(network, source, destination)
    graph = session_graph_from_selection(network, forwarders)
    controller = MessagePassingRateControl(graph, config)
    result = controller.run()
    messages = controller.stats.total
    airtime = (
        (flood.total_transmissions + messages)
        * control_packet_bytes
        / network.capacity
    )
    return ReplanCost(
        flood_transmissions=flood.total_transmissions,
        rate_control_messages=messages,
        rate_control_iterations=result.iterations,
        channel_seconds=airtime,
    )
