"""SUB1 — the multipath opportunistic routing subproblem (paper Sec. 3.3).

Given the Lagrange prices lambda_ij on the relaxed loss-coupling
constraint, SUB1 is

    max  gamma - sum_ij lambda_ij x_ij     s.t. flow conservation, x >= 0.

The paper transforms the throughput objective into the strictly concave
utility U(gamma) = ln(gamma) (same optimizer), after which the x-part is
a plain shortest-path problem in the link costs lambda_ij: route
gamma = U'^{-1}(p_min) = 1 / p_min units along the cheapest path, where
p_min is the path cost (eq. 12).

Because the per-iteration solution uses a single path, the paper applies
*primal recovery* (Sherali & Choi): averaging the iterates (eq. 13)
yields a primal-optimal **multipath** allocation — single shortest paths
per iteration average into a genuine multipath rate assignment.  The
averaging implementation (including the tail refinement) lives in
:mod:`repro.optimization.recovery`.

Rates are capacity-normalized; gamma is clamped to ``gamma_cap`` (default
1.0 = the channel capacity) because early iterations have near-zero
prices and eq. 12 would otherwise demand unbounded flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.optimization.problem import SessionGraph
from repro.optimization.recovery import IterateAverager
from repro.routing.shortest_path import dijkstra
from repro.topology.graph import Link


@dataclass(frozen=True)
class Sub1Iterate:
    """One SUB1 solution: the chosen path and the injected rate."""

    path: Tuple[int, ...]
    path_cost: float
    gamma: float
    flows: Dict[Link, float]


class Sub1Router:
    """Stateful SUB1 solver with primal recovery.

    One :meth:`step` per outer iteration of the rate-control algorithm.
    :attr:`recovered_flows` and :attr:`recovered_gamma` expose the
    averaged allocation of eq. (13).
    """

    def __init__(
        self,
        graph: SessionGraph,
        *,
        gamma_cap: float = 1.0,
        primal_recovery: bool = True,
        recovery_tail: float = 0.5,
    ) -> None:
        if gamma_cap <= 0:
            raise ValueError(f"gamma_cap must be > 0, got {gamma_cap}")
        self._graph = graph
        self._gamma_cap = gamma_cap
        self._primal_recovery = primal_recovery
        self._link_order = list(graph.links)
        self._link_pos = {link: k for k, link in enumerate(self._link_order)}
        self._averager = IterateAverager(len(self._link_order), tail=recovery_tail)
        self._gamma_averager = IterateAverager(1, tail=recovery_tail)
        self._last: Sub1Iterate | None = None

    @property
    def iterations(self) -> int:
        """Number of SUB1 steps taken."""
        return self._averager.count

    @property
    def last_iterate(self) -> Sub1Iterate | None:
        """The most recent per-iteration solution."""
        return self._last

    @property
    def recovered_flows(self) -> Dict[Link, float]:
        """x_bar(t): averaged link flows (eq. 13).

        With ``primal_recovery=False`` (ablation) returns the latest
        instantaneous flows instead.
        """
        if self.iterations == 0:
            return {link: 0.0 for link in self._link_order}
        if not self._primal_recovery:
            assert self._last is not None
            return dict(self._last.flows)
        averaged = self._averager.average()
        return {
            link: float(averaged[k]) for k, link in enumerate(self._link_order)
        }

    @property
    def recovered_gamma(self) -> float:
        """gamma_bar(t): averaged injected rate."""
        if self.iterations == 0:
            return 0.0
        if not self._primal_recovery:
            assert self._last is not None
            return self._last.gamma
        return float(self._gamma_averager.average()[0])

    def step(self, prices: Dict[Link, float]) -> Sub1Iterate:
        """Solve SUB1 for the current prices and update the averages.

        Args:
            prices: lambda_ij >= 0 for every session link.

        Raises:
            ValueError: if a price is negative or the destination is
                unreachable (cannot happen on a valid session graph).
        """
        weights = {}
        for link in self._link_order:
            price = prices.get(link, 0.0)
            if price < 0:
                raise ValueError(f"negative price on link {link}: {price}")
            weights[link] = price
        result = dijkstra(self._graph.nodes, weights, self._graph.source)
        if self._graph.destination not in result.distance:
            raise ValueError("destination unreachable in session graph")
        path = result.path_to(self._graph.destination)
        assert path is not None
        path_cost = result.distance[self._graph.destination]
        gamma = self._gamma_from_cost(path_cost)
        flows = {link: 0.0 for link in self._link_order}
        for hop in zip(path, path[1:]):
            flows[hop] = gamma
        iterate = Sub1Iterate(
            path=path, path_cost=path_cost, gamma=gamma, flows=flows
        )
        vector = np.zeros(len(self._link_order))
        for hop in zip(path, path[1:]):
            vector[self._link_pos[hop]] = gamma
        self._averager.push(vector)
        self._gamma_averager.push(np.array([gamma]))
        self._last = iterate
        return iterate

    def _gamma_from_cost(self, path_cost: float) -> float:
        """gamma = U'^{-1}(p_min) = 1 / p_min for U = ln, capped.

        U'(gamma) = 1/gamma, so the stationarity condition
        d/dgamma [gamma * p_min - ln gamma] = 0 gives gamma = 1/p_min.
        """
        if path_cost <= 1.0 / self._gamma_cap:
            return self._gamma_cap
        return 1.0 / path_cost
