"""Primal recovery averaging (Sherali & Choi [20]).

The dual subgradient method solves the two subproblems with *extreme*
per-iteration solutions (one shortest path; bang-bang rates).  The primal
optimal solution is recovered by averaging the iterates:

    x_bar(t) = (1/t) * sum_k x^k                          (paper eq. 13)
    b_bar(t) = (1/t) * sum_k b^k                          (paper eq. 18)

:class:`IterateAverager` implements this with two refinements used by
practical subgradient codes:

* **tail (suffix) averaging** — average only the most recent fraction of
  iterates.  The full average provably converges but drags the poor early
  iterates along forever; suffix averages converge to the same limit and
  reach a usable allocation an order of magnitude sooner.  ``tail=1.0``
  recovers the paper-literal full average.
* **O(1) queries** via prefix sums, so per-iteration recovered snapshots
  (needed for the Fig. 1 history) stay cheap.

Averaging runs over numpy vectors; callers map their keyed dictionaries
onto a fixed index order once.
"""

from __future__ import annotations

from typing import List

import numpy as np


class IterateAverager:
    """Prefix-sum averaging over a fixed-length vector of iterates."""

    def __init__(self, size: int, *, tail: float = 0.5) -> None:
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        if not 0.0 < tail <= 1.0:
            raise ValueError(f"tail must be in (0, 1], got {tail}")
        self._size = size
        self._tail = tail
        # _prefix[t] = sum of iterates 0..t-1; _prefix[0] = zeros.
        self._prefix: List[np.ndarray] = [np.zeros(size)]

    @property
    def count(self) -> int:
        """Number of iterates absorbed."""
        return len(self._prefix) - 1

    @property
    def tail(self) -> float:
        """Fraction of the most recent iterates that enter the average."""
        return self._tail

    def push(self, iterate: np.ndarray) -> None:
        """Absorb one iterate vector."""
        iterate = np.asarray(iterate, dtype=float)
        if iterate.shape != (self._size,):
            raise ValueError(f"iterate shape {iterate.shape} != ({self._size},)")
        self._prefix.append(self._prefix[-1] + iterate)

    def average(self) -> np.ndarray:
        """The current (tail-)averaged vector; zeros before any push."""
        t = self.count
        if t == 0:
            return np.zeros(self._size)
        start = int(np.floor(t * (1.0 - self._tail)))
        if start >= t:
            start = t - 1
        window = t - start
        return (self._prefix[t] - self._prefix[start]) / window
