"""Multiple-unicast extension of the OMNC framework.

The paper's conclusion notes the rate control framework "can be flexibly
extended to other scenarios such as the multiple-unicast case".  This
module carries that extension out:

* each session s keeps its own flow variables x^s, broadcast rates b^s
  and loss-coupling multipliers lambda^s — SUB1 runs per session,
  unchanged;
* sessions are coupled only through the broadcast MAC constraint, which
  now charges the *total* neighborhood load:

      sum_s ( b_i^s + sum_{j in N(i)} b_j^s ) <= C     for i not a source

* the objective becomes sum_s ln(gamma_s) — proportional fairness across
  sessions, the natural generalization of the single-session ln-utility.

The decomposition structure survives intact: one congestion price beta_i
per node prices the shared constraint, and each session's SUB2 update
simply charges its own rates with the shared prices.  The centralized
reference optimum (:func:`solve_multi_sunicast`) maximizes the *sum of
throughputs* subject to the shared MAC constraint, providing an upper
envelope for tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csr_matrix

from repro.optimization.problem import SessionGraph
from repro.optimization.rate_control import RateControlConfig
from repro.optimization.recovery import IterateAverager
from repro.optimization.sub1_routing import Sub1Router
from repro.optimization.subgradient import project_nonnegative
from repro.topology.graph import Link


@dataclass(frozen=True)
class MultiSessionResult:
    """Joint allocation for several coexisting unicast sessions.

    Attributes:
        throughputs: recovered gamma_bar per session (normalized).
        broadcast_rates: recovered b_bar per session, keyed by node.
        flows: recovered x_bar per session, keyed by link.
        iterations: outer iterations executed.
        converged: whether the stopping rule fired.
    """

    throughputs: Tuple[float, ...]
    broadcast_rates: Tuple[Dict[int, float], ...]
    flows: Tuple[Dict[Link, float], ...]
    iterations: int
    converged: bool

    @property
    def total_throughput(self) -> float:
        """Sum of session throughputs (normalized)."""
        return float(sum(self.throughputs))


class MultiSessionRateControl:
    """Jointly allocate rates to several sessions on one network.

    All session graphs must share the same capacity (they describe the
    same channel).  Node ids are global, so the shared congestion price
    beta_i is well defined across sessions.
    """

    def __init__(
        self,
        graphs: Sequence[SessionGraph],
        config: RateControlConfig | None = None,
    ) -> None:
        if not graphs:
            raise ValueError("at least one session is required")
        capacities = {g.capacity for g in graphs}
        if len(capacities) != 1:
            raise ValueError(f"sessions disagree on capacity: {capacities}")
        self._graphs = list(graphs)
        self._config = config or RateControlConfig()
        self._routers = [
            Sub1Router(
                g,
                gamma_cap=self._config.gamma_cap,
                primal_recovery=self._config.primal_recovery,
                recovery_tail=self._config.recovery_tail,
            )
            for g in self._graphs
        ]
        self._prices: List[Dict[Link, float]] = [
            {link: 0.0 for link in g.links} for g in self._graphs
        ]
        self._union_prices: List[Dict[int, float]] = [
            {node: 0.0 for node in g.transmitters()} for g in self._graphs
        ]
        self._rates: List[Dict[int, float]] = []
        for g in self._graphs:
            rates = {n: self._config.initial_rate for n in g.nodes}
            rates[g.destination] = 0.0
            self._rates.append(rates)
        # Shared congestion prices over every node that is MAC-constrained
        # in at least one session.
        constrained = set()
        for g in self._graphs:
            constrained.update(g.mac_constrained_nodes())
        self._beta: Dict[int, float] = {n: 0.0 for n in sorted(constrained)}
        self._node_orders = [list(g.nodes) for g in self._graphs]
        self._rate_averagers = [
            IterateAverager(len(order), tail=self._config.recovery_tail)
            for order in self._node_orders
        ]
        self._iteration = 0

    @property
    def iteration(self) -> int:
        """Outer iterations executed."""
        return self._iteration

    def _neighborhood_load(self, node: int) -> float:
        """Total load at receiver ``node`` across all sessions."""
        load = 0.0
        for g, rates in zip(self._graphs, self._rates):
            if node not in rates:
                continue
            load += rates[node]
            load += sum(rates.get(j, 0.0) for j in g.neighbors.get(node, ()))
        return load

    def step(self) -> None:
        """One joint iteration: per-session SUB1/SUB2, shared beta."""
        theta = self._config.step_size(self._iteration)
        sub1_iterates = []
        for router, prices, mus, g in zip(
            self._routers, self._prices, self._union_prices, self._graphs
        ):
            effective = {
                link: prices[link] + mus.get(link[0], 0.0) for link in g.links
            }
            sub1_iterates.append(router.step(effective))
        # Per-session proximal rate updates against the shared prices.
        for g, rates, prices, mus in zip(
            self._graphs, self._rates, self._prices, self._union_prices
        ):
            weights: Dict[int, float] = {}
            for link in g.links:
                i, _ = link
                weights[i] = weights.get(i, 0.0) + prices[link] * g.probability[link]
            for node, mu in mus.items():
                if mu:
                    weights[node] = weights.get(node, 0.0) + mu * g.union_probability(node)
            old = dict(rates)
            for node in g.nodes:
                if node == g.destination:
                    continue
                charge = self._beta.get(node, 0.0) + sum(
                    self._beta.get(j, 0.0) for j in g.neighbors[node]
                )
                updated = old[node] + (weights.get(node, 0.0) - charge) / (
                    2.0 * self._config.proximal_c
                )
                rates[node] = min(1.0, max(0.0, updated))
        # Shared congestion price update on total load.
        for node in self._beta:
            slack = 1.0 - self._neighborhood_load(node)
            self._beta[node] = project_nonnegative(
                self._beta[node] - theta * slack
            )
        # Per-session multiplier updates.
        for g, rates, prices, mus, iterate in zip(
            self._graphs, self._rates, self._prices, self._union_prices, sub1_iterates
        ):
            for link in g.links:
                i, _ = link
                surplus = rates[i] * g.probability[link] - iterate.flows[link]
                prices[link] = project_nonnegative(prices[link] - theta * surplus)
            for node in mus:
                outflow = sum(iterate.flows[link] for link in g.out_links(node))
                surplus = rates[node] * g.union_probability(node) - outflow
                mus[node] = project_nonnegative(mus[node] - theta * surplus)
        for rates, order, averager in zip(
            self._rates, self._node_orders, self._rate_averagers
        ):
            averager.push(np.array([rates[n] for n in order]))
        self._iteration += 1

    def run(self) -> MultiSessionResult:
        """Iterate to convergence of every session's recovered rates."""
        config = self._config
        stable = 0
        converged = False
        previous: List[Dict[int, float]] | None = None
        while self._iteration < config.max_iterations:
            self.step()
            recovered = self._recovered_rates()
            if previous is not None:
                delta = 0.0
                scale = 1e-9
                for rec, prev in zip(recovered, previous):
                    delta = max(
                        delta, max(abs(rec[n] - prev[n]) for n in rec)
                    )
                    scale = max(scale, max(rec.values()))
                if delta / scale < config.tolerance:
                    stable += 1
                else:
                    stable = 0
                if self._iteration >= config.min_iterations and stable >= config.patience:
                    converged = True
                    break
            previous = recovered
        flows = [router.recovered_flows for router in self._routers]
        throughputs = []
        for g, flow in zip(self._graphs, flows):
            out = sum(flow[l] for l in g.out_links(g.source))
            back = sum(flow[l] for l in g.in_links(g.source))
            throughputs.append(out - back)
        return MultiSessionResult(
            throughputs=tuple(throughputs),
            broadcast_rates=tuple(self._recovered_rates()),
            flows=tuple(flows),
            iterations=self._iteration,
            converged=converged,
        )

    def _recovered_rates(self) -> List[Dict[int, float]]:
        out = []
        for order, averager, rates in zip(
            self._node_orders, self._rate_averagers, self._rates
        ):
            if averager.count == 0:
                out.append(dict(rates))
            else:
                averaged = averager.average()
                out.append(
                    {n: float(averaged[k]) for k, n in enumerate(order)}
                )
        return out


@dataclass(frozen=True)
class MultiSunicastSolution:
    """Full centralized optimum of the shared-MAC multi-session LP.

    Attributes:
        total_throughput: sum of per-session normalized throughputs.
        throughputs: gamma_s per session (normalized).
        broadcast_rates: b^s per session, keyed by node (normalized).
        flows: x^s per session, keyed by link (normalized).
    """

    total_throughput: float
    throughputs: Tuple[float, ...]
    broadcast_rates: Tuple[Dict[int, float], ...]
    flows: Tuple[Dict[Link, float], ...]


def solve_multi_sunicast(
    graphs: Sequence[SessionGraph],
) -> Tuple[float, Tuple[float, ...]]:
    """Centralized reference: maximize total throughput across sessions.

    Returns ``(total, per_session)`` normalized throughputs under shared
    MAC constraints.  (The distributed algorithm optimizes the
    proportionally-fair sum of logs, so its total is at most this LP's.)
    See :func:`solve_multi_sunicast_detailed` for the full primal point.
    """
    solution = solve_multi_sunicast_detailed(graphs)
    return solution.total_throughput, solution.throughputs


def solve_multi_sunicast_detailed(
    graphs: Sequence[SessionGraph],
) -> MultiSunicastSolution:
    """Solve the shared-MAC LP and return rates and flows per session.

    The extra primal detail (b^s, x^s) is what a centralized
    multi-session *planner* needs: the rates feed the same
    repair/rescale pipeline as the single-session planners
    (:func:`repro.protocols.omnc.plan_omnc_multi`).
    """
    if not graphs:
        raise ValueError("at least one session is required")
    # Column layout: per session [x | b | gamma], concatenated.
    offsets = []
    columns = 0
    link_indexes = []
    node_indexes = []
    gamma_indexes = []
    for g in graphs:
        link_index = {link: columns + k for k, link in enumerate(g.links)}
        columns += len(g.links)
        node_index = {node: columns + k for k, node in enumerate(g.nodes)}
        columns += len(g.nodes)
        gamma_indexes.append(columns)
        columns += 1
        link_indexes.append(link_index)
        node_indexes.append(node_index)
        offsets.append(columns)

    eq_rows: List[int] = []
    eq_cols: List[int] = []
    eq_vals: List[float] = []
    eq_rhs: List[float] = []
    ub_rows: List[int] = []
    ub_cols: List[int] = []
    ub_vals: List[float] = []
    ub_rhs: List[float] = []
    row = 0
    urow = 0
    for s, g in enumerate(graphs):
        for node in g.nodes:
            for link in g.out_links(node):
                eq_rows.append(row)
                eq_cols.append(link_indexes[s][link])
                eq_vals.append(1.0)
            for link in g.in_links(node):
                eq_rows.append(row)
                eq_cols.append(link_indexes[s][link])
                eq_vals.append(-1.0)
            sigma = g.supply(node)
            if sigma != 0:
                eq_rows.append(row)
                eq_cols.append(gamma_indexes[s])
                eq_vals.append(-float(sigma))
            eq_rhs.append(0.0)
            row += 1
        for link in g.links:
            i, _ = link
            ub_rows.append(urow)
            ub_cols.append(link_indexes[s][link])
            ub_vals.append(1.0)
            ub_rows.append(urow)
            ub_cols.append(node_indexes[s][i])
            ub_vals.append(-g.probability[link])
            ub_rhs.append(0.0)
            urow += 1
        # Broadcast information constraint (5b), per session transmitter.
        for node in g.transmitters():
            out = g.out_links(node)
            if not out:
                continue
            for link in out:
                ub_rows.append(urow)
                ub_cols.append(link_indexes[s][link])
                ub_vals.append(1.0)
            ub_rows.append(urow)
            ub_cols.append(node_indexes[s][node])
            ub_vals.append(-g.union_probability(node))
            ub_rhs.append(0.0)
            urow += 1
    # Shared MAC rows: for each node constrained in any session, sum the
    # neighborhood load over every session that includes it.
    constrained = sorted(
        {n for g in graphs for n in g.mac_constrained_nodes()}
    )
    for node in constrained:
        for s, g in enumerate(graphs):
            if node not in set(g.nodes):
                continue
            ub_rows.append(urow)
            ub_cols.append(node_indexes[s][node])
            ub_vals.append(1.0)
            for j in g.neighbors[node]:
                ub_rows.append(urow)
                ub_cols.append(node_indexes[s][j])
                ub_vals.append(1.0)
        ub_rhs.append(1.0)
        urow += 1

    cost = np.zeros(columns)
    for gamma_col in gamma_indexes:
        cost[gamma_col] = -1.0
    a_eq = csr_matrix((eq_vals, (eq_rows, eq_cols)), shape=(len(eq_rhs), columns))
    a_ub = csr_matrix((ub_vals, (ub_rows, ub_cols)), shape=(len(ub_rhs), columns))
    bounds = [(0.0, None)] * columns
    for s, g in enumerate(graphs):
        for node, col in node_indexes[s].items():
            bounds[col] = (0.0, 1.0)
    result = linprog(
        cost,
        A_ub=a_ub,
        b_ub=np.array(ub_rhs),
        A_eq=a_eq,
        b_eq=np.array(eq_rhs),
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        raise RuntimeError(f"multi-session LP failed: {result.message}")
    per_session = tuple(float(result.x[col]) for col in gamma_indexes)
    broadcast_rates = tuple(
        {node: float(result.x[col]) for node, col in node_indexes[s].items()}
        for s in range(len(graphs))
    )
    flows = tuple(
        {link: float(result.x[col]) for link, col in link_indexes[s].items()}
        for s in range(len(graphs))
    )
    return MultiSunicastSolution(
        total_throughput=float(sum(per_session)),
        throughputs=per_session,
        broadcast_rates=broadcast_rates,
        flows=flows,
    )
