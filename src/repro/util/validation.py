"""Lightweight argument validation helpers.

Every public constructor in the library validates its inputs eagerly so
that configuration errors surface at build time, not deep inside an
emulation run.  The helpers below raise ``ValueError``/``TypeError`` with
messages that name the offending parameter.
"""

from __future__ import annotations

import math
from typing import Any


def check_type(name: str, value: Any, expected: type) -> Any:
    """Raise ``TypeError`` unless ``value`` is an instance of ``expected``.

    ``bool`` is rejected where an ``int`` is expected, since silently
    treating ``True`` as ``1`` hides bugs in protocol configuration.
    """
    if expected is int and isinstance(value, bool):
        raise TypeError(f"{name} must be int, got bool")
    if not isinstance(value, expected):
        raise TypeError(
            f"{name} must be {expected.__name__}, got {type(value).__name__}"
        )
    return value


def check_positive(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` is a finite number > 0."""
    if not _is_finite_number(value):
        raise ValueError(f"{name} must be a finite number, got {value!r}")
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` is a finite number >= 0."""
    if not _is_finite_number(value):
        raise ValueError(f"{name} must be a finite number, got {value!r}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` lies in [0, 1]."""
    if not _is_finite_number(value):
        raise ValueError(f"{name} must be a finite number, got {value!r}")
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value!r}")
    return value


def check_in_range(
    name: str, value: float, low: float, high: float, *, inclusive: bool = True
) -> float:
    """Raise ``ValueError`` unless ``low <= value <= high`` (or strict)."""
    if not _is_finite_number(value):
        raise ValueError(f"{name} must be a finite number, got {value!r}")
    if inclusive:
        if not low <= value <= high:
            raise ValueError(f"{name} must be within [{low}, {high}], got {value!r}")
    else:
        if not low < value < high:
            raise ValueError(f"{name} must be within ({low}, {high}), got {value!r}")
    return value


def _is_finite_number(value: Any) -> bool:
    if isinstance(value, bool):
        return False
    if not isinstance(value, (int, float)):
        return False
    return math.isfinite(value)
