"""Shared utilities: validation helpers, seeded RNG management."""

from repro.util.rng import RngFactory, as_rng
from repro.util.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)

__all__ = [
    "RngFactory",
    "as_rng",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_type",
]
