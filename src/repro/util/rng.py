"""Deterministic random-number management.

Emulation experiments must be reproducible run-to-run, yet the different
random consumers (topology placement, channel loss draws, coding
coefficients, session endpoint choice) must not share one stream — a change
in how one consumer draws would silently shift every other consumer.

:class:`RngFactory` derives an independent ``numpy.random.Generator`` per
named purpose from a single experiment seed, using ``SeedSequence.spawn``
semantics keyed by the purpose string.
"""

from __future__ import annotations

import zlib

import numpy as np

RngLike = int | np.random.Generator | None

#: Frozen seeds of the named fallback streams (see :func:`fallback_rng`).
#: The values are bit-compatible with the historical ``default_rng(0)`` /
#: ``default_rng(1)`` fallbacks they replaced; changing one changes every
#: trace produced by components built without an explicit generator.
_FALLBACK_SEEDS: dict[str, int] = {
    "mac-scheduler": 0,
    "engine-capture": 1,
}


def fallback_rng(stream: str) -> np.random.Generator:
    """The named deterministic fallback stream ``stream``.

    Components that accept an optional generator (the emulation engine,
    the MAC scheduler) fall back to these fixed streams when constructed
    without one — tests and ad-hoc scripts stay reproducible without
    plumbing a factory.  Production paths always pass explicit streams
    derived from :class:`RngFactory`.
    """
    try:
        seed = _FALLBACK_SEEDS[stream]
    except KeyError:
        known = ", ".join(sorted(_FALLBACK_SEEDS))
        raise ValueError(
            f"unknown fallback stream {stream!r} (known: {known})"
        ) from None
    return np.random.default_rng(seed)


def as_rng(seed: RngLike) -> np.random.Generator:
    """Coerce ``seed`` into a ``numpy.random.Generator``.

    ``None`` yields an unseeded generator; an ``int`` seeds a fresh
    generator; an existing generator is passed through untouched.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class RngFactory:
    """Derive named, independent random generators from one master seed.

    >>> factory = RngFactory(42)
    >>> channel_rng = factory.derive("channel")
    >>> coding_rng = factory.derive("coding")

    The same ``(seed, name)`` pair always yields an identically-seeded
    generator; different names yield decorrelated streams.  An optional
    integer ``index`` supports per-entity streams (e.g. one per link).
    """

    def __init__(self, seed: int) -> None:
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise TypeError(f"seed must be int, got {type(seed).__name__}")
        if seed < 0:
            raise ValueError(f"seed must be >= 0, got {seed}")
        self._seed = seed

    @property
    def seed(self) -> int:
        """The master experiment seed."""
        return self._seed

    def derive(self, name: str, index: int | None = None) -> np.random.Generator:
        """Return a generator for the stream ``name`` (and optional ``index``)."""
        if not isinstance(name, str) or not name:
            raise ValueError("name must be a non-empty string")
        key = name if index is None else f"{name}#{index}"
        # crc32 gives a stable 32-bit digest of the purpose key; combined
        # with the master seed in a SeedSequence it yields decorrelated
        # child streams that are stable across interpreter runs.
        digest = zlib.crc32(key.encode("utf-8"))
        seq = np.random.SeedSequence(entropy=self._seed, spawn_key=(digest,))
        return np.random.default_rng(seq)

    def spawn(self, name: str) -> "RngFactory":
        """Return a child factory whose streams are independent of this one."""
        digest = zlib.crc32(name.encode("utf-8"))
        # Mix the child name into the master seed; modulo keeps it in the
        # non-negative 63-bit range accepted by the constructor.
        child_seed = (self._seed * 2654435761 + digest) % (2**63)
        return RngFactory(child_seed)

    def __repr__(self) -> str:
        return f"RngFactory(seed={self._seed})"


class NodeStreams:
    """Lazily-derived per-(kind, node) generator bundle.

    The sharded emulator (:mod:`repro.emulator.shard`) needs RNG
    consumption to be *partition-independent*: a node must draw the same
    values no matter which process hosts it or which other nodes share
    its shard.  Global streams cannot provide that — the draw order
    depends on who else transmits — so the engine's per-node mode pulls
    every MAC lottery key, channel loss vector, and capture tie-break
    from a stream owned by the node it concerns.

    Streams are derived on first use from the factory via
    ``derive(f"node-{kind}", node)``, so any process holding the same
    :class:`RngFactory` seed reconstructs identical streams with no
    state exchange.
    """

    #: Stream kinds the emulator consumes.
    KINDS = ("mac", "channel", "capture")

    def __init__(self, factory: RngFactory) -> None:
        self._factory = factory
        self._streams: dict[tuple[str, int], np.random.Generator] = {}

    @property
    def factory(self) -> RngFactory:
        """The factory the per-node streams derive from."""
        return self._factory

    def get(self, kind: str, node: int) -> np.random.Generator:
        """The generator for ``(kind, node)``; derived once, then cached."""
        key = (kind, node)
        stream = self._streams.get(key)
        if stream is None:
            if kind not in self.KINDS:
                known = ", ".join(self.KINDS)
                raise ValueError(f"unknown stream kind {kind!r} (known: {known})")
            stream = self._factory.derive(f"node-{kind}", node)
            self._streams[key] = stream
        return stream
