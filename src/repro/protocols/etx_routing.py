"""ETX best-path routing (Couto et al. [9]) — the paper's baseline.

The control plane is a single shortest-path computation under the ETX
metric; the data plane is classic store-and-forward over that path with
MAC-layer retransmissions providing reliability ("we assume that
reliability is guaranteed by MAC layer re-transmissions, which is more
efficient than the end-to-end re-transmission", Sec. 5).

Throughput gains in the paper's Fig. 2 are all normalized by this
protocol's throughput.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.protocols.base import UnicastPathPlan
from repro.routing.etx import etx_weights
from repro.routing.node_selection import NodeSelectionError
from repro.routing.shortest_path import dijkstra
from repro.topology.graph import Link, WirelessNetwork


def plan_etx_route(
    network: WirelessNetwork,
    source: int,
    destination: int,
    *,
    weights: Optional[Dict[Link, float]] = None,
) -> UnicastPathPlan:
    """Compute the best ETX path for one session.

    ``weights`` may supply measured ETX values; the default uses oracle
    link qualities.  Raises :class:`NodeSelectionError` when no path
    exists (same error type as OMNC planning so campaign drivers can
    filter sessions uniformly).
    """
    if source == destination:
        raise NodeSelectionError("source and destination must differ")
    link_weights = weights if weights is not None else etx_weights(network)
    result = dijkstra(network.nodes(), link_weights, source)
    path = result.path_to(destination)
    if path is None:
        raise NodeSelectionError(
            f"destination {destination} unreachable from {source}"
        )
    return UnicastPathPlan(path=path, path_etx=result.distance[destination])


def predicted_etx_throughput(
    network: WirelessNetwork, plan: UnicastPathPlan
) -> float:
    """Analytic throughput estimate of an ETX path in bytes/second.

    Every delivered packet costs 1/p_hop transmissions on each hop, and
    hops within interference range of one another cannot proceed in
    parallel.  The bottleneck is the maximum, over links, of the summed
    expected airtime of all links interfering with it — a standard
    estimate for chain throughput under an ideal MAC.
    """
    hops = list(zip(plan.path, plan.path[1:]))
    costs = []
    for (i, j) in hops:
        p = network.probability(i, j)
        if p <= 0:
            return 0.0
        costs.append(1.0 / p)
    worst = 0.0
    for a, (i, j) in enumerate(hops):
        # Links conflict when their transmitters are within range of a
        # common receiver; approximate by transmitter distance <= 2 hops
        # of each other in the chain plus the shared-receiver test.
        load = 0.0
        for b, (k, l) in enumerate(hops):
            if _links_conflict(network, (i, j), (k, l)):
                load += costs[b]
        worst = max(worst, load)
    if worst == 0.0:  # repro: ignore[RPR004] exact sentinel (no load at all)
        return 0.0
    return network.capacity / worst


def _links_conflict(
    network: WirelessNetwork, first: Link, second: Link
) -> bool:
    """Conservative pairwise conflict test between directed links."""
    i, j = first
    k, l = second
    if first == second:
        return True
    # Transmitters in range of each other, or either transmitter in range
    # of the other's receiver.
    return (
        k in network.neighbors(i)
        or l in network.neighbors(i)
        or j in network.neighbors(k)
    )
