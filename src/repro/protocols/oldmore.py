"""oldMORE: the min-cost-flow planner of the preliminary MORE [5, 17].

The MORE technical report derived each node's transmission budget from
the min-cost wireless-unicast formulation of Lun et al. [17]: minimize
the total transmission rate needed to sustain a unit information flow,
subject to the same loss coupling b_i * p_ij >= x_ij — but with **no MAC
constraint and no rate control**.

Two properties follow, both of which the paper's evaluation exposes:

* the cost objective concentrates flow onto the cheapest (high-quality)
  links, pruning "a large number of nodes associated with low quality
  links" — the node/path utility gap of Fig. 4;
* nothing bounds the aggregate load a neighborhood can carry, so the
  plan can demand more airtime than exists — the congestion that drops
  oldMORE's throughput gain to ~1.12 (Fig. 2 left) and below ETX routing
  in high-quality networks (Fig. 2 right).

The data plane is identical to MORE's (credit-driven coded broadcast);
only the credit computation differs: z_i = b_i / gamma from the LP
instead of the ETX-ordered heuristic.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.optimization.problem import session_graph_from_selection
from repro.optimization.sunicast import solve_min_cost_routing
from repro.protocols.base import CreditBroadcastPlan
from repro.protocols.more import compute_tx_credits
from repro.routing.node_selection import select_forwarders
from repro.topology.graph import Link, WirelessNetwork

_UNIT_FLOW = 1e-3  # normalized probe flow; z is scale-invariant


def plan_oldmore(
    network: WirelessNetwork,
    source: int,
    destination: int,
    *,
    weights: Optional[Dict[Link, float]] = None,
) -> CreditBroadcastPlan:
    """Full oldMORE control plane: node selection + min-cost credits.

    The min-cost LP uses transmission-count (store-and-forward) cost
    semantics — see :func:`repro.optimization.sunicast.solve_min_cost_routing`
    for why this variant, rather than the broadcast-shared one, matches
    the path-pruning behaviour the paper reports for oldMORE.
    """
    forwarders = select_forwarders(
        network, source, destination, weights=weights
    )
    graph = session_graph_from_selection(network, forwarders)
    solution = solve_min_cost_routing(graph, throughput=_UNIT_FLOW)
    # z_i: transmissions per delivered source packet = rate / gamma.
    z: Dict[int, float] = {
        node: rate / _UNIT_FLOW
        for node, rate in solution.broadcast_rates.items()
    }
    credits = compute_tx_credits(network, forwarders, z)
    return CreditBroadcastPlan(
        forwarders=forwarders,
        tx_credits=credits,
        expected_transmissions=z,
    )
