"""Adaptive controllers: each protocol as a re-planning agent.

The static protocol modules expose one-shot planners (topology in, plan
out).  The live control plane instead needs a stateful *controller* it
can call repeatedly as the topology drifts:

* **OMNC** re-runs node selection and distributed rate control,
  warm-started from the previous run's dual prices
  (:class:`~repro.optimization.rate_control.RateControlDuals`) so
  re-convergence takes far fewer subgradient iterations than a cold
  start — the paper's Sec. 4 overhead argument, made quantitative;
* **MORE / oldMORE** recompute their heuristic TX credits (stateless,
  but still paying the node-selection flood);
* **ETX** re-routes over the drifted qualities.

Every controller also prices one re-initiation in channel-seconds
(:meth:`AdaptivePlanner.control_cost_seconds`), which the runner charges
against the data plane as stalled airtime.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.coding.finite_length import DEFAULT_CANDIDATES, optimal_blocks
from repro.coding.generation import DEFAULT_BLOCK_SIZE
from repro.optimization.rate_control import RateControlConfig, RateControlDuals
from repro.protocols.base import (
    CodedBroadcastPlan,
    CodingParams,
    CreditBroadcastPlan,
    SessionPlan,
    UnicastPathPlan,
)
from repro.protocols.etx_routing import plan_etx_route
from repro.protocols.more import plan_more
from repro.protocols.oldmore import plan_oldmore
from repro.protocols.omnc import plan_omnc_detailed
from repro.routing.pseudo_broadcast import reliable_flood
from repro.optimization.replanning import replan_cost
from repro.topology.graph import WirelessNetwork

DEFAULT_CONTROL_PACKET_BYTES = 64


class AdaptivePlanner:
    """Base controller: plan, re-plan, and price a re-initiation."""

    label = "base"

    def __init__(self, source: int, destination: int) -> None:
        if source == destination:
            raise ValueError("source and destination must differ")
        self._source = source
        self._destination = destination
        self._iterations: List[int] = []

    @property
    def source(self) -> int:
        """Session source."""
        return self._source

    @property
    def destination(self) -> int:
        """Session destination."""
        return self._destination

    @property
    def iterations_history(self) -> Tuple[int, ...]:
        """Rate-control iterations of every plan produced so far (0 for
        protocols without iterative rate control) — the warm-start
        evidence trail."""
        return tuple(self._iterations)

    def plan(self, network: WirelessNetwork) -> SessionPlan:
        """Produce a plan for the current topology (warm where supported)."""
        raise NotImplementedError

    def control_cost_seconds(self, network: WirelessNetwork) -> float:
        """Channel-seconds one re-initiation occupies on this topology."""
        raise NotImplementedError

    def _flood_seconds(self, network: WirelessNetwork) -> float:
        """Airtime of the node-selection pseudo-broadcast flood."""
        flood = reliable_flood(network, self._source)
        return (
            flood.total_transmissions
            * DEFAULT_CONTROL_PACKET_BYTES
            / network.capacity
        )


class AdaptiveOmncPlanner(AdaptivePlanner):
    """OMNC with dual-price carry-over between re-plans."""

    label = "omnc"

    def __init__(
        self,
        source: int,
        destination: int,
        *,
        config: RateControlConfig | None = None,
    ) -> None:
        super().__init__(source, destination)
        self._config = config
        self._duals: RateControlDuals | None = None

    @property
    def duals(self) -> RateControlDuals | None:
        """Dual prices of the latest plan (the warm-start state)."""
        return self._duals

    def plan(self, network: WirelessNetwork) -> CodedBroadcastPlan:
        report = plan_omnc_detailed(
            network,
            self._source,
            self._destination,
            config=self._config,
            warm_start=self._duals,
        )
        self._duals = report.duals
        self._iterations.append(report.plan.iterations)
        return report.plan

    def control_cost_seconds(self, network: WirelessNetwork) -> float:
        # Full Sec. 4 re-initiation: flood + rate-control message census,
        # measured by actually running both on the new topology.
        return replan_cost(
            network,
            self._source,
            self._destination,
            control_packet_bytes=DEFAULT_CONTROL_PACKET_BYTES,
            config=self._config,
        ).channel_seconds


class AdaptiveMorePlanner(AdaptivePlanner):
    """MORE: recompute heuristic credits; overhead is the flood only."""

    label = "more"

    def plan(self, network: WirelessNetwork) -> CreditBroadcastPlan:
        self._iterations.append(0)
        return plan_more(network, self._source, self._destination)

    def control_cost_seconds(self, network: WirelessNetwork) -> float:
        return self._flood_seconds(network)


class AdaptiveOldMorePlanner(AdaptivePlanner):
    """oldMORE: like MORE but with the min-cost credit computation."""

    label = "oldmore"

    def plan(self, network: WirelessNetwork) -> CreditBroadcastPlan:
        self._iterations.append(0)
        return plan_oldmore(network, self._source, self._destination)

    def control_cost_seconds(self, network: WirelessNetwork) -> float:
        return self._flood_seconds(network)


class AdaptiveEtxPlanner(AdaptivePlanner):
    """ETX: re-route; overhead is the link-state dissemination flood."""

    label = "etx"

    def plan(self, network: WirelessNetwork) -> UnicastPathPlan:
        self._iterations.append(0)
        return plan_etx_route(network, self._source, self._destination)

    def control_cost_seconds(self, network: WirelessNetwork) -> float:
        return self._flood_seconds(network)


class CodingController:
    """Per-epoch finite-length coding decisions for a live session.

    The adaptive planners above decide *who forwards at what rate*; this
    controller decides *how the session codes*: the generation size n
    and whether encoding is systematic.  Each epoch the runner hands it
    the drifted topology and the active plan; it estimates the session's
    loss rate from the link qualities among the plan's participants and
    (in ``"adaptive"`` mode) solves
    :func:`repro.coding.finite_length.optimal_blocks` for the n that
    minimizes expected per-block overhead within the decoding-delay
    budget.  Decisions ride the runtimes' ``apply_plan(coding=...)``
    path, so they take effect at the next generation boundary and never
    invalidate an in-flight decode.

    Modes:

    * ``"adaptive"`` — re-solve n from the observed qualities each
      epoch (dense encoding);
    * ``"systematic"`` — keep the configured n but emit each
      generation's blocks plainly first with dense repair after.
    """

    def __init__(
        self,
        mode: str,
        *,
        blocks: int,
        block_size: int = DEFAULT_BLOCK_SIZE,
        candidates: Tuple[int, ...] = DEFAULT_CANDIDATES,
    ) -> None:
        if mode not in ("adaptive", "systematic"):
            raise ValueError(
                f"mode must be 'adaptive' or 'systematic', got {mode!r}"
            )
        # Validate blocks/block_size through the canonical checks.
        CodingParams(blocks=blocks)
        self._mode = mode
        self._blocks = blocks
        self._block_size = block_size
        self._candidates = candidates
        self._history: List[CodingParams] = []

    @property
    def mode(self) -> str:
        """Controller mode (``"adaptive"`` or ``"systematic"``)."""
        return self._mode

    @property
    def history(self) -> Tuple[CodingParams, ...]:
        """Every decision produced so far, in order."""
        return tuple(self._history)

    @staticmethod
    def estimate_loss(network: WirelessNetwork, plan: SessionPlan) -> float:
        """Mean loss rate over the directed links among plan participants.

        The session only ever transmits on links whose both endpoints
        participate in the plan, so averaging (1 - p_ij) over that
        subgraph is the loss the finite-length model should see.  Falls
        back to 0 when the plan spans no internal links (degenerate
        single-hop layouts).
        """
        if isinstance(plan, UnicastPathPlan):
            participants = frozenset(plan.path)
        else:
            participants = plan.active_nodes()
        losses = [
            1.0 - prob
            for i, j, prob in network.links()
            if i in participants and j in participants
        ]
        if not losses:
            return 0.0
        return sum(losses) / len(losses)

    def decide(
        self, network: WirelessNetwork, plan: SessionPlan
    ) -> CodingParams | None:
        """Pick coding parameters for the current epoch (None = keep)."""
        if isinstance(plan, UnicastPathPlan):
            return None  # store-and-forward: nothing is coded
        if self._mode == "systematic":
            params = CodingParams(blocks=self._blocks, systematic=True)
        else:
            loss = self.estimate_loss(network, plan)
            blocks = optimal_blocks(
                loss,
                block_size=self._block_size,
                candidates=self._candidates,
            )
            params = CodingParams(blocks=blocks)
        self._history.append(params)
        return params


def make_coding_controller(
    coding: str,
    *,
    blocks: int,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> CodingController | None:
    """Coding-controller factory keyed by the CLI's ``--coding`` names.

    ``"static"`` — the paper's fixed generation size — needs no
    controller and maps to ``None``.
    """
    if coding == "static":
        return None
    return CodingController(coding, blocks=blocks, block_size=block_size)


def make_planner(
    protocol: str,
    source: int,
    destination: int,
    *,
    config: RateControlConfig | None = None,
) -> AdaptivePlanner:
    """Controller factory keyed by the CLI's protocol names."""
    if protocol == "omnc":
        return AdaptiveOmncPlanner(source, destination, config=config)
    if protocol == "more":
        return AdaptiveMorePlanner(source, destination)
    if protocol == "oldmore":
        return AdaptiveOldMorePlanner(source, destination)
    if protocol == "etx":
        return AdaptiveEtxPlanner(source, destination)
    raise ValueError(f"unknown protocol {protocol!r}")
