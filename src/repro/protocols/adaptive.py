"""Adaptive controllers: each protocol as a re-planning agent.

The static protocol modules expose one-shot planners (topology in, plan
out).  The live control plane instead needs a stateful *controller* it
can call repeatedly as the topology drifts:

* **OMNC** re-runs node selection and distributed rate control,
  warm-started from the previous run's dual prices
  (:class:`~repro.optimization.rate_control.RateControlDuals`) so
  re-convergence takes far fewer subgradient iterations than a cold
  start — the paper's Sec. 4 overhead argument, made quantitative;
* **MORE / oldMORE** recompute their heuristic TX credits (stateless,
  but still paying the node-selection flood);
* **ETX** re-routes over the drifted qualities.

Every controller also prices one re-initiation in channel-seconds
(:meth:`AdaptivePlanner.control_cost_seconds`), which the runner charges
against the data plane as stalled airtime.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.optimization.rate_control import RateControlConfig, RateControlDuals
from repro.protocols.base import (
    CodedBroadcastPlan,
    CreditBroadcastPlan,
    SessionPlan,
    UnicastPathPlan,
)
from repro.protocols.etx_routing import plan_etx_route
from repro.protocols.more import plan_more
from repro.protocols.oldmore import plan_oldmore
from repro.protocols.omnc import plan_omnc_detailed
from repro.routing.pseudo_broadcast import reliable_flood
from repro.optimization.replanning import replan_cost
from repro.topology.graph import WirelessNetwork

DEFAULT_CONTROL_PACKET_BYTES = 64


class AdaptivePlanner:
    """Base controller: plan, re-plan, and price a re-initiation."""

    label = "base"

    def __init__(self, source: int, destination: int) -> None:
        if source == destination:
            raise ValueError("source and destination must differ")
        self._source = source
        self._destination = destination
        self._iterations: List[int] = []

    @property
    def source(self) -> int:
        """Session source."""
        return self._source

    @property
    def destination(self) -> int:
        """Session destination."""
        return self._destination

    @property
    def iterations_history(self) -> Tuple[int, ...]:
        """Rate-control iterations of every plan produced so far (0 for
        protocols without iterative rate control) — the warm-start
        evidence trail."""
        return tuple(self._iterations)

    def plan(self, network: WirelessNetwork) -> SessionPlan:
        """Produce a plan for the current topology (warm where supported)."""
        raise NotImplementedError

    def control_cost_seconds(self, network: WirelessNetwork) -> float:
        """Channel-seconds one re-initiation occupies on this topology."""
        raise NotImplementedError

    def _flood_seconds(self, network: WirelessNetwork) -> float:
        """Airtime of the node-selection pseudo-broadcast flood."""
        flood = reliable_flood(network, self._source)
        return (
            flood.total_transmissions
            * DEFAULT_CONTROL_PACKET_BYTES
            / network.capacity
        )


class AdaptiveOmncPlanner(AdaptivePlanner):
    """OMNC with dual-price carry-over between re-plans."""

    label = "omnc"

    def __init__(
        self,
        source: int,
        destination: int,
        *,
        config: RateControlConfig | None = None,
    ) -> None:
        super().__init__(source, destination)
        self._config = config
        self._duals: RateControlDuals | None = None

    @property
    def duals(self) -> RateControlDuals | None:
        """Dual prices of the latest plan (the warm-start state)."""
        return self._duals

    def plan(self, network: WirelessNetwork) -> CodedBroadcastPlan:
        report = plan_omnc_detailed(
            network,
            self._source,
            self._destination,
            config=self._config,
            warm_start=self._duals,
        )
        self._duals = report.duals
        self._iterations.append(report.plan.iterations)
        return report.plan

    def control_cost_seconds(self, network: WirelessNetwork) -> float:
        # Full Sec. 4 re-initiation: flood + rate-control message census,
        # measured by actually running both on the new topology.
        return replan_cost(
            network,
            self._source,
            self._destination,
            control_packet_bytes=DEFAULT_CONTROL_PACKET_BYTES,
            config=self._config,
        ).channel_seconds


class AdaptiveMorePlanner(AdaptivePlanner):
    """MORE: recompute heuristic credits; overhead is the flood only."""

    label = "more"

    def plan(self, network: WirelessNetwork) -> CreditBroadcastPlan:
        self._iterations.append(0)
        return plan_more(network, self._source, self._destination)

    def control_cost_seconds(self, network: WirelessNetwork) -> float:
        return self._flood_seconds(network)


class AdaptiveOldMorePlanner(AdaptivePlanner):
    """oldMORE: like MORE but with the min-cost credit computation."""

    label = "oldmore"

    def plan(self, network: WirelessNetwork) -> CreditBroadcastPlan:
        self._iterations.append(0)
        return plan_oldmore(network, self._source, self._destination)

    def control_cost_seconds(self, network: WirelessNetwork) -> float:
        return self._flood_seconds(network)


class AdaptiveEtxPlanner(AdaptivePlanner):
    """ETX: re-route; overhead is the link-state dissemination flood."""

    label = "etx"

    def plan(self, network: WirelessNetwork) -> UnicastPathPlan:
        self._iterations.append(0)
        return plan_etx_route(network, self._source, self._destination)

    def control_cost_seconds(self, network: WirelessNetwork) -> float:
        return self._flood_seconds(network)


def make_planner(
    protocol: str,
    source: int,
    destination: int,
    *,
    config: RateControlConfig | None = None,
) -> AdaptivePlanner:
    """Controller factory keyed by the CLI's protocol names."""
    if protocol == "omnc":
        return AdaptiveOmncPlanner(source, destination, config=config)
    if protocol == "more":
        return AdaptiveMorePlanner(source, destination)
    if protocol == "oldmore":
        return AdaptiveOldMorePlanner(source, destination)
    if protocol == "etx":
        return AdaptiveEtxPlanner(source, destination)
    raise ValueError(f"unknown protocol {protocol!r}")
