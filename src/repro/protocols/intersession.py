"""Inter-session XOR relaying (COPE-style) for multi-session runs.

When two unicast sessions cross at a shared relay in opposite
directions — the canonical "Alice and Bob" exchange of COPE (Katti et
al.) and its coded-unicast successors — the relay can XOR one packet
from each session and broadcast the combination once instead of
forwarding twice.  Each next hop peels the combination using the
packet it natively knows (the one it originated), so two deliveries
cost one slot of airtime.

The split of responsibilities mirrors the rest of the repo:

* the **data plane** lives in :mod:`repro.emulator.multisession`
  (:class:`~repro.emulator.multisession.InterSessionXorRelay` pops one
  packet per paired session and emits an
  :class:`~repro.emulator.node.XorPacket`; the composite receiver
  peels a component iff it hosts every other component session's
  source runtime);
* the **control plane** here decides *where* XOR pairing is sound:
  :func:`plan_intersession_pairs` inspects the per-session plans and
  emits, per relay, the session pairs whose XORed broadcasts its next
  hops can provably peel.

Pairing rule — sessions ``s`` and ``t`` pair at relay ``r`` iff:

1. ``r`` is an intermediate forwarder with positive transmit budget
   (broadcast rate or TX credit) in *both* plans;
2. ``t``'s source is downstream of ``r`` in ``s``'s DAG and ``s``'s
   source is downstream of ``r`` in ``t``'s DAG.

Condition 2 is exactly the data plane's peel rule projected onto the
plans: the nodes that need ``s``'s packets from ``r`` include ``t``'s
origin (which natively knows ``t``'s component) and vice versa, so
neither broadcast direction wastes the combination.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from repro.emulator.node import InterSessionXorRelay, XorPacket
from repro.protocols.base import (
    CodedBroadcastPlan,
    CreditBroadcastPlan,
    SessionPlan,
)
from repro.routing.node_selection import ForwarderSet

__all__ = [
    "InterSessionXorRelay",
    "XorPacket",
    "plan_intersession_pairs",
    "relay_transmit_budget",
]

_BUDGET_EPSILON = 1e-9


def relay_transmit_budget(plan: SessionPlan, node: int) -> float:
    """The plan's transmit allowance at ``node``.

    Broadcast rate in bytes/second for rate plans, TX credit for credit
    plans.  Zero means the node never transmits for this session (it
    may still be in the selected set as a pruned forwarder).
    """
    if isinstance(plan, CodedBroadcastPlan):
        return plan.rates.get(node, 0.0)
    if isinstance(plan, CreditBroadcastPlan):
        return plan.tx_credits.get(node, 0.0)
    raise TypeError(
        f"inter-session XOR needs coded broadcast plans, got "
        f"{type(plan).__name__}"
    )


def _forwarders(plan: SessionPlan) -> ForwarderSet:
    if isinstance(plan, (CodedBroadcastPlan, CreditBroadcastPlan)):
        return plan.forwarders
    raise TypeError(
        f"inter-session XOR needs coded broadcast plans, got "
        f"{type(plan).__name__}"
    )


def _pairs_at_relay(
    node: int,
    session_ids: List[int],
    plans: Mapping[int, SessionPlan],
) -> Tuple[Tuple[int, int], ...]:
    eligible: List[Tuple[int, int]] = []
    for index, sid_a in enumerate(session_ids):
        for sid_b in session_ids[index + 1 :]:
            dag_a = _forwarders(plans[sid_a])
            dag_b = _forwarders(plans[sid_b])
            if dag_b.source not in dag_a.downstream(node):
                continue
            if dag_a.source not in dag_b.downstream(node):
                continue
            eligible.append((sid_a, sid_b))
    return tuple(eligible)


def plan_intersession_pairs(
    plans: Mapping[int, SessionPlan],
) -> Dict[int, Tuple[Tuple[int, int], ...]]:
    """XOR-eligible session pairs per shared relay.

    Args:
        plans: session id -> coded plan, as passed to
            :func:`repro.emulator.multisession.run_multi_session`.

    Returns:
        relay node -> sorted tuple of (session, session) pairs, ready
        for ``run_multi_session``'s ``xor_pairs`` argument.  Relays
        with no eligible pair are omitted, so an empty dict means the
        workload has no coding opportunity and the runner falls back to
        plain per-session RLNC everywhere.
    """
    transmitters: Dict[int, List[int]] = {}
    for sid in sorted(plans):
        plan = plans[sid]
        forwarders = _forwarders(plan)
        for node in sorted(forwarders.nodes):
            if node in (forwarders.source, forwarders.destination):
                continue
            if relay_transmit_budget(plan, node) <= _BUDGET_EPSILON:
                continue
            transmitters.setdefault(node, []).append(sid)

    pairs: Dict[int, Tuple[Tuple[int, int], ...]] = {}
    for node in sorted(transmitters):
        session_ids = transmitters[node]
        if len(session_ids) < 2:
            continue
        eligible = _pairs_at_relay(node, session_ids, plans)
        if eligible:
            pairs[node] = eligible
    return pairs
