"""Plan types, re-exported from their home in the data plane.

The plan dataclasses live in :mod:`repro.emulator.plan`: the emulator
executes plans, so it owns the types, and the protocol planners import
them from the layer below (see the RPR101 layering contract in
``pyproject.toml``).  This module keeps the historical import surface —
``from repro.protocols.base import CodedBroadcastPlan`` — working for
every control-plane consumer.
"""

from __future__ import annotations

from repro.emulator.plan import (
    CodedBroadcastPlan,
    CodingParams,
    CreditBroadcastPlan,
    SessionPlan,
    UnicastPathPlan,
)

__all__ = [
    "CodedBroadcastPlan",
    "CodingParams",
    "CreditBroadcastPlan",
    "SessionPlan",
    "UnicastPathPlan",
]
