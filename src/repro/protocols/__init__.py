"""Protocol control planes: OMNC and its three comparison baselines.

* :mod:`repro.protocols.omnc` — node selection + distributed rate
  control (the paper's contribution).
* :mod:`repro.protocols.more` — the MORE heuristic (ETX-ordered expected
  transmissions, TX credits, no rate control).
* :mod:`repro.protocols.oldmore` — the preliminary MORE: credits from
  the Lun et al. min-cost LP (prunes low-quality paths, no rate control).
* :mod:`repro.protocols.etx_routing` — single best-path routing under
  the ETX metric (the throughput-gain denominator).
* :mod:`repro.protocols.intersession` — COPE-style inter-session XOR
  pairing at shared relays for multi-session runs.
* :mod:`repro.protocols.base` — the plan dataclasses the emulator runs.
"""

from repro.protocols.base import (
    CodedBroadcastPlan,
    CreditBroadcastPlan,
    SessionPlan,
    UnicastPathPlan,
)
from repro.protocols.etx_routing import plan_etx_route, predicted_etx_throughput
from repro.protocols.intersession import (
    plan_intersession_pairs,
    relay_transmit_budget,
)
from repro.protocols.more import (
    compute_expected_transmissions,
    compute_tx_credits,
    effective_forwarders,
    plan_more,
    total_expected_transmissions,
)
from repro.protocols.oldmore import plan_oldmore
from repro.protocols.omnc import (
    OmncMultiReport,
    OmncPlanReport,
    plan_omnc,
    plan_omnc_detailed,
    plan_omnc_multi,
)

__all__ = [
    "CodedBroadcastPlan",
    "CreditBroadcastPlan",
    "OmncMultiReport",
    "OmncPlanReport",
    "SessionPlan",
    "UnicastPathPlan",
    "compute_expected_transmissions",
    "compute_tx_credits",
    "effective_forwarders",
    "plan_etx_route",
    "plan_intersession_pairs",
    "plan_more",
    "plan_oldmore",
    "plan_omnc",
    "plan_omnc_detailed",
    "plan_omnc_multi",
    "predicted_etx_throughput",
    "relay_transmit_budget",
    "total_expected_transmissions",
]
