"""The MORE protocol's forwarding heuristic (Chachulski et al. [6]).

MORE pairs random linear network coding with a *centralized heuristic*
that tells every forwarder how often to transmit.  The computation, per
the SIGCOMM'07 paper:

1. Order the selected nodes by ETX distance to the destination (smaller
   = "closer"); only packets moving from farther to closer nodes count.
2. For each node i, let z_i be the expected number of transmissions i
   makes per source packet delivered.  A forwarder j must forward the
   packets it alone received (no node closer to the destination heard
   them):

       L_j = sum_{i farther than j} z_i * p_ij *
             prod_{k closer than j} (1 - p_ik)

   and needs on average 1 / P(someone closer hears me) transmissions per
   forwarded packet:

       z_j = L_j / (1 - prod_{k closer than j} (1 - p_jk))

   For the source, L_s = 1.
3. The data plane constant is the **TX credit**: transmissions j makes
   per packet heard from upstream,

       tx_credit_j = z_j / (sum_{i farther than j} z_i * p_ij)

The crucial contrast with OMNC (paper Sec. 5): nothing in this
computation knows the channel capacity — "although the heuristic in MORE
tells each node how many packets it should generate, it is not aware of
whether the packets can be sent out" — which is exactly what the queue
experiment (Fig. 3) exposes.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.protocols.base import CreditBroadcastPlan
from repro.routing.node_selection import ForwarderSet, select_forwarders
from repro.topology.graph import Link, WirelessNetwork


def compute_expected_transmissions(
    network: WirelessNetwork, forwarders: ForwarderSet
) -> Dict[int, float]:
    """The z_i vector of MORE's heuristic (expected TX per source packet).

    Nodes that cannot usefully forward (nobody closer hears them, or they
    never hear an undelivered packet) get z_i = 0; MORE prunes them from
    the forwarder list.
    """
    order = forwarders.ordered_by_distance()  # closest first
    distance = forwarders.etx_distance
    z: Dict[int, float] = {node: 0.0 for node in order}

    # Walk from the farthest node (the source) toward the destination so
    # every "farther" z_i is known when we need it.
    for j in reversed(order):
        if j == forwarders.destination:
            continue
        closer = [k for k in order if distance[k] < distance[j]]
        if j == forwarders.source:
            expected_forward = 1.0
        else:
            expected_forward = 0.0
            for i in order:
                if distance[i] <= distance[j] or z[i] == 0.0:  # repro: ignore[RPR004] exact sentinel
                    continue
                p_ij = network.probability(i, j)
                if p_ij == 0.0:  # repro: ignore[RPR004] exact sentinel (no link)
                    continue
                # Probability j hears i while nobody closer does.
                miss_closer = 1.0
                for k in closer:
                    miss_closer *= 1.0 - network.probability(i, k)
                expected_forward += z[i] * p_ij * miss_closer
        if expected_forward == 0.0:  # repro: ignore[RPR004] exact sentinel
            continue
        delivery = 1.0
        for k in closer:
            delivery *= 1.0 - network.probability(j, k)
        reach = 1.0 - delivery
        if reach <= 0.0:
            continue  # nobody closer can hear j: useless forwarder
        z[j] = expected_forward / reach
    return z


def compute_tx_credits(
    network: WirelessNetwork,
    forwarders: ForwarderSet,
    z: Dict[int, float],
) -> Dict[int, float]:
    """TX credit per forwarder: z_j over expected packets heard from
    upstream.  The source streams continuously and takes no credit."""
    distance = forwarders.etx_distance
    credits: Dict[int, float] = {}
    for j in forwarders.nodes:
        if j in (forwarders.source, forwarders.destination):
            continue
        if z.get(j, 0.0) == 0.0:  # repro: ignore[RPR004] exact sentinel
            continue
        heard = 0.0
        for i in forwarders.nodes:
            if distance[i] <= distance[j]:
                continue
            heard += z.get(i, 0.0) * network.probability(i, j)
        if heard <= 0.0:
            continue
        credits[j] = z[j] / heard
    return credits


def plan_more(
    network: WirelessNetwork,
    source: int,
    destination: int,
    *,
    weights: Optional[Dict[Link, float]] = None,
) -> CreditBroadcastPlan:
    """Full MORE control plane: node selection + heuristic credits."""
    forwarders = select_forwarders(
        network, source, destination, weights=weights
    )
    z = compute_expected_transmissions(network, forwarders)
    credits = compute_tx_credits(network, forwarders, z)
    return CreditBroadcastPlan(
        forwarders=forwarders,
        tx_credits=credits,
        expected_transmissions=z,
    )


def total_expected_transmissions(z: Dict[int, float]) -> float:
    """Sum of z_i: the heuristic's cost-per-delivered-packet estimate."""
    return float(sum(z.values()))


def effective_forwarders(
    plan: CreditBroadcastPlan, threshold: float = 1e-9
) -> Tuple[int, ...]:
    """Forwarders MORE actually uses (positive credit)."""
    return tuple(
        sorted(n for n, c in plan.tx_credits.items() if c > threshold)
    )
