"""Structured event tracing with JSON-lines export.

Where :mod:`repro.obs.metrics` aggregates, the tracer keeps *individual*
events: one :class:`TraceRecord` per occurrence, carrying a kind, a
monotonically increasing sequence number, and arbitrary scalar fields.
This is what the optimizer uses to expose its full dual-price
trajectories (lambda/beta per iteration — the raw material of the
paper's Fig. 1) and what offline analysis consumes through the JSONL
round-trip.

The log is bounded: past ``capacity`` the oldest records are dropped and
counted, so tracing a paper-scale campaign cannot exhaust memory while
the recent window stays intact.  Like the metric instruments, a
:data:`NULL_TRACER` absorbs events for free so instrumented code can
hold a tracer unconditionally.
"""

from __future__ import annotations

import json
from collections import Counter as TallyCounter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union, cast

__all__ = ["EventTracer", "NULL_TRACER", "TraceRecord"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced event.

    Attributes:
        seq: 0-based global sequence number (survives eviction — the
            first retained record of a saturated tracer has seq > 0).
        kind: event type, a free-form dotted string
            (e.g. ``"rate_control.iteration"``).
        fields: scalar payload (numbers / strings / bools).
    """

    seq: int
    kind: str
    fields: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-compatible representation."""
        record = {"seq": self.seq, "kind": self.kind}
        record.update(self.fields)
        return record

    @staticmethod
    def from_dict(record: dict) -> "TraceRecord":
        """Inverse of :meth:`as_dict`."""
        payload = {
            key: value
            for key, value in record.items()
            if key not in ("seq", "kind")
        }
        return TraceRecord(seq=record["seq"], kind=record["kind"], fields=payload)


class EventTracer:
    """Bounded structured event log."""

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self._capacity = capacity
        self._records: List[TraceRecord] = []
        self._seq = 0
        self.dropped = 0

    @property
    def enabled(self) -> bool:
        """False only on :data:`NULL_TRACER`."""
        return True

    @property
    def capacity(self) -> int:
        """Maximum retained records."""
        return self._capacity

    def emit(self, kind: str, **fields: object) -> None:
        """Record one event with scalar ``fields``."""
        if not kind:
            raise ValueError("event kind must be non-empty")
        self._records.append(TraceRecord(self._seq, kind, fields))
        self._seq += 1
        if len(self._records) > self._capacity:
            overflow = len(self._records) - self._capacity
            del self._records[:overflow]
            self.dropped += overflow

    def __len__(self) -> int:
        return len(self._records)

    def records(
        self, *, kind: Optional[str] = None
    ) -> Iterator[TraceRecord]:
        """Iterate retained records, optionally filtered by kind."""
        for record in self._records:
            if kind is None or record.kind == kind:
                yield record

    def last(self, kind: Optional[str] = None) -> Optional[TraceRecord]:
        """Most recent (matching) record, or None."""
        for record in reversed(self._records):
            if kind is None or record.kind == kind:
                return record
        return None

    def summary(self) -> Dict[str, int]:
        """Retained record counts per kind."""
        return dict(TallyCounter(record.kind for record in self._records))

    def series(self, kind: str, field_name: str) -> List[float]:
        """One field's values across all retained records of ``kind``.

        Records missing the field are skipped — this is how experiment
        code pulls a trajectory (e.g. ``lambda_max`` per iteration) out
        of the trace without touching the optimizer's internals.
        """
        values: List[float] = []
        for record in self.records(kind=kind):
            if field_name in record.fields:
                values.append(cast(float, record.fields[field_name]))
        return values

    def to_jsonl(self, path: Union[str, Path]) -> int:
        """Write retained records as JSON lines; returns the line count."""
        path = Path(path)
        with path.open("w") as handle:
            for record in self._records:
                handle.write(json.dumps(record.as_dict()) + "\n")
        return len(self._records)

    @staticmethod
    def read_jsonl(path: Union[str, Path]) -> Tuple[TraceRecord, ...]:
        """Load records previously written by :meth:`to_jsonl`."""
        records = []
        for line in Path(path).read_text().splitlines():
            if line.strip():
                records.append(TraceRecord.from_dict(json.loads(line)))
        return tuple(records)


class _NullTracer(EventTracer):
    """Shared no-op tracer; ``emit`` discards everything."""

    def __init__(self) -> None:
        super().__init__(capacity=1)

    @property
    def enabled(self) -> bool:
        return False

    def emit(self, kind: str, **fields: object) -> None:
        pass


NULL_TRACER = _NullTracer()
