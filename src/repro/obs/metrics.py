"""Counters, gauges, histograms and the registry that holds them.

The observability layer follows one rule: **when collection is off, the
instrumented code must pay (almost) nothing**.  Components therefore
resolve their instruments *once*, at construction time, and the registry
hands back shared no-op singletons when it is disabled.  The per-event
cost on a cold path is then a single bound-method call that immediately
returns — cheap enough to leave in the emulator slot loop and the
Gauss-Jordan elimination kernel permanently.

Three instrument kinds cover everything the experiments need:

* :class:`Counter` — monotone event/byte counts (packets sent, bytes
  encoded);
* :class:`Gauge` — last-value samples (decoder rank, virtual time,
  current step size);
* :class:`Histogram` — bounded-reservoir distributions with exact
  percentiles over the retained sample (queue depths, decode overhead).

Components *attach* to a :class:`MetricsRegistry` through
:meth:`MetricsRegistry.attach`, which returns a scoped view prefixing
every metric name (``attach("decoder")`` then ``counter("innovative")``
creates ``decoder.innovative``); :meth:`MetricsRegistry.detach` drops a
component's metrics wholesale.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Type, TypeVar, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Instrument",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
]


class Instrument:
    """Base class: a named instrument that can render itself to a dict."""

    kind = "instrument"

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description

    @property
    def enabled(self) -> bool:
        """False only on the shared null instruments."""
        return True

    def as_dict(self) -> dict:
        raise NotImplementedError


class Counter(Instrument):
    """Monotonically increasing count (events, packets, bytes)."""

    kind = "counter"

    def __init__(self, name: str, description: str = "") -> None:
        super().__init__(name, description)
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current total."""
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self._value += amount

    def as_dict(self) -> dict:
        return {"kind": self.kind, "value": self._value}


class Gauge(Instrument):
    """Last-value instrument (queue depth, rank, step size)."""

    kind = "gauge"

    def __init__(self, name: str, description: str = "") -> None:
        super().__init__(name, description)
        self._value = 0.0
        self._updates = 0

    @property
    def value(self) -> float:
        """Most recently set value."""
        return self._value

    @property
    def updates(self) -> int:
        """How many times the gauge has been set."""
        return self._updates

    def set(self, value: float) -> None:
        """Record the current level."""
        self._value = float(value)
        self._updates += 1

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the level relatively (negative amounts allowed)."""
        self._value += amount
        self._updates += 1

    def as_dict(self) -> dict:
        return {"kind": self.kind, "value": self._value, "updates": self._updates}


class Histogram(Instrument):
    """Distribution with exact percentiles over a bounded reservoir.

    ``count``/``sum``/``min``/``max`` are exact over *all* observations;
    percentiles are computed over the most recent ``max_samples`` values
    (the reservoir is a ring buffer, so long campaigns stay bounded while
    the recent window — usually what a regression check reads — stays
    exact).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        description: str = "",
        *,
        max_samples: int = 10_000,
    ) -> None:
        if max_samples <= 0:
            raise ValueError(f"max_samples must be > 0, got {max_samples}")
        super().__init__(name, description)
        self._max_samples = max_samples
        self._samples: List[float] = []
        self._next = 0  # ring-buffer write position once full
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    @property
    def count(self) -> int:
        """Total observations (including evicted ones)."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observations."""
        return self._sum

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self._sum / self._count if self._count else 0.0

    @property
    def minimum(self) -> float:
        """Smallest observation (inf when empty)."""
        return self._min

    @property
    def maximum(self) -> float:
        """Largest observation (-inf when empty)."""
        return self._max

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        self._store(value)

    def _store(self, value: float) -> None:
        """Place one value in the reservoir without touching the totals."""
        if len(self._samples) < self._max_samples:
            self._samples.append(value)
        else:
            self._samples[self._next] = value
            self._next = (self._next + 1) % self._max_samples

    def absorb(self, record: dict) -> None:
        """Fold a rendered histogram dict (see :meth:`as_dict`) into this one.

        Exact for ``count`` / ``sum`` / ``min`` / ``max``; the record's
        retained ``samples`` (present when the snapshot was taken with
        ``include_samples=True``) join this reservoir, so percentiles of
        the merged histogram cover both sides' retained windows.  This
        is how per-worker registries from parallel campaign jobs fold
        back into the parent registry.
        """
        count = int(record.get("count", 0))
        if count <= 0:
            return
        self._count += count
        self._sum += float(record.get("sum", 0.0))
        if "min" in record and float(record["min"]) < self._min:
            self._min = float(record["min"])
        if "max" in record and float(record["max"]) > self._max:
            self._max = float(record["max"])
        for value in record.get("samples", ()):
            self._store(float(value))

    def samples(self) -> List[float]:
        """Copy of the retained reservoir (arbitrary order)."""
        return list(self._samples)

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile ``p`` in [0, 100] of the reservoir."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._samples:
            raise ValueError(f"histogram {self.name!r} has no samples")
        ordered = sorted(self._samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return ordered[low]
        fraction = rank - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    def as_dict(self, *, include_samples: bool = False) -> dict:
        record = {
            "kind": self.kind,
            "count": self._count,
            "sum": self._sum,
            "mean": self.mean,
        }
        if self._count:
            record["min"] = self._min
            record["max"] = self._max
            record["p50"] = self.percentile(50)
            record["p90"] = self.percentile(90)
            record["p99"] = self.percentile(99)
            if include_samples:
                record["samples"] = list(self._samples)
        return record


class _NullCounter(Counter):
    """Shared no-op counter handed out by disabled registries."""

    def __init__(self) -> None:
        super().__init__("null", "disabled")

    @property
    def enabled(self) -> bool:
        return False

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    """Shared no-op gauge handed out by disabled registries."""

    def __init__(self) -> None:
        super().__init__("null", "disabled")

    @property
    def enabled(self) -> bool:
        return False

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram(Histogram):
    """Shared no-op histogram handed out by disabled registries."""

    def __init__(self) -> None:
        super().__init__("null", "disabled")

    @property
    def enabled(self) -> bool:
        return False

    def observe(self, value: float) -> None:
        pass


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()

_InstrumentT = TypeVar("_InstrumentT", bound=Instrument)


class MetricsRegistry:
    """Named instrument store components attach to.

    A disabled registry (``enabled=False``) hands out the shared null
    instruments from :meth:`counter`/:meth:`gauge`/:meth:`histogram`, so
    instrumented constructors can resolve unconditionally and the hot
    path never branches on a flag.
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self._enabled = enabled
        self._instruments: Dict[str, Instrument] = {}

    @property
    def enabled(self) -> bool:
        """Whether this registry records anything at all."""
        return self._enabled

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def names(self) -> List[str]:
        """Sorted names of all registered instruments."""
        return sorted(self._instruments)

    def _get_or_create(
        self, cls: Type[_InstrumentT], name: str, description: str, **kwargs: Any
    ) -> _InstrumentT:
        if not name:
            raise ValueError("instrument name must be non-empty")
        existing = self._instruments.get(name)
        if existing is not None:
            if isinstance(existing, cls) and type(existing) is cls:
                return existing
            raise TypeError(
                f"metric {name!r} already registered as {existing.kind}"
            )
        instrument = cls(name, description, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, description: str = "") -> Counter:
        """Get or create the counter ``name``."""
        if not self._enabled:
            return NULL_COUNTER
        return self._get_or_create(Counter, name, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        """Get or create the gauge ``name``."""
        if not self._enabled:
            return NULL_GAUGE
        return self._get_or_create(Gauge, name, description)

    def histogram(
        self, name: str, description: str = "", *, max_samples: int = 10_000
    ) -> Histogram:
        """Get or create the histogram ``name``."""
        if not self._enabled:
            return NULL_HISTOGRAM
        return self._get_or_create(
            Histogram, name, description, max_samples=max_samples
        )

    def get(self, name: str) -> Instrument:
        """Look up a registered instrument; raises ``KeyError`` if absent."""
        return self._instruments[name]

    def value(self, name: str, default: float = 0.0) -> float:
        """Convenience: a counter/gauge value, ``default`` when absent."""
        instrument = self._instruments.get(name)
        if instrument is None:
            return default
        if isinstance(instrument, (Counter, Gauge)):
            return instrument.value
        raise TypeError(f"metric {name!r} is a {instrument.kind}, not a scalar")

    def attach(self, component: str) -> "ScopedRegistry":
        """A scoped view for ``component``: names get ``component.`` prefixed."""
        if not component:
            raise ValueError("component name must be non-empty")
        return ScopedRegistry(self, component)

    def detach(self, component: str) -> int:
        """Drop every metric under ``component.``; returns how many."""
        prefix = component + "."
        doomed = [n for n in self._instruments if n.startswith(prefix)]
        for name in doomed:
            del self._instruments[name]
        return len(doomed)

    def snapshot(
        self, prefix: Optional[str] = None, *, include_samples: bool = False
    ) -> Dict[str, dict]:
        """All (or ``prefix``-selected) instruments rendered to plain dicts.

        ``include_samples`` adds each histogram's retained reservoir to
        its dict, making the snapshot losslessly mergeable with
        :meth:`merge_snapshot` — the form campaign worker processes ship
        back to the parent.
        """
        return {
            name: (
                instrument.as_dict(include_samples=True)
                if include_samples and isinstance(instrument, Histogram)
                else instrument.as_dict()
            )
            for name, instrument in sorted(self._instruments.items())
            if prefix is None or name.startswith(prefix)
        }

    def merge_snapshot(self, snapshot: Dict[str, dict]) -> None:
        """Fold another registry's rendered snapshot into this one.

        Counters add, gauges keep the incoming value (last-merge wins),
        histograms absorb totals and retained samples (see
        :meth:`Histogram.absorb`).  Merging is deterministic: iterate
        snapshots in a fixed order (the campaign driver merges in
        session-index order) and the result is independent of how the
        work was scheduled.  No-op on a disabled registry.
        """
        if not self._enabled:
            return
        for name, record in sorted(snapshot.items()):
            kind = record.get("kind")
            if kind == "counter":
                self.counter(name).inc(float(record.get("value", 0.0)))
            elif kind == "gauge":
                self.gauge(name).set(float(record.get("value", 0.0)))
            elif kind == "histogram":
                self.histogram(name).absorb(record)

    def to_json(self, path: Union[str, Path]) -> None:
        """Write :meth:`snapshot` as pretty-printed JSON."""
        Path(path).write_text(json.dumps(self.snapshot(), indent=2) + "\n")

    def reset(self) -> None:
        """Forget every instrument (fresh run on a reused registry)."""
        self._instruments.clear()


class ScopedRegistry:
    """A component's view of a registry: every name gets a prefix.

    Obtained from :meth:`MetricsRegistry.attach`; forwards to the parent
    so scoped and unscoped lookups of the same full name share one
    instrument.
    """

    def __init__(self, parent: MetricsRegistry, prefix: str) -> None:
        self._parent = parent
        self._prefix = prefix

    @property
    def enabled(self) -> bool:
        """Mirrors the parent registry."""
        return self._parent.enabled

    @property
    def prefix(self) -> str:
        """The component prefix (without the trailing dot)."""
        return self._prefix

    def _full(self, name: str) -> str:
        return f"{self._prefix}.{name}"

    def counter(self, name: str, description: str = "") -> Counter:
        return self._parent.counter(self._full(name), description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._parent.gauge(self._full(name), description)

    def histogram(
        self, name: str, description: str = "", *, max_samples: int = 10_000
    ) -> Histogram:
        return self._parent.histogram(
            self._full(name), description, max_samples=max_samples
        )

    def get(self, name: str) -> Instrument:
        return self._parent.get(self._full(name))

    def detach(self) -> int:
        """Remove every metric this scope created."""
        return self._parent.detach(self._prefix)


def summarize_values(values: Iterable[float]) -> Histogram:
    """Fold an iterable into a throwaway histogram (handy in experiments)."""
    histogram = Histogram("summary")
    for value in values:
        histogram.observe(value)
    return histogram
