"""Observability: metrics, structured tracing, and the global registry.

The subsystem has two halves:

* :mod:`repro.obs.metrics` — counters / gauges / histograms behind a
  :class:`MetricsRegistry` that components attach to;
* :mod:`repro.obs.tracer` — a structured :class:`EventTracer` with
  JSON-lines export for per-event trajectories (dual prices, decode
  progress).

Collection is **off by default**.  Instrumented components resolve their
registry with :func:`resolve` — an explicit registry wins, otherwise the
process-global one — and a disabled registry hands out shared no-op
instruments, so the emulator slot loop and the GF(2^8) kernels pay one
no-op method call per event when observability is off.

Typical use::

    from repro import obs

    with obs.collecting() as registry:
        result = run_coded_session(network, plan, config=cfg, rng=rng)
    registry.value("emulator.slots")          # counters across the run
    registry.get("decoder.rank").value        # gauge: final decoder rank

or, for one component only::

    registry = obs.MetricsRegistry()
    decoder = ProgressiveDecoder(16, 256, registry=registry)

Enabling the global registry also meters the GF(2^8) codec itself
(``codec.bytes_processed``), which is wired through a module-level hook
in :mod:`repro.coding.gf256` so the disabled cost there is a single
``is None`` check.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Instrument,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    ScopedRegistry,
    summarize_values,
)
from repro.obs.tracer import EventTracer, NULL_TRACER, TraceRecord

__all__ = [
    "Counter",
    "EventTracer",
    "Gauge",
    "Histogram",
    "Instrument",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_TRACER",
    "ScopedRegistry",
    "TraceRecord",
    "collecting",
    "disable",
    "enable",
    "get_registry",
    "resolve",
    "resolve_tracer",
    "summarize_values",
]

# The process-global registry.  Starts disabled: resolve(None) then hands
# out null instruments and nothing is recorded anywhere.
_global_registry = MetricsRegistry(enabled=False)


def get_registry() -> MetricsRegistry:
    """The current process-global registry (disabled unless enabled)."""
    return _global_registry


def resolve(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """The registry a component should use: explicit wins, else global."""
    return registry if registry is not None else _global_registry


def resolve_tracer(tracer: Optional[EventTracer]) -> EventTracer:
    """The tracer a component should use: explicit wins, else the null one."""
    return tracer if tracer is not None else NULL_TRACER


def _install_codec_hook(registry: MetricsRegistry) -> None:
    """Point the GF(2^8) kernels' byte meter at ``registry`` (or unhook).

    Imported lazily: ``repro.coding`` imports the decoder, which imports
    this package, so a module-level import here would be circular.
    """
    from repro.coding import backends, gf256

    if registry.enabled:
        counter = registry.counter(
            "codec.bytes_processed",
            "bytes pushed through the GF(2^8) row kernels (encode + decode)",
        )
        gf256.set_bytes_hook(counter.inc)
        # Tag the run with the backend that serves it (a 1-valued gauge
        # per name, since metric values are floats, not strings).
        registry.gauge(
            f"codec.backend.{backends.active_backend_name()}",
            "GF(2^8) backend active when collection was enabled (1 = this one)",
        ).set(1)
    else:
        gf256.set_bytes_hook(None)


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Switch global collection on; returns the now-active registry."""
    global _global_registry
    _global_registry = registry if registry is not None else MetricsRegistry()
    _install_codec_hook(_global_registry)
    return _global_registry


def disable() -> None:
    """Switch global collection off (the default state)."""
    global _global_registry
    _global_registry = MetricsRegistry(enabled=False)
    _install_codec_hook(_global_registry)


@contextmanager
def collecting(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Enable global collection for a ``with`` block, then restore.

    The previous global registry (enabled or not) comes back on exit, so
    nested collection scopes behave.
    """
    global _global_registry
    previous = _global_registry
    active = enable(registry)
    try:
        yield active
    finally:
        _global_registry = previous
        _install_codec_hook(_global_registry)
