"""Scenario specifications and their replay onto a topology.

A :class:`ScenarioSpec` is pure data: a named schedule of timed events
over one session's lifetime, sliced into fixed *epochs* at whose
boundaries the live control plane observes the network and may re-plan.
Event kinds:

* ``drift`` — every link quality moves by logit-space Gaussian noise of
  scale ``sigma`` (:func:`repro.topology.dynamics.perturb_link_qualities`);
* ``fail`` — a node's links all disappear (radio dies); geometry and
  node ids are preserved so decoder/session state survives;
* ``recover`` — a failed node's links return at their pre-failure
  qualities;
* ``load`` — the application changes its offered load (CBR fraction);
* ``session_arrive`` / ``session_depart`` — a unicast session joins or
  leaves a multi-session run (consumed by
  :func:`repro.emulator.multisession.run_multi_session`; the timeline's
  topology replay ignores them).

:class:`ScenarioTimeline` is the executable view: it replays a spec's
events onto a concrete :class:`~repro.topology.graph.WirelessNetwork`,
drawing drift noise from a dedicated RNG stream so a fixed seed plus a
fixed scenario reproduces the exact same sequence of topologies.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Tuple

from repro.topology.dynamics import perturb_link_qualities
from repro.topology.graph import Link, WirelessNetwork
from repro.util.rng import RngLike, as_rng

SCENARIO_EVENT_KINDS = (
    "drift",
    "fail",
    "recover",
    "load",
    "session_arrive",
    "session_depart",
)


@dataclass(frozen=True)
class ScenarioEvent:
    """One timed event.

    Attributes:
        at: emulated seconds from session start.
        kind: one of :data:`SCENARIO_EVENT_KINDS`.
        sigma: drift magnitude in logit space (``drift`` only).
        node: the affected node (``fail``/``recover`` only).
        cbr_fraction: the new offered load as a fraction of channel
            capacity (``load`` only).
        session_id: the joining/leaving session
            (``session_arrive``/``session_depart`` only).
        source: the arriving session's source node (``session_arrive``
            only, informational — the runner pre-builds the plan).
        destination: the arriving session's destination node
            (``session_arrive`` only, informational).
    """

    at: float
    kind: str
    sigma: float = 0.0
    node: int | None = None
    cbr_fraction: float | None = None
    session_id: int | None = None
    source: int | None = None
    destination: int | None = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"event time must be >= 0, got {self.at}")
        if self.kind not in SCENARIO_EVENT_KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}")
        if self.kind == "drift" and self.sigma <= 0:
            raise ValueError(f"drift events need sigma > 0, got {self.sigma}")
        if self.kind in ("fail", "recover"):
            if self.node is None or self.node < 0:
                raise ValueError(f"{self.kind} events need a node id >= 0")
        if self.kind == "load":
            if self.cbr_fraction is None or not 0.0 < self.cbr_fraction <= 1.0:
                raise ValueError(
                    f"load events need cbr_fraction in (0, 1], got {self.cbr_fraction}"
                )
        if self.kind in ("session_arrive", "session_depart"):
            if self.session_id is None or self.session_id < 0:
                raise ValueError(f"{self.kind} events need a session_id >= 0")
        if self.kind == "session_arrive":
            for field in (self.source, self.destination):
                if field is not None and field < 0:
                    raise ValueError(
                        f"session_arrive endpoints must be node ids >= 0"
                    )
            if self.source is not None and self.source == self.destination:
                raise ValueError(
                    "session_arrive source and destination must differ"
                )

    def as_dict(self) -> dict[str, object]:
        """JSON-compatible representation (omits unused fields)."""
        record: dict[str, object] = {"at": self.at, "kind": self.kind}
        if self.kind == "drift":
            record["sigma"] = self.sigma
        if self.node is not None:
            record["node"] = self.node
        if self.cbr_fraction is not None:
            record["cbr_fraction"] = self.cbr_fraction
        if self.session_id is not None:
            record["session_id"] = self.session_id
        if self.source is not None:
            record["source"] = self.source
        if self.destination is not None:
            record["destination"] = self.destination
        return record

    @classmethod
    def from_dict(cls, record: dict[str, Any]) -> "ScenarioEvent":
        """Inverse of :meth:`as_dict`."""
        return cls(
            at=float(record["at"]),
            kind=record["kind"],
            sigma=float(record.get("sigma", 0.0)),
            node=record.get("node"),
            cbr_fraction=record.get("cbr_fraction"),
            session_id=record.get("session_id"),
            source=record.get("source"),
            destination=record.get("destination"),
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """A named event schedule over one session.

    Attributes:
        name: scenario label (appears in results and traces).
        duration: total emulated seconds.
        epoch_seconds: spacing of the control plane's observation points.
        events: the schedule, sorted by time, every event within
            ``[0, duration)``.
    """

    name: str
    duration: float
    epoch_seconds: float
    events: Tuple[ScenarioEvent, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if self.duration <= 0:
            raise ValueError(f"duration must be > 0, got {self.duration}")
        if not 0 < self.epoch_seconds <= self.duration:
            raise ValueError(
                f"epoch_seconds must be in (0, duration], got {self.epoch_seconds}"
            )
        times = [event.at for event in self.events]
        if times != sorted(times):
            raise ValueError("events must be sorted by time")
        if times and times[-1] >= self.duration:
            raise ValueError(
                f"event at {times[-1]} s falls outside the {self.duration} s scenario"
            )

    @property
    def epoch_count(self) -> int:
        """Number of observation epochs covering the duration."""
        return max(1, int(-(-self.duration // self.epoch_seconds)))

    def events_between(self, start: float, end: float) -> Tuple[ScenarioEvent, ...]:
        """Events with ``start < at <= end`` (one epoch's arrivals)."""
        return tuple(e for e in self.events if start < e.at <= end)

    def as_dict(self) -> dict[str, object]:
        """JSON-compatible representation."""
        return {
            "name": self.name,
            "duration": self.duration,
            "epoch_seconds": self.epoch_seconds,
            "events": [event.as_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, record: dict[str, Any]) -> "ScenarioSpec":
        """Inverse of :meth:`as_dict`."""
        return cls(
            name=record["name"],
            duration=float(record["duration"]),
            epoch_seconds=float(record["epoch_seconds"]),
            events=tuple(
                ScenarioEvent.from_dict(e) for e in record.get("events", ())
            ),
        )

    def to_json(self, path: str | Path) -> None:
        """Write the spec as a JSON file."""
        Path(path).write_text(json.dumps(self.as_dict(), indent=2) + "\n")

    @classmethod
    def from_json(cls, path: str | Path) -> "ScenarioSpec":
        """Load a spec previously written by :meth:`to_json`."""
        return cls.from_dict(json.loads(Path(path).read_text()))


def builtin_scenario(
    name: str,
    *,
    duration: float = 120.0,
    epoch_seconds: float = 10.0,
) -> ScenarioSpec:
    """A named topology-independent scenario.

    * ``"calm"`` — no events (re-planning can only waste overhead);
    * ``"drift"`` — a strong quality shift at one third of the session
      and a milder aftershock at two thirds (the Sec. 4 motivating case).
    """
    if name == "calm":
        events: Tuple[ScenarioEvent, ...] = ()
    elif name == "drift":
        events = (
            ScenarioEvent(at=duration / 3, kind="drift", sigma=0.6),
            ScenarioEvent(at=2 * duration / 3, kind="drift", sigma=0.3),
        )
    else:
        raise ValueError(f"unknown builtin scenario {name!r}")
    return ScenarioSpec(
        name=name,
        duration=duration,
        epoch_seconds=epoch_seconds,
        events=events,
    )


def load_scenario(
    spec: str,
    *,
    duration: float = 120.0,
    epoch_seconds: float = 10.0,
) -> ScenarioSpec:
    """Resolve a CLI scenario argument: builtin name or JSON file path."""
    if spec in ("calm", "drift"):
        return builtin_scenario(
            spec, duration=duration, epoch_seconds=epoch_seconds
        )
    path = Path(spec)
    if path.exists():
        return ScenarioSpec.from_json(path)
    raise ValueError(
        f"unknown scenario {spec!r}: not a builtin name and no such file"
    )


class ScenarioTimeline:
    """Replay a spec's events onto a concrete topology.

    Drift draws come from the dedicated generator passed at
    construction, consumed strictly in event order, so the produced
    topology sequence is a pure function of (base network, spec, seed).
    Failure removes every link touching the node while keeping its
    position (interference geometry is physical and survives a dead
    radio); recovery restores the saved qualities.  Drift while a node
    is down only moves the live links — the saved ones return exactly as
    stored, a deliberate simplification.
    """

    def __init__(
        self,
        network: WirelessNetwork,
        spec: ScenarioSpec,
        *,
        rng: RngLike = None,
    ) -> None:
        self._network = network
        self._spec = spec
        self._rng = as_rng(rng)
        self._index = 0
        self._saved_links: Dict[int, Dict[Link, float]] = {}
        self._cbr_fraction: float | None = None

    @property
    def network(self) -> WirelessNetwork:
        """The topology as of the last :meth:`advance_to`."""
        return self._network

    @property
    def spec(self) -> ScenarioSpec:
        """The schedule being replayed."""
        return self._spec

    @property
    def cbr_fraction(self) -> float | None:
        """Offered-load override from the latest ``load`` event (None
        until one fires)."""
        return self._cbr_fraction

    @property
    def applied_events(self) -> int:
        """How many events have fired so far."""
        return self._index

    @property
    def failed_nodes(self) -> Tuple[int, ...]:
        """Nodes currently down."""
        return tuple(sorted(self._saved_links))

    def advance_to(self, time: float) -> bool:
        """Apply every not-yet-fired event with ``at <= time``.

        Returns True when the topology changed (the engine must be told
        via :meth:`~repro.emulator.engine.EmulationEngine.set_network`).
        """
        changed = False
        events = self._spec.events
        while self._index < len(events) and events[self._index].at <= time:
            changed |= self._apply(events[self._index])
            self._index += 1
        return changed

    def _apply(self, event: ScenarioEvent) -> bool:
        if event.kind == "drift":
            self._network = perturb_link_qualities(
                self._network, sigma=event.sigma, rng=self._rng
            )
            return True
        if event.kind == "fail":
            return self._fail(event.node)
        if event.kind == "recover":
            return self._recover(event.node)
        if event.kind == "load":
            # Purely an application-layer change.
            self._cbr_fraction = event.cbr_fraction
        # session_arrive/session_depart: consumed by the multi-session
        # runner, not the topology replay.
        return False

    def _fail(self, node: int) -> bool:
        if node in self._saved_links:
            return False  # already down
        links = {(i, j): p for i, j, p in self._network.links()}
        removed = {
            link: p for link, p in links.items() if node in link
        }
        if not removed:
            self._saved_links[node] = {}
            return False  # isolated node: nothing to remove
        for link in removed:
            del links[link]
        self._saved_links[node] = removed
        self._network = self._rebuild(links)
        return True

    def _recover(self, node: int) -> bool:
        saved = self._saved_links.pop(node, None)
        if not saved:
            return False  # was never down (or had no links)
        links = {(i, j): p for i, j, p in self._network.links()}
        links.update(saved)
        self._network = self._rebuild(links)
        return True

    def _rebuild(self, links: Dict[Link, float]) -> WirelessNetwork:
        return WirelessNetwork(
            self._network.positions,
            links,
            self._network.communication_range,
            capacity=self._network.capacity,
        )
