"""Scenario-driven live emulation (paper Sec. 4 re-initiation trade-off).

OMNC presumes "link qualities ... are relatively stable over time"; when
they are not, the control plane must re-initiate node selection and rate
allocation, paying overhead.  This package makes that trade-off runnable:

* :mod:`repro.scenario.spec` — declarative scenarios: timed link-quality
  drift, node failure/recovery and offered-load changes over a session's
  lifetime, plus the timeline that replays them onto a topology;
* :mod:`repro.scenario.controller` — re-planning policies (oblivious,
  periodic, drift-triggered) and the per-epoch observation they act on;
* :mod:`repro.scenario.runner` — the adaptive session driver: epoch
  loop, event application, plan hot-swap and overhead charging.
"""

from repro.scenario.controller import (
    DriftTriggeredPolicy,
    EpochObservation,
    ObliviousPolicy,
    PeriodicPolicy,
    ReplanPolicy,
    make_policy,
)
from repro.scenario.runner import (
    AdaptiveSessionResult,
    EpochRecord,
    run_adaptive_session,
)
from repro.scenario.spec import (
    SCENARIO_EVENT_KINDS,
    ScenarioEvent,
    ScenarioSpec,
    ScenarioTimeline,
    builtin_scenario,
    load_scenario,
)

__all__ = [
    "AdaptiveSessionResult",
    "DriftTriggeredPolicy",
    "EpochObservation",
    "EpochRecord",
    "ObliviousPolicy",
    "PeriodicPolicy",
    "ReplanPolicy",
    "SCENARIO_EVENT_KINDS",
    "ScenarioEvent",
    "ScenarioSpec",
    "ScenarioTimeline",
    "builtin_scenario",
    "load_scenario",
    "make_policy",
    "run_adaptive_session",
]
