"""Re-planning policies: when should the control plane re-initiate?

At every epoch boundary the adaptive runner assembles an
:class:`EpochObservation` — what a deployed controller could actually
measure: elapsed time, link-quality drift since the last plan (from
probing), and the epoch's delivery progress — and asks the policy
whether to pay for a re-plan.  Three policies span the paper's Sec. 4
trade-off:

* :class:`ObliviousPolicy` — never re-plan (the static baseline);
* :class:`PeriodicPolicy` — re-plan every k epochs regardless of need
  (pays overhead even on a calm network);
* :class:`DriftTriggeredPolicy` — re-plan when observed drift crosses a
  threshold (overhead only when the plan is actually stale).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EpochObservation:
    """What the controller sees at one epoch boundary.

    Attributes:
        epoch: 0-based epoch index just completed.
        time: emulated seconds elapsed.
        drift: mean absolute link-quality change between the topology
            the current plan was computed on and the topology now
            (:func:`repro.topology.dynamics.quality_drift`, union
            semantics so failures register).
        generations_decoded: cumulative decoded generations (coded
            sessions; 0 for unicast).
        new_generations: generations decoded during this epoch.
        new_deliveries: packets delivered end-to-end during this epoch
            (unicast sessions; 0 for coded).
    """

    epoch: int
    time: float
    drift: float
    generations_decoded: int = 0
    new_generations: int = 0
    new_deliveries: int = 0


class ReplanPolicy:
    """Decides, per epoch, whether the session re-initiates its plan."""

    name = "base"

    def should_replan(self, observation: EpochObservation) -> bool:
        """True when the controller should pay for a re-plan now."""
        raise NotImplementedError


class ObliviousPolicy(ReplanPolicy):
    """Never re-plan: the paper's static pipeline."""

    name = "oblivious"

    def should_replan(self, observation: EpochObservation) -> bool:
        return False


class PeriodicPolicy(ReplanPolicy):
    """Re-plan every ``every`` epochs, drift or no drift."""

    def __init__(self, every: int = 1) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self._every = every
        self.name = f"periodic:{every}"

    @property
    def every(self) -> int:
        """Epochs between re-plans."""
        return self._every

    def should_replan(self, observation: EpochObservation) -> bool:
        return (observation.epoch + 1) % self._every == 0


class DriftTriggeredPolicy(ReplanPolicy):
    """Re-plan when observed drift since the last plan crosses a
    threshold.

    The default threshold (0.02 mean absolute probability change) sits
    well above probing noise on a stable network but well below the
    shift a ``sigma = 0.3`` drift event produces, so calm epochs stay
    free and real drift triggers within one epoch.
    """

    def __init__(self, threshold: float = 0.02) -> None:
        if threshold <= 0:
            raise ValueError(f"threshold must be > 0, got {threshold}")
        self._threshold = threshold
        self.name = f"drift:{threshold:g}"

    @property
    def threshold(self) -> float:
        """Drift level at which a re-plan fires."""
        return self._threshold

    def should_replan(self, observation: EpochObservation) -> bool:
        return observation.drift >= self._threshold


def make_policy(spec: str) -> ReplanPolicy:
    """Parse a CLI policy argument.

    ``"oblivious"``, ``"periodic"`` / ``"periodic:3"``, and
    ``"drift"`` / ``"drift:0.05"`` are accepted.
    """
    head, _, argument = spec.partition(":")
    if head == "oblivious":
        if argument:
            raise ValueError("oblivious takes no argument")
        return ObliviousPolicy()
    if head == "periodic":
        return PeriodicPolicy(int(argument) if argument else 1)
    if head == "drift":
        return DriftTriggeredPolicy(float(argument) if argument else 0.02)
    raise ValueError(f"unknown policy {spec!r}")
