"""The adaptive session driver: epochs, hot-swap, overhead charging.

:func:`run_adaptive_session` executes one session under a
:class:`~repro.scenario.spec.ScenarioSpec`: the engine advances in
epochs; at each boundary the timeline fires due events onto the
topology, the controller observes drift and delivery progress, and the
:class:`~repro.scenario.controller.ReplanPolicy` decides whether to
re-initiate.  A re-plan:

1. runs the protocol's adaptive controller on the drifted topology
   (OMNC warm-starts from its previous dual prices);
2. charges the Sec. 4 control-plane overhead as stalled airtime via
   :meth:`~repro.emulator.engine.EmulationEngine.advance_idle`;
3. hot-swaps the new plan onto the *live* runtimes (``apply_plan``):
   coding buffers, decoder rank, queues and generation state survive;
   only rates/credits/routes change.  New forwarders get fresh
   runtimes, dropped ones leave (their queued packets are lost, as a
   silenced real node's would be);
4. refreshes the engine's precomputed slot-loop structures.

RNG discipline: scheduler/channel/capture/coding streams are never
re-seeded or re-ordered by a re-plan, and scenario drift draws live on
their own stream — fixed seed + fixed scenario = bit-identical traces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Tuple

from repro import obs
from repro.emulator.channel import LossyBroadcastChannel
from repro.emulator.engine import EmulationEngine
from repro.emulator.node import (
    CodedRelayRuntime,
    CodedSourceRuntime,
    FlowRelayRuntime,
    FlowSourceRuntime,
    NodeRuntime,
    UnicastRuntime,
)
from repro.emulator.session import (
    SessionConfig,
    SessionResult,
    _AckTracker,
    _coded_result,
    build_plan_runtimes,
    unicast_demand_hint,
)
from repro.emulator.trace import SessionTracer
from repro.protocols.adaptive import AdaptivePlanner, CodingController
from repro.protocols.base import (
    CodedBroadcastPlan,
    CodingParams,
    CreditBroadcastPlan,
    SessionPlan,
    UnicastPathPlan,
)
from repro.routing.node_selection import NodeSelectionError
from repro.scenario.controller import EpochObservation, ReplanPolicy
from repro.scenario.spec import ScenarioSpec, ScenarioTimeline
from repro.topology.dynamics import quality_drift
from repro.topology.graph import WirelessNetwork
from repro.util.rng import RngFactory


@dataclass(frozen=True)
class EpochRecord:
    """What happened during one epoch.

    Attributes:
        epoch: 0-based index.
        end_time: emulated seconds at the epoch's end.
        drift: observed drift vs. the topology of the current plan.
        new_generations: generations decoded during the epoch.
        new_deliveries: unicast packets delivered during the epoch.
        replanned: whether the policy fired (and the re-plan succeeded).
        stall_seconds: control-plane airtime charged this epoch.
    """

    epoch: int
    end_time: float
    drift: float
    new_generations: int
    new_deliveries: int
    replanned: bool
    stall_seconds: float


@dataclass(frozen=True)
class AdaptiveSessionResult:
    """One adaptive run: the session outcome plus the control-plane story.

    Attributes:
        session: the aggregate result, same shape as a static run.
        policy: the re-planning policy's name.
        scenario: the scenario's name.
        epochs: per-epoch records.
        replans: successful re-plans executed.
        failed_replans: policy firings where planning failed (e.g. the
            destination was unreachable after a node failure).
        replan_seconds: total stalled airtime charged.
        replan_times: emulated time of each successful re-plan.
        planner_iterations: rate-control iterations per produced plan
            (first entry is the cold start; later ones are warm).
        generation_payload_bytes: payload per decoded generation.
        packet_payload_bytes: payload per delivered unicast packet.
    """

    session: SessionResult
    policy: str
    scenario: str
    epochs: Tuple[EpochRecord, ...]
    replans: int
    failed_replans: int
    replan_seconds: float
    replan_times: Tuple[float, ...]
    planner_iterations: Tuple[int, ...]
    generation_payload_bytes: int
    packet_payload_bytes: int

    def throughput_after(self, time: float) -> float:
        """Payload throughput over the window after ``time`` (B/s).

        The fig. 5 metric: how well the session did *after* the first
        scenario event, where an oblivious plan is stale.  Coded
        sessions count decoded-generation ACKs; unicast sessions count
        per-epoch deliveries.
        """
        window = self.session.duration - time
        if window <= 0:
            return 0.0
        if self.session.ack_times:
            decoded = sum(1 for ack in self.session.ack_times if ack > time)
            return decoded * self.generation_payload_bytes / window
        delivered = sum(
            record.new_deliveries
            for record in self.epochs
            if record.end_time > time
        )
        return delivered * self.packet_payload_bytes / window


def run_adaptive_session(
    network: WirelessNetwork,
    planner: AdaptivePlanner,
    policy: ReplanPolicy,
    spec: ScenarioSpec,
    *,
    session_id: int = 1,
    config: SessionConfig | None = None,
    rng: RngFactory | None = None,
    registry: obs.MetricsRegistry | None = None,
    tracer: SessionTracer | None = None,
    coding_controller: CodingController | None = None,
) -> AdaptiveSessionResult:
    """Run one session live under a scenario.

    The scenario's ``duration`` governs session length (the session
    config's ``max_seconds`` is ignored); control-plane stalls consume
    session time, so re-planning is never free.

    A ``coding_controller`` adds a second control loop: each epoch it
    re-evaluates the generation size (and systematic flag) from the
    drifted qualities, and changed decisions are pushed to every live
    runtime via ``apply_plan(coding=...)`` — honored at the next
    generation boundary, so in-flight decodes survive.  The initial
    decision is folded into the session config before runtimes are
    built (the slot and payload accounting see the chosen n).
    """
    config = config or SessionConfig()
    rng = rng or RngFactory(0)
    metrics = obs.resolve(registry)
    scope = metrics.attach("scenario")
    m_replans = scope.counter("replans", "successful mid-run re-plans")
    m_failed = scope.counter("failed_replans", "re-plans that could not plan")
    m_stall = scope.counter("stall_slots", "data-plane slots lost to control")
    m_drift = scope.gauge("drift", "observed drift vs the current plan")

    timeline = ScenarioTimeline(network, spec, rng=rng.derive("scenario"))
    plan = planner.plan(timeline.network)
    planned_network = timeline.network
    unicast = isinstance(plan, UnicastPathPlan)

    coding_current: CodingParams | None = None
    if coding_controller is not None and not unicast:
        coding_current = coding_controller.decide(timeline.network, plan)
        if coding_current is not None:
            config = replace(
                config,
                blocks=coding_current.blocks,
                systematic=coding_current.systematic,
            )

    delivered_count = [0]

    def on_delivered(_sequence: int) -> None:
        delivered_count[0] += 1

    tracker = _AckTracker()
    runtimes, _label = build_plan_runtimes(
        timeline.network,
        plan,
        session_id=session_id,
        config=config,
        rng=rng,
        on_decoded=tracker.on_decoded,
        on_delivered=on_delivered,
    )
    packet_bytes = (
        config.unicast_packet_bytes() if unicast else config.coded_packet_bytes()
    )
    slot = packet_bytes / network.capacity
    channel = LossyBroadcastChannel(timeline.network, rng=rng.derive("channel"))
    engine = EmulationEngine(
        timeline.network,
        runtimes,
        channel,
        slot,
        scheduler_rng=rng.derive("mac"),
        capture_rng=rng.derive("capture"),
        interference=config.interference,
        registry=registry,
        tracer=tracer,
    )
    tracker.engine = engine
    destination = planner.destination
    dest_runtime = engine.runtimes[destination]
    target = config.target_generations

    def stop() -> bool:
        tracker.apply_pending()
        return (
            target > 0
            and getattr(dest_runtime, "generations_decoded", 0) >= target
        )

    total_slots = int(spec.duration / slot)
    epoch_slots = max(1, int(round(spec.epoch_seconds / slot)))
    records: List[EpochRecord] = []
    replan_times: List[float] = []
    replans = 0
    failed_replans = 0
    replan_seconds = 0.0
    epoch = 0
    seen_generations = 0
    seen_deliveries = 0

    while engine.stats.slots < total_slots:
        batch = min(epoch_slots, total_slots - engine.stats.slots)
        engine.run(batch, stop_when=None if unicast else stop)
        generations = getattr(dest_runtime, "generations_decoded", 0)
        new_generations = generations - seen_generations
        new_deliveries = delivered_count[0] - seen_deliveries
        seen_generations = generations
        seen_deliveries = delivered_count[0]
        done = engine.stats.slots >= total_slots or (
            not unicast and target > 0 and generations >= target
        )

        changed = timeline.advance_to(engine.now)
        if changed:
            engine.set_network(timeline.network)
        drift = quality_drift(planned_network, timeline.network, strict=False)
        m_drift.set(drift)
        observation = EpochObservation(
            epoch=epoch,
            time=engine.now,
            drift=drift,
            generations_decoded=generations,
            new_generations=new_generations,
            new_deliveries=new_deliveries,
        )
        replanned = False
        stall_seconds = 0.0
        if not done and policy.should_replan(observation):
            try:
                plan = planner.plan(timeline.network)
                cost_seconds = planner.control_cost_seconds(timeline.network)
            except NodeSelectionError:
                # Unplannable (e.g. destination cut off by a failure):
                # keep running the stale plan and retry next epoch.
                failed_replans += 1
                m_failed.inc()
            else:
                stall_slots = math.ceil(cost_seconds / slot)
                engine.advance_idle(stall_slots)
                stall_seconds = stall_slots * slot
                replan_seconds += stall_seconds
                _hot_swap(engine, plan, timeline, config, rng, on_delivered)
                planned_network = timeline.network
                replanned = True
                replans += 1
                replan_times.append(engine.now)
                m_replans.inc()
                m_stall.inc(stall_slots)
                if tracer is not None:
                    tracer.record(
                        engine.stats.slots, engine.now, "replan", -1,
                        detail=epoch,
                    )
        if coding_controller is not None and not unicast and not done:
            decision = coding_controller.decide(timeline.network, plan)
            # Push when the decision changed, and re-push after a
            # hot-swap: replacement relays were built at the config's
            # generation size and adopt the live one at their next
            # generation boundary via the pending-coding path.
            if decision is not None and (
                replanned or decision != coding_current
            ):
                coding_current = decision
                for runtime in engine.runtimes.values():
                    runtime.apply_plan(coding=decision)
                if tracer is not None:
                    tracer.record(
                        engine.stats.slots, engine.now, "coding", -1,
                        detail=decision.blocks,
                    )
        records.append(
            EpochRecord(
                epoch=epoch,
                end_time=engine.now,
                drift=drift,
                new_generations=new_generations,
                new_deliveries=new_deliveries,
                replanned=replanned,
                stall_seconds=stall_seconds,
            )
        )
        epoch += 1
        if done:
            break

    stats = engine.stats
    # Every node that ever held a runtime (re-plans may have dropped
    # some); the stats dicts cover them all, the live runtime set
    # may not.
    participants = {
        node: engine.runtimes.get(node) for node in sorted(stats.transmissions)
    }
    if unicast:
        elapsed = stats.elapsed if stats.elapsed > 0 else 1.0
        session = SessionResult(
            protocol=planner.label,
            source=planner.source,
            destination=destination,
            throughput_bps=delivered_count[0] * config.block_size / elapsed,
            duration=stats.elapsed,
            generations_decoded=0,
            packets_delivered=delivered_count[0],
            ack_times=(),
            average_queues={
                n: stats.average_queue(n) for n in participants
            },
            transmissions=dict(stats.transmissions),
            participants=tuple(sorted(participants)),
            delivered_links=tuple(sorted(stats.delivered_links)),
        )
    else:
        session = _coded_result(
            planner.label,
            planner.source,
            destination,
            plan,
            config,
            stats,
            dest_runtime,
            tracker,
            participants,
        )
    return AdaptiveSessionResult(
        session=session,
        policy=policy.name,
        scenario=spec.name,
        epochs=tuple(records),
        replans=replans,
        failed_replans=failed_replans,
        replan_seconds=replan_seconds,
        replan_times=tuple(replan_times),
        planner_iterations=planner.iterations_history,
        generation_payload_bytes=config.generation_bytes(),
        packet_payload_bytes=config.block_size,
    )


def _hot_swap(
    engine: EmulationEngine,
    plan: SessionPlan,
    timeline: ScenarioTimeline,
    config: SessionConfig,
    rng: RngFactory,
    on_delivered: Callable[[int], None],
) -> None:
    """Apply a new plan to the live runtimes and refresh the engine.

    Surviving nodes keep their runtime objects (buffers, decoder rank,
    queues, credits); only the plan-derived parameters change.
    """
    network = timeline.network
    cbr_fraction = timeline.cbr_fraction
    if cbr_fraction is None:
        cbr_fraction = config.cbr_fraction
    cbr = cbr_fraction * network.capacity
    runtimes = engine.runtimes
    if isinstance(plan, CodedBroadcastPlan):
        updated = _swap_rate_plan(plan, runtimes, network, config, rng, cbr)
    elif isinstance(plan, CreditBroadcastPlan):
        updated = _swap_credit_plan(plan, runtimes, network, config, rng, cbr)
    elif isinstance(plan, UnicastPathPlan):
        updated = _swap_unicast_plan(
            plan, runtimes, network, config, cbr, on_delivered
        )
    else:
        raise TypeError(f"unsupported plan type {type(plan).__name__}")
    engine.rebuild_runtime_structures(updated)


def _make_coded_relay(
    node: int,
    session_id: int,
    config: SessionConfig,
    rng: RngFactory,
    **kwargs: Any,
) -> NodeRuntime:
    packet_bytes = config.coded_packet_bytes()
    if config.coding_fidelity == "exact":
        return CodedRelayRuntime(
            node,
            session_id,
            config.blocks,
            packet_bytes,
            rng.derive("coding", node),
            queue_limit=config.queue_limit,
            **kwargs,
        )
    return FlowRelayRuntime(
        node,
        session_id,
        config.blocks,
        packet_bytes,
        queue_limit=config.queue_limit,
        **kwargs,
    )


def _swap_rate_plan(
    plan: CodedBroadcastPlan,
    runtimes: Dict[int, NodeRuntime],
    network: WirelessNetwork,
    config: SessionConfig,
    rng: RngFactory,
    cbr: float,
) -> Dict[int, NodeRuntime]:
    """OMNC: retune source/relay rates; add/drop forwarders."""
    source = plan.forwarders.source
    destination = plan.forwarders.destination
    session_id = _session_id_of(runtimes[source])
    desired: Dict[int, float] = {}
    for node in plan.forwarders.nodes:
        if node == destination:
            continue
        rate = plan.rates.get(node, 0.0)
        if node == source:
            desired[node] = min(rate, cbr)
        elif rate > 0.0:
            desired[node] = rate
    updated: Dict[int, NodeRuntime] = {destination: runtimes[destination]}
    for node, rate in desired.items():
        existing = runtimes.get(node)
        if existing is not None:
            if node == source:
                existing.apply_plan(rate_bps=rate)
            else:
                existing.apply_plan(mode="rate", rate_bps=rate)
            updated[node] = existing
        else:
            updated[node] = _make_coded_relay(
                node, session_id, config, rng, mode="rate", rate_bps=rate
            )
    return updated


def _swap_credit_plan(
    plan: CreditBroadcastPlan,
    runtimes: Dict[int, NodeRuntime],
    network: WirelessNetwork,
    config: SessionConfig,
    rng: RngFactory,
    cbr: float,
) -> Dict[int, NodeRuntime]:
    """MORE/oldMORE: retune credits and upstream sets."""
    forwarders = plan.forwarders
    source = forwarders.source
    destination = forwarders.destination
    distance = forwarders.etx_distance
    session_id = _session_id_of(runtimes[source])
    updated: Dict[int, NodeRuntime] = {destination: runtimes[destination]}
    source_runtime = runtimes[source]
    source_runtime.apply_plan(rate_bps=cbr)
    updated[source] = source_runtime
    for node in forwarders.nodes:
        if node in (source, destination):
            continue
        credit = plan.tx_credits.get(node, 0.0)
        if credit <= 0.0:
            continue  # pruned forwarder: dropped from the session
        upstream = tuple(
            i for i in forwarders.nodes if distance[i] > distance[node]
        )
        existing = runtimes.get(node)
        if existing is not None and not isinstance(
            existing, (FlowSourceRuntime, CodedSourceRuntime)
        ):
            existing.apply_plan(
                mode="credit", tx_credit=credit, upstream=upstream
            )
            updated[node] = existing
        else:
            updated[node] = _make_coded_relay(
                node,
                session_id,
                config,
                rng,
                mode="credit",
                tx_credit=credit,
                upstream=upstream,
            )
    return updated


def _swap_unicast_plan(
    plan: UnicastPathPlan,
    runtimes: Dict[int, NodeRuntime],
    network: WirelessNetwork,
    config: SessionConfig,
    cbr: float,
    on_delivered: Callable[[int], None],
) -> Dict[int, NodeRuntime]:
    """ETX: re-route the path; surviving nodes keep queued packets."""
    packet_bytes = config.unicast_packet_bytes()
    updated: Dict[int, NodeRuntime] = {}
    for index, node in enumerate(plan.path):
        next_hop = plan.path[index + 1] if index + 1 < len(plan.path) else None
        rate = cbr if node == plan.source else 0.0
        demand = unicast_demand_hint(network, node, next_hop, cbr)
        existing = runtimes.get(node)
        if isinstance(existing, UnicastRuntime):
            existing.apply_plan(
                next_hop=next_hop, rate_bps=rate, demand_hint_bps=demand
            )
            updated[node] = existing
        else:
            updated[node] = UnicastRuntime(
                node,
                next_hop,
                rate_bps=rate,
                packet_bytes=packet_bytes,
                queue_limit=config.queue_limit,
                on_delivered=on_delivered,
                demand_hint_bps=demand,
            )
    return updated


def _session_id_of(runtime: NodeRuntime) -> int:
    """Recover the session id a coded runtime was built with."""
    return getattr(runtime, "_session_id", 1)
