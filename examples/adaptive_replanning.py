"""Adaptive re-planning when link qualities drift (paper Sec. 4).

OMNC assumes stable link qualities and re-initiates node selection and
rate allocation when they change significantly, accepting "a certain
amount of overhead" because long-lived sessions amortize it.  This
example makes that trade-off concrete:

1. plan a session and emulate it on the original network;
2. let link qualities drift (logit-space noise, the PHY's own family);
3. emulate the STALE plan on the drifted network — throughput degrades;
4. re-plan on the drifted network, measure the control-plane cost of
   re-initiation (pseudo-broadcast flood + distributed rate control
   messages), and emulate the fresh plan.

Run::

    python examples/adaptive_replanning.py
"""

from repro.emulator import SessionConfig, run_coded_session
from repro.protocols import plan_etx_route, plan_omnc
from repro.routing import NodeSelectionError
from repro.optimization import replan_cost
from repro.topology import (
    perturb_link_qualities,
    quality_drift,
    random_network,
)
from repro.util import RngFactory


def find_session(network, min_hops=3, max_hops=6):
    import random

    rng = random.Random(11)
    while True:
        source, destination = rng.sample(range(network.node_count), 2)
        try:
            plan = plan_etx_route(network, source, destination)
            if min_hops <= plan.hop_count <= max_hops:
                return source, destination
        except NodeSelectionError:
            continue


def main() -> None:
    rng = RngFactory(77)
    network = random_network(80, rng=rng.derive("topology"))
    source, destination = find_session(network)
    config = SessionConfig(max_seconds=150.0, target_generations=4)

    print(f"session {source} -> {destination} on an 80-node lossy mesh")
    plan = plan_omnc(network, source, destination)
    fresh = run_coded_session(network, plan, config=config, rng=rng.spawn("fresh"))
    print(f"1. original network, fresh plan:  {fresh.throughput_bps:7.0f} B/s")

    drifted = perturb_link_qualities(
        network, sigma=1.8, rng=rng.derive("drift")
    )
    drift = quality_drift(network, drifted)
    print(f"2. link qualities drift (mean |dp| = {drift:.2f})")

    stale = run_coded_session(drifted, plan, config=config, rng=rng.spawn("stale"))
    print(f"3. drifted network, STALE plan:   {stale.throughput_bps:7.0f} B/s")

    cost = replan_cost(drifted, source, destination)
    replanned = plan_omnc(drifted, source, destination)
    adapted = run_coded_session(
        drifted, replanned, config=config, rng=rng.spawn("adapted")
    )
    print(f"4. drifted network, re-planned:   {adapted.throughput_bps:7.0f} B/s")
    print(
        f"   re-initiation cost: {cost.flood_transmissions:.0f} flood tx + "
        f"{cost.rate_control_messages} control messages "
        f"({cost.rate_control_iterations} iterations) "
        f"= {cost.channel_seconds:.2f} channel-seconds"
    )
    overhead = cost.channel_seconds / 800.0
    print(
        f"   amortized over the paper's 800 s sessions: {overhead:.1%} of "
        "airtime — the 'acceptable overhead for long lived unicast "
        "sessions' of Sec. 4"
    )


if __name__ == "__main__":
    main()
