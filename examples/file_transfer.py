"""Reliable file transfer over a lossy two-relay diamond with real coding.

Demonstrates the paper's core reliability claim (Sec. 3.1): random
linear network coding delivers data through lossy links *without any
retransmissions* — the destination simply accumulates innovative packets
until each generation reaches full rank, decoding progressively with
Gauss-Jordan elimination.

Every byte here is real: the payload is split into generations, coded
packets carry actual GF(2^8) payloads, relays re-encode with fresh
random coefficients, the channel drops packets, and the recovered bytes
are compared with the original.

Run::

    python examples/file_transfer.py
"""

import numpy as np

from repro.coding import (
    GenerationParams,
    ProgressiveDecoder,
    RelayReEncoder,
    SourceEncoder,
    split_into_generations,
)
from repro.emulator import LossyBroadcastChannel
from repro.topology import diamond_topology
from repro.util import RngFactory


def main() -> None:
    rng = RngFactory(42)
    params = GenerationParams(blocks=16, block_size=512)
    network = diamond_topology(p_su=0.6, p_sv=0.5, p_ut=0.7, p_vt=0.6)
    channel = LossyBroadcastChannel(network, rng=rng.derive("channel"))

    payload = bytes(
        np.random.default_rng(0).integers(0, 256, 3 * params.generation_bytes // 2,
                                          dtype=np.uint8)
    )
    generations = split_into_generations(payload, params)
    print(f"transferring {len(payload)} bytes as {len(generations)} "
          f"generations of {params.blocks} x {params.block_size} B")
    print(f"links: S->u 0.60, S->v 0.50, u->T 0.70, v->T 0.60 "
          f"(every packet faces loss)")

    recovered = bytearray()
    total_source_tx = 0
    total_relay_tx = 0
    for generation in generations:
        gen_id = generation.generation_id
        source = SourceEncoder(1, generation, rng.derive("source", gen_id))
        relays = {
            1: RelayReEncoder(1, params.blocks, rng.derive("relay-u", gen_id),
                              generation_id=gen_id),
            2: RelayReEncoder(1, params.blocks, rng.derive("relay-v", gen_id),
                              generation_id=gen_id),
        }
        decoder = ProgressiveDecoder(params.blocks, params.block_size)
        while not decoder.is_complete:
            # The source broadcasts once; both relays may opportunistically
            # overhear the same transmission.
            packet = source.next_packet()
            total_source_tx += 1
            for relay_id in channel.broadcast(0, [1, 2]):
                relays[relay_id].accept(packet)
            # Relays with innovative content re-encode toward T.
            for relay_id, relay in relays.items():
                if relay.buffered == 0:
                    continue
                total_relay_tx += 1
                coded = relay.next_packet()
                if channel.broadcast(relay_id, [3]):
                    decoder.add_packet(coded)
        block = decoder.decode_generation(gen_id)
        recovered.extend(block.to_bytes())
        print(f"  generation {gen_id}: decoded after "
              f"{decoder.received} receptions "
              f"({decoder.redundant} non-innovative discarded on the fly)")

    result = bytes(recovered[: len(payload)])
    assert result == payload, "transfer corrupted!"
    print(f"\nSUCCESS: {len(payload)} bytes recovered bit-exact")
    print(f"airtime: {total_source_tx} source + {total_relay_tx} relay "
          f"transmissions, zero retransmissions or per-packet ACKs")


if __name__ == "__main__":
    main()
