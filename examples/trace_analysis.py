"""Inspect a session at packet granularity with the event tracer.

Attaches a :class:`repro.emulator.SessionTracer` to an OMNC session on
the two-relay diamond and mines the event log: who got airtime, how the
lossy channel treated each link, and when generations completed.  The
log round-trips through JSONL for offline analysis.

Run::

    python examples/trace_analysis.py
"""

import tempfile
from collections import Counter
from pathlib import Path

from repro.coding.packet import HEADER_BYTES
from repro.emulator import (
    EmulationEngine,
    LossyBroadcastChannel,
    SessionTracer,
)
from repro.emulator.node import CodedDestinationRuntime
from repro.emulator.session import SessionConfig, _AckTracker, _build_rate_runtimes
from repro.protocols import plan_omnc
from repro.topology import diamond_topology
from repro.util import RngFactory


def main() -> None:
    rng = RngFactory(7)
    network = diamond_topology(capacity=2e4)
    plan = plan_omnc(network, 0, 3)
    config = SessionConfig(
        blocks=16, block_size=512, max_seconds=200.0, target_generations=3
    )

    runtimes, _ = _build_rate_runtimes(network, plan, 1, config, rng)
    tracker = _AckTracker()
    from repro.emulator.node import FlowDestinationRuntime

    destination = FlowDestinationRuntime(3, 1, config.blocks, tracker.on_decoded)
    runtimes[3] = destination

    tracer = SessionTracer()
    slot = config.coded_packet_bytes() / network.capacity
    engine = EmulationEngine(
        network,
        runtimes,
        LossyBroadcastChannel(network, rng=rng.derive("channel")),
        slot,
        scheduler_rng=rng.derive("mac"),
        capture_rng=rng.derive("capture"),
        tracer=tracer,
    )
    tracker.engine = engine

    def stop():
        tracker.apply_pending()
        return destination.generations_decoded >= config.target_generations

    engine.run(int(config.max_seconds / slot), stop_when=stop)

    print(f"session finished in {engine.now:.1f}s emulated, "
          f"{destination.generations_decoded} generations decoded")
    summary = tracer.summary()
    print(f"\nevent census: {summary}")
    print(f"overall delivery ratio: {tracer.delivery_ratio():.2f} "
          "(deliveries per transmission; links are lossy)")

    print("\nairtime by node (transmissions):")
    names = {0: "S", 1: "u", 2: "v", 3: "T"}
    for node, count in sorted(tracer.per_node_transmissions().items()):
        rate = plan.rates.get(node, 0.0)
        print(f"  {names[node]}: {count:4d} tx (allocated {rate:.0f} B/s)")

    print("\nper-link delivery counts:")
    link_counts = Counter(
        (event.node, event.peer) for event in tracer.events(kind="delivery")
    )
    for (i, j), count in sorted(link_counts.items()):
        p = network.probability(i, j)
        print(f"  {names[i]} -> {names[j]}: {count:4d} deliveries (p = {p:.2f})")

    acks = [event for event in tracer.events(kind="ack")]
    print("\ngeneration completions:")
    for event in acks:
        print(f"  t = {event.time:6.1f}s -> generation {event.detail} begins")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "session.jsonl"
        written = tracer.to_jsonl(path)
        reloaded = SessionTracer.read_jsonl(path)
        print(f"\nexported {written} events to JSONL and read back "
              f"{len(reloaded)} — byte-stable for offline tooling")


if __name__ == "__main__":
    main()
