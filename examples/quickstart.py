"""Quickstart: plan and emulate one OMNC session on a random lossy mesh.

This walks the full OMNC pipeline from the paper:

1. deploy a random lossy wireless network (empirical PHY model);
2. select forwarders for a unicast session (ETX distance flooding);
3. run the distributed rate control algorithm (paper Table 1) to
   allocate every node's broadcast/encoding rate;
4. emulate the session packet-by-packet on the ideal MAC and lossy
   channel, with progressive Gauss-Jordan decoding at the destination;
5. compare against classic ETX best-path routing on the same session.

Run::

    python examples/quickstart.py
"""

from repro.emulator import SessionConfig, run_coded_session, run_unicast_session
from repro.emulator.stats import throughput_gain
from repro.protocols import plan_etx_route, plan_omnc_detailed
from repro.routing import NodeSelectionError
from repro.topology import random_network
from repro.util import RngFactory


def pick_session(network, min_hops=3, max_hops=5):
    """First random endpoint pair with a usable multi-hop route."""
    import random

    rng = random.Random(7)
    while True:
        source, destination = rng.sample(range(network.node_count), 2)
        try:
            etx_plan = plan_etx_route(network, source, destination)
            if not min_hops <= etx_plan.hop_count <= max_hops:
                continue
            return source, destination, etx_plan
        except NodeSelectionError:
            continue


def main() -> None:
    rng = RngFactory(2008)
    print("=== 1. Deploy a lossy wireless mesh ===")
    network = random_network(80, rng=rng.derive("topology"))
    print(f"{network}")
    print(f"average link quality: {network.average_link_probability():.2f}")

    print("\n=== 2 + 3. Plan an OMNC session ===")
    source, destination, etx_plan = pick_session(network)
    report = plan_omnc_detailed(network, source, destination)
    plan = report.plan
    print(f"session {source} -> {destination} ({etx_plan.hop_count} ETX hops)")
    print(f"selected forwarders: {len(plan.forwarders.nodes)} nodes, "
          f"{len(plan.forwarders.dag_links)} DAG links")
    print(f"rate control: {plan.iterations} iterations, "
          f"converged={report.converged}")
    top = sorted(plan.rates.items(), key=lambda kv: -kv[1])[:5]
    print("highest allocated broadcast rates (B/s):",
          {n: round(r) for n, r in top})
    print(f"predicted throughput: {plan.predicted_throughput:.0f} B/s")

    print("\n=== 4. Emulate the session ===")
    config = SessionConfig(max_seconds=150.0, target_generations=4)
    omnc = run_coded_session(network, plan, config=config, rng=rng.spawn("omnc"))
    print(f"OMNC: {omnc.throughput_bps:.0f} B/s "
          f"({omnc.generations_decoded} generations of "
          f"{config.generation_bytes()} B decoded)")
    print(f"mean per-node queue: {omnc.mean_queue():.2f} packets")

    print("\n=== 5. Compare against ETX best-path routing ===")
    etx = run_unicast_session(network, etx_plan, config=config, rng=rng.spawn("etx"))
    print(f"ETX:  {etx.throughput_bps:.0f} B/s over path {etx_plan.path}")
    print(f"throughput gain: {throughput_gain(omnc, etx):.2f}x")


if __name__ == "__main__":
    main()
