"""The multiple-unicast extension sketched in the paper's conclusion.

"As the rate control framework can be flexibly extended to other
scenarios such as the multiple-unicast case..."  This example runs two
coexisting sessions over one network: the sessions share the broadcast
MAC through a common congestion price and each receives a
proportionally-fair rate — unlike the max-total LP, which may starve the
weaker session entirely.

Run::

    python examples/multi_unicast.py
"""

from repro.optimization import session_graph_from_network, solve_sunicast
from repro.optimization.multi_session import (
    MultiSessionRateControl,
    solve_multi_sunicast,
)
from repro.topology import fig1_sample_topology


def main() -> None:
    network = fig1_sample_topology()
    sessions = [
        ("A", session_graph_from_network(network, 0, 5)),
        ("B", session_graph_from_network(network, 1, 4)),
    ]
    graphs = [graph for _, graph in sessions]
    capacity = graphs[0].capacity

    print("two unicast sessions sharing one 6-node lossy network:")
    for name, graph in sessions:
        solo = solve_sunicast(graph)
        print(f"  session {name}: {graph.source} -> {graph.destination}, "
              f"alone it could do {solo.throughput * capacity:.0f} B/s")

    total, per = solve_multi_sunicast(graphs)
    print(f"\nmax-total LP: {total * capacity:.0f} B/s combined")
    for (name, _), throughput in zip(sessions, per):
        print(f"  session {name}: {throughput * capacity:.0f} B/s")
    print("  (the LP happily starves a session to maximize the sum)")

    result = MultiSessionRateControl(graphs).run()
    print(f"\ndistributed proportional-fair allocation "
          f"({result.iterations} iterations):")
    for (name, _), throughput in zip(sessions, result.throughputs):
        print(f"  session {name}: {throughput * capacity:.0f} B/s")
    print(f"  combined: {result.total_throughput * capacity:.0f} B/s")
    print("  both sessions stay alive — the ln-utility at work")


if __name__ == "__main__":
    main()
