"""Four-protocol shoot-out on one mesh — a miniature of the paper's Fig. 2-4.

Runs OMNC, MORE, oldMORE and ETX routing on the same random sessions of
one lossy mesh and prints the three headline comparisons of the paper's
evaluation:

* throughput gain over ETX routing (Fig. 2);
* per-node time-averaged queue sizes (Fig. 3) — OMNC's rate control
  keeps queues small while the credit-driven protocols congest;
* node/path utility ratios (Fig. 4) — oldMORE's min-cost planning prunes
  the low-quality side paths that OMNC and MORE exploit.

Run::

    python examples/mesh_comparison.py
"""

from repro.experiments import CampaignConfig, run_campaign


def main() -> None:
    config = CampaignConfig(
        node_count=100,
        sessions=6,
        session_seconds=150.0,
        target_generations=5,
        seed=2008,
    )
    print(f"campaign: {config.node_count} nodes, {config.sessions} sessions, "
          f"{config.min_hops}-{config.max_hops} hop sessions")
    campaign = run_campaign(config)
    network = campaign.network
    print(f"average link quality: {network.average_link_probability():.2f}\n")

    header = f"{'session':>12s} {'etx B/s':>9s} {'omnc':>6s} {'more':>6s} {'old':>6s}"
    print(header)
    for record in campaign.records:
        etx = record.results["etx"].throughput_bps
        print(
            f"{record.source:5d}->{record.destination:<5d} {etx:9.0f} "
            f"{record.gain('omnc'):6.2f} {record.gain('more'):6.2f} "
            f"{record.gain('oldmore'):6.2f}"
        )
    print()
    print("mean throughput gain over ETX (paper: omnc 2.45, more 1.67, old 1.12):")
    for protocol in ("omnc", "more", "oldmore"):
        print(f"  {protocol:8s} {campaign.mean_gain(protocol):5.2f}")

    print("\nmean per-node queue size (paper: omnc 0.63, more 22):")
    for protocol in ("omnc", "more", "oldmore"):
        queues = campaign.per_node_queues(protocol)
        mean = sum(queues) / len(queues) if queues else 0.0
        print(f"  {protocol:8s} {mean:6.2f}")

    print("\nmean utility ratios (node / path):")
    for protocol in ("omnc", "more", "oldmore"):
        nodes, paths = campaign.utilities(protocol)
        print(
            f"  {protocol:8s} {sum(nodes) / len(nodes):5.2f} / "
            f"{sum(paths) / len(paths):5.3f}"
        )
    print(f"\nwall time: {campaign.wall_seconds:.1f}s")


if __name__ == "__main__":
    main()
