"""Watch the distributed rate control algorithm converge (paper Fig. 1).

Runs Table 1 on the paper's sample topology three ways:

* the centralized sUnicast LP (the reference optimum);
* the fast driver of the distributed algorithm;
* the *message-passing* execution — genuinely local node programs that
  only exchange one-hop messages — with a full message census, backing
  the paper's claim that the algorithm is a "lightweight application
  layer protocol".

Run::

    python examples/distributed_optimization.py
"""

from repro.optimization import (
    RateControlAlgorithm,
    session_graph_from_network,
    solve_sunicast,
)
from repro.optimization.messages import MessagePassingRateControl
from repro.topology import fig1_sample_topology


def main() -> None:
    network = fig1_sample_topology(capacity=1e5)
    graph = session_graph_from_network(network, 0, 5)
    print("sample topology: 6 nodes, 9 lossy links, capacity 10^5 B/s")

    lp = solve_sunicast(graph)
    print(f"\ncentralized LP optimum: {lp.throughput * 1e5:.0f} B/s")
    print("optimal broadcast rates (B/s):",
          {n: round(b * 1e5) for n, b in lp.broadcast_rates.items()})

    result = RateControlAlgorithm(graph).run()
    print(f"\ndistributed algorithm: {result.throughput * 1e5:.0f} B/s in "
          f"{result.iterations} iterations (converged={result.converged})")
    print("recovered rates (B/s):",
          {n: round(b * 1e5) for n, b in result.broadcast_rates.items()})

    print("\nconvergence trajectory (recovered rate of each node, B/s):")
    checkpoints = [0, 4, 9, 19, 39, result.iterations - 1]
    nodes = sorted(
        n for n, b in result.broadcast_rates.items() if b > 1e-6
    )
    print("iter  " + "".join(f"b[{n}]".rjust(9) for n in nodes))
    for k in checkpoints:
        if k >= len(result.rate_history):
            continue
        snapshot = result.rate_history[k]
        row = f"{k + 1:4d}  " + "".join(
            f"{snapshot[n] * 1e5:9.0f}" for n in nodes
        )
        print(row)

    mp = MessagePassingRateControl(graph)
    mp_result = mp.run()
    stats = mp.stats
    print(f"\nmessage-passing execution: {mp_result.throughput * 1e5:.0f} B/s "
          f"in {mp_result.iterations} iterations")
    print(f"messages exchanged: {stats.total} total")
    print(f"  distance advertisements (SUB1 shortest path): "
          f"{stats.distance_advertisements}")
    print(f"  flow setup tokens:                            "
          f"{stats.flow_setup_tokens}")
    print(f"  one-hop (b, beta) broadcasts (eq. 15/17):     "
          f"{stats.rate_price_broadcasts}")
    per_iter = stats.rate_price_broadcasts / max(mp_result.iterations, 1)
    print(f"  = {per_iter:.0f} local broadcasts per node-iteration — the "
          "only recurring cost the paper highlights")


if __name__ == "__main__":
    main()
