"""Figure 2 (left) — throughput gains over ETX routing, lossy network.

Paper averages: OMNC 2.45, MORE 1.67, oldMORE 1.12.  The benchmark
regenerates the gain distribution on the reduced-scale campaign and
records the measured means in ``extra_info``; EXPERIMENTS.md discusses
the reproduction status of the magnitudes (the protocol *orderings* and
the Fig. 3/4 mechanisms reproduce; the absolute gains over an
ideal-MAC ETX baseline do not — see the analysis there).
"""

from repro.emulator.stats import summarize
from repro.experiments.common import run_campaign

from conftest import bench_config

PAPER_MEANS = {"omnc": 2.45, "more": 1.67, "oldmore": 1.12}


def test_fig2_lossy_campaign(benchmark):
    campaign = benchmark.pedantic(
        run_campaign, args=(bench_config("lossy"),), rounds=1, iterations=1
    )
    for protocol, paper in PAPER_MEANS.items():
        summary = summarize(campaign.gains(protocol))
        benchmark.extra_info[f"{protocol}_mean_gain"] = round(summary.mean, 3)
        benchmark.extra_info[f"{protocol}_median_gain"] = round(summary.median, 3)
        benchmark.extra_info[f"{protocol}_paper_mean"] = paper
        assert summary.count > 0
        assert summary.mean > 0
    # Shape check that does reproduce: OMNC matches or beats the
    # congestion-blind planners on average queue health, and every coded
    # protocol achieves positive throughput on every session.
    assert all(g > 0 for g in campaign.gains("omnc"))
