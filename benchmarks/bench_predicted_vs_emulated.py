"""Sec. 5 claim — emulated OMNC throughput sits below the optimized value.

"We have also observed that the actual emulated throughput of OMNC tends
to be lower than the optimized throughput computed by the sUnicast
framework" — because constraint (4) "only approximates the actual
propagation of innovative flows under lossy environment".  The benchmark
measures the emulated/predicted ratio across sessions; it must be below
one and stable enough to be a usable planning discount.
"""

import numpy as np

from repro.emulator import SessionConfig, run_coded_session
from repro.experiments.common import CampaignConfig, build_network, pick_sessions
from repro.protocols.omnc import plan_omnc_detailed


def test_predicted_vs_emulated(benchmark):
    config = CampaignConfig.from_environment(
        node_count=120, sessions=6, seed=2008
    )
    rng, network = build_network(config)
    sessions = pick_sessions(config, network)
    session_config = SessionConfig(max_seconds=200.0, target_generations=6)

    def run_all():
        ratios = []
        for source, destination, _ in sessions:
            report = plan_omnc_detailed(network, source, destination)
            result = run_coded_session(
                network,
                report.plan,
                config=session_config,
                rng=rng.spawn(f"pve-{source}-{destination}"),
            )
            if report.plan.predicted_throughput > 0:
                ratios.append(
                    result.throughput_bps / report.plan.predicted_throughput
                )
        return ratios

    ratios = benchmark.pedantic(run_all, rounds=1, iterations=1)
    benchmark.extra_info["mean_emulated_over_predicted"] = round(
        float(np.mean(ratios)), 3
    )
    benchmark.extra_info["min"] = round(float(np.min(ratios)), 3)
    benchmark.extra_info["max"] = round(float(np.max(ratios)), 3)
    # The paper's observation: emulated < optimized, consistently.
    assert all(r < 1.0 for r in ratios)
    assert float(np.mean(ratios)) > 0.1  # but not degenerately low
