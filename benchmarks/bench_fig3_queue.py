"""Figure 3 — distribution of per-node time-averaged queue sizes.

Paper: OMNC's overall average queue is 0.63 (most nodes below one
packet); MORE's is 22 — the congestion contrast created by rate control.
The benchmark reuses the shared lossy campaign, derives the queue
distributions, and asserts the reproduced ordering:
OMNC << MORE <= oldMORE.
"""

from repro.emulator.stats import summarize

PAPER_MEANS = {"omnc": 0.63, "more": 22.0}


def test_fig3_queue_distributions(benchmark, lossy_campaign):
    def derive():
        return {
            protocol: summarize(lossy_campaign.per_node_queues(protocol))
            for protocol in ("omnc", "more", "oldmore")
        }

    distributions = benchmark(derive)
    for protocol, summary in distributions.items():
        benchmark.extra_info[f"{protocol}_mean_queue"] = round(summary.mean, 3)
        benchmark.extra_info[f"{protocol}_frac_below_one"] = round(
            summary.fraction_below(1.0), 3
        )
    benchmark.extra_info["omnc_paper_mean"] = PAPER_MEANS["omnc"]
    benchmark.extra_info["more_paper_mean"] = PAPER_MEANS["more"]

    omnc = distributions["omnc"]
    more = distributions["more"]
    oldmore = distributions["oldmore"]
    # The paper's core queue findings:
    # (1) OMNC keeps most per-node queues below one packet;
    assert omnc.fraction_below(1.0) >= 0.7
    # (2) the credit-driven protocols congest far harder than OMNC.
    assert more.mean > 2 * omnc.mean
    assert oldmore.mean > 2 * omnc.mean
