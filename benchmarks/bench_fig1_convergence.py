"""Figure 1 — convergence of the distributed rate control algorithm.

Regenerates the paper's convergence showcase: per-node broadcast rates
on the sample topology (capacity 10^5 B/s) settling within tens of
iterations.  ``extra_info`` records the series endpoints so the figure
can be reconstructed from the benchmark JSON.
"""

from repro.experiments.fig1_convergence import run_fig1


def test_fig1_convergence(benchmark):
    series = benchmark.pedantic(run_fig1, rounds=1, iterations=1)
    total = len(series.iterations)
    benchmark.extra_info["iterations"] = total
    benchmark.extra_info["settled_iteration"] = series.settled_iteration
    benchmark.extra_info["lp_throughput_bps"] = round(series.lp_throughput_bps)
    benchmark.extra_info["recovered_throughput_bps"] = round(
        series.recovered_throughput_bps
    )
    benchmark.extra_info["final_rates_bps"] = {
        str(n): round(values[-1]) for n, values in series.rates_bps.items()
    }
    # Paper: converges "within a few rounds of iterations" on the sample
    # topology; our settle point must stay well inside the iteration cap.
    assert series.settled_iteration <= total <= 400
    # Recovered throughput tracks the LP optimum.
    assert (
        abs(series.recovered_throughput_bps - series.lp_throughput_bps)
        / series.lp_throughput_bps
        < 0.15
    )
