"""Section 5 claim — the distributed algorithm averages ~91 iterations.

Runs the rate control algorithm on every session graph of a Fig. 2-style
campaign and records the iteration distribution plus how closely the
recovered throughput tracks the centralized LP optimum.
"""

from repro.experiments.common import CampaignConfig
from repro.experiments.convergence_stats import run_convergence_stats

PAPER_MEAN_ITERATIONS = 91


def test_convergence_statistics(benchmark):
    config = CampaignConfig.from_environment(
        node_count=120,
        sessions=10,
        session_seconds=60.0,  # unused: no emulation in this benchmark
        seed=2008,
    )
    stats = benchmark.pedantic(
        run_convergence_stats, args=(config,), rounds=1, iterations=1
    )
    benchmark.extra_info["mean_iterations"] = round(stats.iterations.mean, 1)
    benchmark.extra_info["paper_mean_iterations"] = PAPER_MEAN_ITERATIONS
    benchmark.extra_info["mean_lp_ratio"] = round(stats.lp_ratio.mean, 3)
    benchmark.extra_info["converged_fraction"] = round(
        stats.converged_fraction, 2
    )
    # Same order of magnitude as the paper's 91 iterations.
    assert 20 <= stats.iterations.mean <= 300
    # Recovered allocations track the LP optimum closely on average.
    assert abs(stats.lp_ratio.mean - 1.0) < 0.25
    assert stats.converged_fraction >= 0.8
