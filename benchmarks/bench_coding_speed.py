"""Section 4 claim — accelerated coding is 3-5x the baseline codec.

Benchmarks the encode + progressive-decode pipeline at the paper's
generation shape (40 blocks of 1 KB) with the accelerated (numpy
row-vectorized) engine, and at a smaller shape for the pure-Python
lookup-table baseline (full-size baseline runs take minutes); the
speedup comparison runs both at the common smaller shape.  A
parametrized case additionally covers every registered GF(2^8) backend
available on this machine, so artifact runs record how nibble-split and
the compiled kernels compare shape-for-shape.
"""

import pytest

from repro.coding.backends import available_backends, get_backend
from repro.coding.gf256 import GF256
from repro.coding.gf256_baseline import GF256Baseline
from repro.experiments.coding_speed import measure_codec

SMALL = (16, 256)
PAPER_SHAPE = (40, 1024)


def _pipeline(field, blocks, block_size):
    return lambda: measure_codec(field, blocks, block_size)


def test_accelerated_codec_paper_shape(benchmark):
    blocks, block_size = PAPER_SHAPE
    mbps = benchmark.pedantic(
        _pipeline(GF256, blocks, block_size), rounds=3, iterations=1
    )
    benchmark.extra_info["throughput_mbps"] = round(mbps, 2)
    assert mbps > 0.25  # the paper-scale pipeline must be comfortably sub-second


@pytest.mark.parametrize("backend", available_backends())
def test_backend_codec_paper_shape(benchmark, backend):
    blocks, block_size = PAPER_SHAPE
    mbps = benchmark.pedantic(
        _pipeline(get_backend(backend), blocks, block_size),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["gf_backend"] = backend
    benchmark.extra_info["throughput_mbps"] = round(mbps, 2)
    assert mbps > 0


def test_baseline_codec_small_shape(benchmark):
    blocks, block_size = SMALL
    mbps = benchmark.pedantic(
        _pipeline(GF256Baseline, blocks, block_size), rounds=1, iterations=1
    )
    benchmark.extra_info["throughput_mbps"] = round(mbps, 4)
    assert mbps > 0


def test_speedup_exceeds_paper_lower_bound(benchmark):
    blocks, block_size = SMALL

    def both():
        accelerated = measure_codec(GF256, blocks, block_size)
        baseline = measure_codec(GF256Baseline, blocks, block_size)
        return accelerated, baseline

    accelerated, baseline = benchmark.pedantic(both, rounds=1, iterations=1)
    speedup = accelerated / baseline
    benchmark.extra_info["accelerated_mbps"] = round(accelerated, 2)
    benchmark.extra_info["baseline_mbps"] = round(baseline, 4)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    benchmark.extra_info["paper_claim"] = "3-5x"
    # Paper claims 3-5x with SSE2 over lookup tables; numpy rows over
    # pure Python clears the lower bound comfortably.
    assert speedup >= 3.0
