"""Ablation — primal recovery (eqs. 13 and 18).

Without the Sherali-Choi averaging, the per-iteration subproblem
solutions are extreme points (one shortest path; bang-bang rates), so
the "allocation" oscillates instead of converging to the multipath
optimum.  The benchmark measures the gap to the LP optimum with and
without recovery.
"""

from repro.optimization.problem import session_graph_from_network
from repro.optimization.rate_control import RateControlAlgorithm, RateControlConfig
from repro.optimization.sunicast import solve_sunicast
from repro.topology import fig1_sample_topology


def _gap(primal_recovery: bool) -> float:
    graph = session_graph_from_network(fig1_sample_topology(), 0, 5)
    lp = solve_sunicast(graph)
    config = RateControlConfig(
        primal_recovery=primal_recovery,
        max_iterations=200,
        min_iterations=200,
        patience=10_000,  # run the full horizon for a fair comparison
    )
    result = RateControlAlgorithm(graph, config).run()
    return abs(result.throughput - lp.throughput) / lp.throughput


def test_primal_recovery_ablation(benchmark):
    def run_both():
        return _gap(True), _gap(False)

    with_recovery, without_recovery = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    benchmark.extra_info["gap_with_recovery"] = round(with_recovery, 4)
    benchmark.extra_info["gap_without_recovery"] = round(without_recovery, 4)
    # Averaging must land substantially closer to the optimum than the
    # raw oscillating iterates.
    assert with_recovery < 0.15
    assert with_recovery < without_recovery
