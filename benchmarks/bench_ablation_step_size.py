"""Ablation — diminishing vs constant step sizes.

The paper adopts theta(t) = A / (B + C t) because diminishing steps
"guarantee convergence regardless of the initial value".  A constant
step only reaches a neighborhood of the optimum; this benchmark
measures the final oscillation amplitude of the *instantaneous* dual
trajectory under both schedules (the recovered averages hide it).
"""

import numpy as np

from repro.optimization.problem import session_graph_from_network
from repro.optimization.rate_control import RateControlAlgorithm, RateControlConfig
from repro.optimization.subgradient import ConstantStepSize, DiminishingStepSize
from repro.optimization.sunicast import solve_sunicast
from repro.topology import fig1_sample_topology


def _tail_oscillation(step_size) -> float:
    graph = session_graph_from_network(fig1_sample_topology(), 0, 5)
    config = RateControlConfig(
        step_size=step_size,
        max_iterations=150,
        min_iterations=150,
        patience=10_000,
        primal_recovery=False,  # watch the raw iterates
    )
    result = RateControlAlgorithm(graph, config).run()
    tail = result.gamma_history[-30:]
    return float(np.std(tail))


def test_step_size_ablation(benchmark):
    def run_both():
        diminishing = _tail_oscillation(DiminishingStepSize(a=1.0, b=0.5, c=0.1))
        constant = _tail_oscillation(ConstantStepSize(0.3))
        return diminishing, constant

    diminishing, constant = benchmark.pedantic(run_both, rounds=1, iterations=1)
    benchmark.extra_info["tail_std_diminishing"] = round(diminishing, 4)
    benchmark.extra_info["tail_std_constant"] = round(constant, 4)
    # Diminishing steps settle; a large constant step keeps ringing.
    assert diminishing < constant


def test_gap_to_lp_with_default_schedule(benchmark):
    graph = session_graph_from_network(fig1_sample_topology(), 0, 5)
    lp = solve_sunicast(graph)

    def run():
        return RateControlAlgorithm(graph).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    gap = abs(result.throughput - lp.throughput) / lp.throughput
    benchmark.extra_info["relative_gap"] = round(gap, 4)
    benchmark.extra_info["iterations"] = result.iterations
    assert gap < 0.15
