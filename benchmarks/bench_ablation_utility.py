"""Ablation — the ln-utility transformation in SUB1.

The paper replaces the linear throughput objective with U(gamma) =
ln(gamma) so that SUB1's injected rate self-regulates: gamma =
U'^{-1}(p_min) = 1/p_min shrinks as the path price rises (eq. 12).  The
ablation replaces it with *fixed-rate injection* (always push the cap),
which removes the self-regulation: the dual prices must then do all the
damping and the recovered throughput overshoots the feasible optimum.
"""

import pytest

from repro.optimization.problem import session_graph_from_network
from repro.optimization.rate_control import RateControlAlgorithm, RateControlConfig
from repro.optimization.sub1_routing import Sub1Router
from repro.optimization.sunicast import solve_sunicast, verify_feasibility
from repro.topology.random_network import fig1_sample_topology


class _FixedInjectionRouter(Sub1Router):
    """SUB1 without the utility transformation: always inject the cap."""

    def _gamma_from_cost(self, path_cost: float) -> float:
        return self._gamma_cap


def _run(fixed_injection: bool):
    graph = session_graph_from_network(fig1_sample_topology(), 0, 5)
    config = RateControlConfig(
        max_iterations=150, min_iterations=150, patience=10_000
    )
    algorithm = RateControlAlgorithm(graph, config)
    if fixed_injection:
        algorithm._sub1 = _FixedInjectionRouter(
            graph,
            gamma_cap=config.gamma_cap,
            primal_recovery=config.primal_recovery,
            recovery_tail=config.recovery_tail,
        )
    result = algorithm.run()
    lp = solve_sunicast(graph)
    violations = verify_feasibility(graph, result.as_solution(), tolerance=1e-3)
    return result.throughput / lp.throughput, violations


def test_utility_transform_ablation(benchmark):
    def run_both():
        return _run(False), _run(True)

    (ln_ratio, ln_viol), (fixed_ratio, fixed_viol) = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    benchmark.extra_info["ln_utility_gamma_over_lp"] = round(ln_ratio, 3)
    benchmark.extra_info["fixed_injection_gamma_over_lp"] = round(fixed_ratio, 3)
    benchmark.extra_info["ln_loss_violation"] = round(
        ln_viol["loss_coupling"], 4
    )
    benchmark.extra_info["fixed_loss_violation"] = round(
        fixed_viol["loss_coupling"], 4
    )
    # ln-utility tracks the optimum...
    assert ln_ratio == pytest.approx(1.0, abs=0.15)
    # ...while fixed injection overshoots it (its recovered flows are
    # infeasible: they claim more than the network can carry).
    assert fixed_ratio > ln_ratio
    assert fixed_viol["loss_coupling"] >= ln_viol["loss_coupling"]
