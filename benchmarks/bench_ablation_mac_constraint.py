"""Ablation — the broadcast MAC constraint (4).

Plan one session twice with the centralized optimizer: once with the
paper's MAC constraint, once without (congestion-blind, oldMORE-style).
Emulating both shows the mechanism behind Fig. 3: the congestion-blind
allocation demands more airtime than exists and queues blow up, while
the constrained allocation keeps queues near zero.
"""

from repro.emulator import SessionConfig, run_coded_session
from repro.optimization.rate_control import feasible_scaling
from repro.optimization.problem import session_graph_from_selection
from repro.optimization.sunicast import solve_sunicast
from repro.protocols.base import CodedBroadcastPlan
from repro.routing.node_selection import select_forwarders
from repro.topology import random_network
from repro.util import RngFactory

SESSION = (94, 45)


def _plan(network, constrained: bool) -> CodedBroadcastPlan:
    source, destination = SESSION
    forwarders = select_forwarders(network, source, destination)
    graph = session_graph_from_selection(network, forwarders)
    solution = solve_sunicast(graph, mac_constraint=constrained)
    rates = dict(solution.broadcast_rates)
    if constrained:
        rates, _ = feasible_scaling(graph, rates)
    rates[destination] = 0.0
    return CodedBroadcastPlan(
        forwarders=forwarders,
        rates={n: b * graph.capacity for n, b in rates.items()},
        predicted_throughput=solution.throughput * graph.capacity,
    )


def test_mac_constraint_ablation(benchmark):
    rng = RngFactory(3)
    network = random_network(120, rng=rng.derive("topo"))
    config = SessionConfig(max_seconds=150.0, target_generations=4)

    def run_both():
        constrained = run_coded_session(
            network, _plan(network, True), config=config, rng=rng.spawn("on")
        )
        unconstrained = run_coded_session(
            network, _plan(network, False), config=config, rng=rng.spawn("off")
        )
        return constrained, unconstrained

    constrained, unconstrained = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    benchmark.extra_info["constrained_queue"] = round(constrained.mean_queue(), 2)
    benchmark.extra_info["unconstrained_queue"] = round(
        unconstrained.mean_queue(), 2
    )
    benchmark.extra_info["constrained_bps"] = round(constrained.throughput_bps)
    benchmark.extra_info["unconstrained_bps"] = round(
        unconstrained.throughput_bps
    )
    # Dropping (4) over-subscribes the channel: queues must grow clearly.
    assert unconstrained.mean_queue() > 2 * max(constrained.mean_queue(), 0.05)
