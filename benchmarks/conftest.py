"""Shared fixtures for the benchmark suite.

The figure benchmarks share one campaign per quality regime so that
``pytest benchmarks/ --benchmark-only`` regenerates every figure of the
paper from a single pass over the emulator.  Scale follows the
environment: reduced by default, ``OMNC_FULL_SCALE=1`` for the paper's
300-node / 300-session setup.
"""

import pytest

from repro.experiments.common import CampaignConfig, run_campaign

BENCH_SESSIONS = 10
BENCH_NODES = 120


def bench_config(quality: str) -> CampaignConfig:
    """The campaign configuration used by the figure benchmarks."""
    return CampaignConfig.from_environment(
        node_count=BENCH_NODES,
        sessions=BENCH_SESSIONS,
        quality=quality,
        session_seconds=200.0,
        target_generations=6,
        seed=2008,
    )


@pytest.fixture(scope="session")
def lossy_campaign():
    """The Fig. 2 (left) / Fig. 3 / Fig. 4 campaign, run once."""
    return run_campaign(bench_config("lossy"))


@pytest.fixture(scope="session")
def high_quality_campaign():
    """The Fig. 2 (right) campaign, run once."""
    return run_campaign(bench_config("high"))
