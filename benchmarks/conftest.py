"""Shared fixtures for the benchmark suite.

The figure benchmarks share one campaign per quality regime so that
``pytest benchmarks/ --benchmark-only`` regenerates every figure of the
paper from a single pass over the emulator.  Scale follows the
environment: reduced by default, ``OMNC_FULL_SCALE=1`` for the paper's
300-node / 300-session setup.

The campaigns run on the :mod:`repro.exec` engine, so the environment
also selects the execution policy (results are bit-identical either
way):

* ``OMNC_BENCH_JOBS=N`` — worker processes per campaign (default 1);
* ``OMNC_BENCH_CACHE_DIR=DIR`` — content-addressed result cache, which
  lets repeated benchmark invocations skip already-measured sessions.
"""

import os

import pytest

from repro.exec import ExecutionPolicy
from repro.experiments.common import CampaignConfig, run_campaign

BENCH_SESSIONS = 10
BENCH_NODES = 120


def bench_config(quality: str) -> CampaignConfig:
    """The campaign configuration used by the figure benchmarks."""
    return CampaignConfig.from_environment(
        node_count=BENCH_NODES,
        sessions=BENCH_SESSIONS,
        quality=quality,
        session_seconds=200.0,
        target_generations=6,
        seed=2008,
    )


def bench_policy() -> ExecutionPolicy:
    """The environment-selected execution policy for bench campaigns."""
    return ExecutionPolicy(
        jobs=int(os.environ.get("OMNC_BENCH_JOBS", "1")),
        cache_dir=os.environ.get("OMNC_BENCH_CACHE_DIR"),
    )


@pytest.fixture(scope="session")
def lossy_campaign():
    """The Fig. 2 (left) / Fig. 3 / Fig. 4 campaign, run once."""
    return run_campaign(bench_config("lossy"), policy=bench_policy())


@pytest.fixture(scope="session")
def high_quality_campaign():
    """The Fig. 2 (right) campaign, run once."""
    return run_campaign(bench_config("high"), policy=bench_policy())
