"""Ablation — progressive Gauss-Jordan vs decode-at-the-end.

The paper credits progressive decoding with "alleviating the delay
effects caused by network coding".  The benchmark compares the
destination-side cost profile: the progressive decoder spreads O(n^2)
work over arrivals and knows *instantly* when rank n is reached, while
the block decoder pays rank checks on every completion attempt and a
full inversion at the end.
"""

import time

import numpy as np

from repro.coding.decoder import BlockDecoder, ProgressiveDecoder
from repro.coding.encoder import SourceEncoder
from repro.coding.generation import GenerationParams, random_generation

BLOCKS = 40
BLOCK_SIZE = 1024


def _packets(count, seed=0):
    rng = np.random.default_rng(seed)
    generation = random_generation(
        0, GenerationParams(BLOCKS, BLOCK_SIZE), rng
    )
    encoder = SourceEncoder(1, generation, rng)
    return [encoder.next_packet() for _ in range(count)]


def test_progressive_decoder_throughput(benchmark):
    packets = _packets(BLOCKS + 2)

    def decode():
        decoder = ProgressiveDecoder(BLOCKS, BLOCK_SIZE)
        for packet in packets:
            decoder.add_packet(packet)
            if decoder.is_complete:
                break
        assert decoder.is_complete
        return decoder.decode()

    benchmark(decode)


def test_block_decoder_throughput(benchmark):
    packets = _packets(BLOCKS + 2, seed=1)

    def decode():
        decoder = BlockDecoder(BLOCKS, BLOCK_SIZE)
        result = None
        for packet in packets:
            decoder.add_packet(packet)
            result = decoder.try_decode()  # poll for completion each arrival
            if result is not None:
                break
        assert result is not None
        return result

    benchmark.pedantic(decode, rounds=2, iterations=1)


def test_progressive_completion_latency(benchmark):
    """Arrival-to-decodable latency after the final innovative packet."""
    packets = _packets(BLOCKS, seed=2)

    def final_step_latency():
        decoder = ProgressiveDecoder(BLOCKS, BLOCK_SIZE)
        for packet in packets[:-1]:
            decoder.add_packet(packet)
        started = time.perf_counter()
        decoder.add_packet(packets[-1])
        payload = decoder.decode()
        elapsed = time.perf_counter() - started
        assert payload.shape == (BLOCKS, BLOCK_SIZE)
        return elapsed

    latency = benchmark.pedantic(final_step_latency, rounds=3, iterations=1)
    benchmark.extra_info["final_packet_to_decoded_seconds"] = round(latency, 5)
