"""Ablation — information-flow vs exact GF(2^8) coding fidelity.

The paper's model assumes streams through distinct relays are
independent w.h.p. (Sec. 3.2); ``flow`` fidelity implements exactly that
accounting, while ``exact`` fidelity simulates real coding vectors with
per-packet rank checks.  Their agreement (or gap) quantifies what the
independence assumption is worth on real forwarder DAGs.
"""

from repro.emulator import SessionConfig, run_coded_session
from repro.protocols import plan_omnc
from repro.topology import random_network
from repro.util import RngFactory


def test_fidelity_ablation(benchmark):
    rng = RngFactory(3)
    network = random_network(120, rng=rng.derive("topo"))
    plan = plan_omnc(network, 94, 45)

    def run_both():
        results = {}
        for fidelity in ("flow", "exact"):
            config = SessionConfig(
                max_seconds=120.0,
                target_generations=4,
                coding_fidelity=fidelity,
            )
            results[fidelity] = run_coded_session(
                network, plan, config=config, rng=rng.spawn(fidelity)
            )
        return results

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    flow = results["flow"].throughput_bps
    exact = results["exact"].throughput_bps
    benchmark.extra_info["flow_bps"] = round(flow)
    benchmark.extra_info["exact_bps"] = round(exact)
    benchmark.extra_info["exact_over_flow"] = round(exact / flow, 3)
    # The two accountings track each other closely — the rank dynamics,
    # not per-packet dependence details, dominate (see EXPERIMENTS.md).
    assert 0.5 <= exact / flow <= 2.0
