#!/usr/bin/env python
"""Performance regression gate — the harness CI enforces.

Measures throughput probes across the stack's hot paths:

* ``codec_encode_mbps`` — raw GF(2^8) matrix encode ``X = R . B``;
* ``codec_pipeline_mbps`` — encode + progressive Gauss-Jordan decode
  (the Sec. 4 "coding efficiency" pipeline);
* ``emulator_kslots_per_sec`` — slot loop of the packet-level emulator
  on a MORE session (scheduler + channel + runtimes); *advisory*;
* ``optimizer_iters_per_sec`` — outer iterations of the distributed
  rate control (Table 1) on the Fig. 1 sample topology; *advisory*.

Raw numbers are machine-dependent, so each probe is **normalized by a
calibration workload** (numpy table-lookup + XOR — the same primitive
the codec leans on) measured in the same process.  The committed
baseline stores normalized values; a run regresses when its normalized
throughput falls more than ``--tolerance`` (default 15%) below the
baseline.  This first-order-cancels machine speed while still catching
real slowdowns: a 20% slowdown injected into the GF(2^8) encode path
moves the codec probes but not the calibration, and trips the gate
(``tests/test_regression_gate.py`` proves it).

The interpreter/scipy-bound probes (marked *advisory*, printed with a
``~``) vary 20-40% between identical processes on shared runners —
noise no single-run gate at a sane tolerance survives — so they are
measured, reported and uploaded as artifacts, but only fail the run
under ``--strict``.

Usage::

    python benchmarks/regression_check.py --quick                 # CI smoke
    python benchmarks/regression_check.py                         # full probes
    python benchmarks/regression_check.py --quick --write-baseline
    python benchmarks/regression_check.py --tolerance 0.10

Exit status: 0 = within tolerance, 1 = regression detected,
2 = baseline missing for this mode (run ``--write-baseline`` first).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.coding.backends import (  # noqa: E402
    REFERENCE_BACKEND,
    available_backends,
    best_backend_name,
    get_backend,
)
from repro.coding.decoder import ProgressiveDecoder  # noqa: E402
from repro.coding.encoder import SourceEncoder  # noqa: E402
from repro.coding.generation import GenerationParams, random_generation  # noqa: E402
from repro.coding.gf256 import GF256  # noqa: E402
from repro.coding.matrix import FieldType  # noqa: E402
from repro.emulator.channel import LossyBroadcastChannel  # noqa: E402
from repro.emulator.engine import EmulationEngine  # noqa: E402
from repro.emulator.node import (  # noqa: E402
    FlowDestinationRuntime,
    FlowRelayRuntime,
    FlowSourceRuntime,
)
from repro.emulator.session import SessionConfig, run_coded_session  # noqa: E402
from repro.topology.graph import WirelessNetwork  # noqa: E402
from repro.optimization.problem import session_graph_from_network  # noqa: E402
from repro.optimization.rate_control import RateControlAlgorithm  # noqa: E402
from repro.protocols.adaptive import make_planner  # noqa: E402
from repro.protocols.more import plan_more  # noqa: E402
from repro.routing.node_selection import NodeSelectionError  # noqa: E402
from repro.scenario import (  # noqa: E402
    builtin_scenario,
    make_policy,
    run_adaptive_session,
)
from repro.topology.phy import lossy_phy  # noqa: E402
from repro.topology.random_network import fig1_sample_topology, random_network  # noqa: E402
from repro.util.rng import RngFactory  # noqa: E402

SCHEMA_VERSION = 1
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "BENCH_baseline.json"
DEFAULT_OUTPUT = Path("BENCH_local.json")
DEFAULT_TOLERANCE = 0.15


@dataclass(frozen=True)
class ProbeResult:
    """One probe's measurement.

    ``advisory`` probes are interpreter/scipy-bound: their speed varies
    20-40% between identical processes on shared runners, independent of
    the calibration workload, so they are reported and uploaded but
    excluded from the hard gate (``compare(strict=True)`` includes them).

    ``ratio`` probes measure a dimensionless ratio of two workloads in
    the same process (e.g. a speedup); they are already machine-
    normalized, so calibration is not applied.
    """

    name: str
    raw: float  # machine-dependent throughput (or a ratio)
    unit: str
    advisory: bool = False
    ratio: bool = False

    def normalized(self, calibration: float) -> float:
        """Throughput relative to the calibration workload."""
        if self.ratio:
            return self.raw
        return self.raw / calibration


@dataclass(frozen=True)
class Regression:
    """One metric that fell below the gate."""

    name: str
    baseline: float  # normalized
    current: float  # normalized
    change: float  # signed relative change, negative = slower

    def describe(self) -> str:
        return (
            f"{self.name}: normalized {self.current:.4g} vs baseline "
            f"{self.baseline:.4g} ({self.change:+.1%})"
        )


def _best_of(fn: Callable[[], float], rounds: int) -> float:
    """Highest throughput over ``rounds`` invocations (noise rejection)."""
    return max(fn() for _ in range(rounds))


def calibrate(*, size: int = 1 << 20, inner: int = 16, rounds: int = 5) -> float:
    """MB/s of the calibration workload: fancy table lookup + XOR.

    This is the numpy primitive every GF(2^8) row kernel reduces to, so
    probe/calibration ratios transfer across machines far better than
    raw MB/s.
    """
    rng = np.random.default_rng(12345)
    table = rng.integers(0, 256, size=256, dtype=np.uint8)
    data = rng.integers(0, 256, size=size, dtype=np.uint8)

    def run() -> float:
        buffer = data.copy()
        started = time.perf_counter()
        for _ in range(inner):
            np.bitwise_xor(buffer, table[buffer], out=buffer)
        elapsed = time.perf_counter() - started
        return size * inner / elapsed / 1e6

    return _best_of(run, rounds)


def probe_codec_encode(
    *, blocks: int, block_size: int, inner: int, rounds: int,
    field: FieldType = GF256,
) -> ProbeResult:
    """Raw encode throughput: X = R . B over GF(2^8)."""
    rng = np.random.default_rng(7)
    coefficients = rng.integers(0, 256, size=(blocks, blocks), dtype=np.uint8)
    generation = rng.integers(0, 256, size=(blocks, block_size), dtype=np.uint8)

    def run() -> float:
        started = time.perf_counter()
        for _ in range(inner):
            field.matmul(coefficients, generation)
        elapsed = time.perf_counter() - started
        return blocks * block_size * inner / elapsed / 1e6

    return ProbeResult("codec_encode_mbps", _best_of(run, rounds), "MB/s")


def probe_codec_pipeline(
    *, blocks: int, block_size: int, inner: int, rounds: int,
    field: FieldType = GF256, name: str = "codec_pipeline_mbps",
) -> ProbeResult:
    """Encode + progressive-decode pipeline throughput (Sec. 4).

    Feeds the decoder generation-sized batches through the block entry
    points (``next_packets`` / ``add_packets``) — the batch-first shape
    the harnesses use since the contiguous-kernel rewrite.
    """
    rng = np.random.default_rng(11)
    params = GenerationParams(blocks=blocks, block_size=block_size)
    generation = random_generation(0, params, rng)

    def run() -> float:
        started = time.perf_counter()
        for _ in range(inner):
            encoder = SourceEncoder(1, generation, rng, field=field)
            decoder = ProgressiveDecoder(blocks, block_size, field=field)
            while not decoder.is_complete:
                decoder.add_packets(encoder.next_packets(blocks))
        elapsed = time.perf_counter() - started
        return blocks * block_size * inner / elapsed / 1e6

    return ProbeResult(name, _best_of(run, rounds), "MB/s")


def probe_codec_decode_batch(
    *, blocks: int, block_size: int, batch: int, inner: int, rounds: int,
    field: FieldType = GF256,
) -> ProbeResult:
    """Batched progressive-decode throughput: ``add_rows`` over batches.

    Pre-encodes a redundant stream of coded rows once, then measures only
    the decoder's batch elimination (forward-eliminate + back-substitute
    per batch), isolating the contiguous-matrix kernel from encoding.
    """
    rng = np.random.default_rng(13)
    coefficients = rng.integers(
        0, 256, size=(blocks + batch, blocks), dtype=np.uint8
    )
    generation = rng.integers(0, 256, size=(blocks, block_size), dtype=np.uint8)
    payloads = GF256.matmul(coefficients, generation)
    rows = np.concatenate([coefficients, payloads], axis=1)

    def run() -> float:
        started = time.perf_counter()
        for _ in range(inner):
            decoder = ProgressiveDecoder(blocks, block_size, field=field)
            for start in range(0, rows.shape[0], batch):
                if decoder.is_complete:
                    break
                decoder.add_rows(rows[start : start + batch])
        elapsed = time.perf_counter() - started
        return blocks * block_size * inner / elapsed / 1e6

    return ProbeResult("codec_decode_batch_mbps", _best_of(run, rounds), "MB/s")


def sweep_codec_backends(*, quick: bool) -> Dict[str, float]:
    """Pipeline MB/s for every backend available on this machine.

    Uploaded in the BENCH artifact so CI runs document what each backend
    actually delivers where they ran; also feeds the advisory
    ``codec_backend_speedup`` ratio (already machine-normalized, so no
    calibration applies).
    """
    return {
        name: probe_codec_pipeline(
            blocks=16,
            block_size=1024,
            inner=3 if quick else 6,
            rounds=2,
            field=get_backend(name),
            name=f"codec_pipeline_mbps[{name}]",
        ).raw
        for name in available_backends()
    }


def _feasible_pair(network) -> Tuple[int, int]:
    """A deterministic (source, destination) pair MORE can plan."""
    for source in range(network.node_count):
        for destination in range(network.node_count - 1, -1, -1):
            if source == destination:
                continue
            try:
                plan = plan_more(network, source, destination)
            except NodeSelectionError:
                continue
            if len(plan.forwarders.nodes) >= 4:
                return source, destination
    raise RuntimeError("no feasible MORE session on the probe network")


def probe_emulator(*, nodes: int, seconds: float, rounds: int) -> ProbeResult:
    """Emulator slot-loop throughput in kilo-slots per wall second."""
    rng = RngFactory(2008)
    network = random_network(nodes, phy=lossy_phy(rng=rng.derive("phy")), rng=rng.derive("topology"))
    source, destination = _feasible_pair(network)
    plan = plan_more(network, source, destination)
    config = SessionConfig(max_seconds=seconds, target_generations=0)

    def run() -> float:
        started = time.perf_counter()
        result = run_coded_session(
            network, plan, config=config, rng=rng.spawn("bench")
        )
        elapsed = time.perf_counter() - started
        slots = result.duration / (config.coded_packet_bytes() / network.capacity)
        return slots / elapsed / 1e3

    return ProbeResult(
        "emulator_kslots_per_sec", _best_of(run, rounds), "kslots/s", advisory=True
    )


def probe_emulator_slot_loop(*, relays: int, slots: int, rounds: int) -> ProbeResult:
    """Pure engine slot-loop throughput: ``step()`` on a fixed line session.

    Unlike ``emulator_kslots_per_sec`` this skips MORE planning and the
    session driver entirely — it times nothing but the scheduler /
    channel / runtime slot loop on a hand-built relay line, so it moves
    only when the engine's per-slot hot path does.
    """
    node_count = relays + 2
    positions = np.array([[float(i), 0.0] for i in range(node_count)])
    probabilities = {}
    for i in range(node_count - 1):
        probabilities[(i, i + 1)] = 0.8
        probabilities[(i + 1, i)] = 0.8
    network = WirelessNetwork(
        positions, probabilities, communication_range=1.2, capacity=2e4
    )
    packet_bytes = 1064
    blocks = 16

    def build() -> EmulationEngine:
        runtimes = {
            0: FlowSourceRuntime(
                0, 1, blocks, rate_bps=1e4, packet_bytes=packet_bytes
            ),
            node_count - 1: FlowDestinationRuntime(
                node_count - 1, 1, blocks, on_decoded=lambda _gen: None
            ),
        }
        for relay in range(1, node_count - 1):
            runtimes[relay] = FlowRelayRuntime(
                relay,
                1,
                blocks,
                packet_bytes,
                mode="rate",
                rate_bps=8e3,
                upstream=(relay - 1,),
            )
        channel = LossyBroadcastChannel(network, rng=np.random.default_rng(21))
        return EmulationEngine(
            network,
            runtimes,
            channel,
            slot_duration=packet_bytes / network.capacity,
            scheduler_rng=np.random.default_rng(22),
            capture_rng=np.random.default_rng(23),
        )

    def run() -> float:
        engine = build()
        started = time.perf_counter()
        engine.run(slots)
        elapsed = time.perf_counter() - started
        return slots / elapsed / 1e3

    return ProbeResult(
        "emulator_slot_loop", _best_of(run, rounds), "kslots/s", advisory=True
    )


def probe_adaptive_replan(
    *, nodes: int, seconds: float, epochs: int, rounds: int
) -> ProbeResult:
    """Live control-plane turnaround: successful re-plans per wall second.

    Runs one OMNC session under the builtin drift scenario with an
    every-epoch periodic policy, so each epoch exercises the full
    re-initiation path — warm-started rate control, ``replan_cost``
    charging, runtime hot-swap and engine structure rebuild.
    """
    rng = RngFactory(2008)
    network = random_network(
        nodes, phy=lossy_phy(rng=rng.derive("phy")), rng=rng.derive("topology")
    )
    source, destination = _feasible_pair(network)
    spec = builtin_scenario(
        "drift", duration=seconds, epoch_seconds=seconds / epochs
    )
    config = SessionConfig(max_seconds=seconds)

    def run() -> float:
        planner = make_planner("omnc", source, destination)
        started = time.perf_counter()
        result = run_adaptive_session(
            network,
            planner,
            make_policy("periodic"),
            spec,
            config=config,
            rng=RngFactory(7),
        )
        elapsed = time.perf_counter() - started
        return max(result.replans, 1) / elapsed

    return ProbeResult(
        "adaptive_replan", _best_of(run, rounds), "replans/s", advisory=True
    )


def probe_campaign_parallel_speedup(
    *, nodes: int, sessions: int, seconds: float, generations: int, rounds: int
) -> ProbeResult:
    """Executor scaling: serial wall time over ``--jobs N`` wall time.

    Runs an identical reduced four-protocol campaign twice — serially and
    on a worker pool sized ``min(4, cpu_count)`` — and reports the
    speedup.  On an idle 4-core machine this should exceed 2x; on a
    single core it hovers near 1x minus pool overhead (the engine must
    not make campaigns *slower* when parallelism buys nothing).  The
    probe is *advisory*: its value is a property of the machine's core
    count and load, not of the code alone.

    Sizing: the campaign must be heavy enough to amortize pool spin-up
    (process forks + queue setup, ~0.1 s), or the ratio measures the
    fixed cost rather than executor scaling — the original 4-session /
    2-generation shape finished in ~0.2 s of compute and recorded an
    absurd 0.74x on one core.  The shapes below put >= 0.5 s of compute
    behind the fork, which drives a single-core run to ~1.0x (overhead
    amortized) and leaves multi-core runs room to show real speedup.
    """
    import multiprocessing

    from repro.exec import ExecutionPolicy
    from repro.experiments.common import CampaignConfig, run_campaign

    workers = max(2, min(4, multiprocessing.cpu_count()))
    config = CampaignConfig(
        node_count=nodes,
        sessions=sessions,
        min_hops=2,
        max_hops=8,
        session_seconds=seconds,
        target_generations=generations,
        seed=2008,
    )

    def run() -> float:
        started = time.perf_counter()
        serial = run_campaign(config, policy=ExecutionPolicy(jobs=1))
        serial_wall = time.perf_counter() - started
        started = time.perf_counter()
        parallel = run_campaign(config, policy=ExecutionPolicy(jobs=workers))
        parallel_wall = time.perf_counter() - started
        if serial.digest() != parallel.digest():  # determinism is the contract
            raise RuntimeError("parallel campaign diverged from serial")
        return serial_wall / parallel_wall

    return ProbeResult(
        "campaign_parallel_speedup",
        _best_of(run, rounds),
        "x",
        advisory=True,
        ratio=True,
    )


def probe_sharded_slot_loop(
    *, nodes: int, slots: int, shards: int, rounds: int
) -> ProbeResult:
    """Sharded-vs-serial slot-loop speedup on a large relay mesh.

    Builds a rate-driven relay line where **every** node carries a
    runtime — per-slot work scales with ``nodes`` — and runs the same
    slot budget twice: once through the in-process serial engine
    (``shards=1``, the per-node-RNG oracle) and once spatially
    partitioned across ``shards`` persistent workers synchronized at
    slot barriers.  Reports serial wall time over sharded wall time.

    The ratio is *advisory* for the same reason as
    ``campaign_parallel_speedup``: shard workers are CPU-bound, so the
    achievable speedup is ceilinged by the machine's core count.  On a
    >= 4-core runner the 4-shard probe should exceed 2x; on a single
    core it reads barrier + IPC overhead (< 1x).  The digest recheck is
    a **hard assert** either way — merged engine stats must be
    bit-identical to the serial loop on every machine, or the probe
    raises instead of reporting a number.
    """
    import dataclasses

    from repro.emulator.shard import ShardedSession, _DecodeLog
    from repro.topology.partition import partition_network

    positions = np.array([[float(i), 0.0] for i in range(nodes)])
    probabilities = {}
    for i in range(nodes - 1):
        probabilities[(i, i + 1)] = 0.8
        probabilities[(i + 1, i)] = 0.8
    network = WirelessNetwork(
        positions, probabilities, communication_range=1.2, capacity=2e4
    )
    partition = partition_network(network, shards)  # halo cost, reported below
    packet_bytes = 1064
    blocks = 16

    def build_runtimes(decode_log):
        runtimes = {
            0: FlowSourceRuntime(
                0, 1, blocks, rate_bps=1e4, packet_bytes=packet_bytes
            ),
            nodes - 1: FlowDestinationRuntime(
                nodes - 1, 1, blocks, on_decoded=decode_log
            ),
        }
        for relay in range(1, nodes - 1):
            runtimes[relay] = FlowRelayRuntime(
                relay,
                1,
                blocks,
                packet_bytes,
                mode="rate",
                rate_bps=8e3,
                upstream=(relay - 1,),
            )
        return runtimes

    def run_once(shard_count):
        decode_log = _DecodeLog()
        with ShardedSession(
            network,
            build_runtimes(decode_log),
            packet_bytes / network.capacity,
            rng_factory=RngFactory(2008),
            shards=shard_count,
            decode_log=decode_log,
        ) as session:
            started = time.perf_counter()
            session.run(slots)
            wall = time.perf_counter() - started
            stats = session.finalize_stats()
        return wall, dataclasses.asdict(stats)

    def run() -> float:
        serial_wall, serial_stats = run_once(1)
        sharded_wall, sharded_stats = run_once(shards)
        if sharded_stats != serial_stats:  # determinism is the contract
            raise RuntimeError("sharded slot loop diverged from serial")
        return serial_wall / sharded_wall

    result = ProbeResult(
        "sharded_slot_loop",
        _best_of(run, rounds),
        "x",
        advisory=True,
        ratio=True,
    )
    print(
        f"  sharded_slot_loop: {nodes} nodes / {shards} shards, "
        f"halo fraction {partition.halo_fraction():.3f}",
        file=sys.stderr,
    )
    return result


def probe_optimizer(*, inner: int, rounds: int) -> ProbeResult:
    """Distributed rate-control iterations per wall second (Fig. 1 graph)."""
    network = fig1_sample_topology(capacity=1e5)
    graph = session_graph_from_network(network, 0, 5)

    def run() -> float:
        iterations = 0
        started = time.perf_counter()
        for _ in range(inner):
            iterations += RateControlAlgorithm(graph).run().iterations
        elapsed = time.perf_counter() - started
        return iterations / elapsed

    return ProbeResult(
        "optimizer_iters_per_sec", _best_of(run, rounds), "iter/s", advisory=True
    )


def collect(mode: str = "full") -> dict:
    """Run every probe; returns the canonical result document.

    Codec probes run on the *best available* backend (the acceptance
    criterion for the codec rewrite is stated against it); the
    per-backend sweep and the ``codec_backend_speedup`` ratio record how
    the alternatives compare on the same machine.
    """
    if mode not in ("quick", "full"):
        raise ValueError(f"mode must be 'quick' or 'full', got {mode!r}")
    quick = mode == "quick"
    calibration = calibrate(rounds=5 if quick else 8)
    codec_backend = best_backend_name()
    best = get_backend(codec_backend)
    backend_sweep = sweep_codec_backends(quick=quick)
    speedup = ProbeResult(
        "codec_backend_speedup",
        backend_sweep[codec_backend] / backend_sweep[REFERENCE_BACKEND],
        "x",
        advisory=True,
        ratio=True,
    )
    probes: List[ProbeResult] = [
        speedup,
        # The codec probes hard-gate, and on the compiled backend a round
        # lasts single-digit milliseconds — shorter than the multi-ms
        # noise spells shared runners exhibit, so best-of-4 could land
        # entirely inside one.  Rounds are nearly free at that speed:
        # take many of them so the best-of spans enough wall time to see
        # at least one quiet window.
        probe_codec_encode(
            blocks=40,
            block_size=1024,
            inner=10 if quick else 40,
            rounds=10,
            field=best,
        ),
        # block_size stays >= 1024 in both modes: smaller blocks make the
        # probe dominated by per-call interpreter overhead, whose speed
        # varies ~±10% between processes (allocation alignment) and is
        # not cancelled by the calibration workload.
        probe_codec_pipeline(
            blocks=16 if quick else 40,
            block_size=1024,
            inner=12 if quick else 10,
            rounds=10,
            field=best,
        ),
        probe_codec_decode_batch(
            blocks=16 if quick else 40,
            block_size=1024,
            batch=8 if quick else 16,
            inner=20 if quick else 12,
            rounds=10,
            field=best,
        ),
        probe_emulator(
            nodes=30 if quick else 60,
            seconds=120.0 if quick else 400.0,
            rounds=4 if quick else 3,
        ),
        probe_emulator_slot_loop(
            relays=4,
            slots=2000 if quick else 6000,
            rounds=3 if quick else 2,
        ),
        probe_adaptive_replan(
            nodes=30,
            seconds=40.0 if quick else 120.0,
            epochs=4 if quick else 8,
            rounds=2 if quick else 3,
        ),
        # Sized per the probe docstring: >= 0.5 s of campaign compute so
        # pool spin-up is amortized out of the ratio.
        probe_campaign_parallel_speedup(
            nodes=40,
            sessions=12 if quick else 16,
            seconds=30.0 if quick else 60.0,
            generations=4,
            rounds=2,
        ),
        # Full mode exercises the acceptance shape (>= 2k nodes, 4
        # shards); quick mode keeps CI smoke under a few seconds with a
        # 2-shard cut of a smaller line.
        probe_sharded_slot_loop(
            nodes=256 if quick else 2048,
            slots=60 if quick else 100,
            shards=2 if quick else 4,
            rounds=2,
        ),
        probe_optimizer(inner=10 if quick else 20, rounds=3 if quick else 3),
    ]
    return {
        "schema": SCHEMA_VERSION,
        "mode": mode,
        "calibration_mbps": calibration,
        "codec_backend": codec_backend,
        "backends": {
            name: {"pipeline_mbps": mbps} for name, mbps in backend_sweep.items()
        },
        "metrics": {
            probe.name: {
                "raw": probe.raw,
                "normalized": probe.normalized(calibration),
                "unit": probe.unit,
                "advisory": probe.advisory,
            }
            for probe in probes
        },
    }


def compare(
    current: dict,
    baseline: dict,
    tolerance: float = DEFAULT_TOLERANCE,
    *,
    strict: bool = False,
) -> List[Regression]:
    """Normalized-throughput gate: flag drops beyond ``tolerance``.

    Metrics present in only one document are ignored (adding a probe
    must not fail the gate until the baseline is regenerated), and
    advisory metrics are skipped unless ``strict``.
    """
    if tolerance <= 0:
        raise ValueError(f"tolerance must be > 0, got {tolerance}")
    regressions: List[Regression] = []
    for name, record in sorted(current["metrics"].items()):
        reference = baseline["metrics"].get(name)
        if reference is None:
            continue
        if record.get("advisory") and not strict:
            continue
        base_value = reference["normalized"]
        if base_value <= 0:
            continue
        change = (record["normalized"] - base_value) / base_value
        if change < -tolerance:
            regressions.append(
                Regression(
                    name=name,
                    baseline=base_value,
                    current=record["normalized"],
                    change=change,
                )
            )
    return regressions


def load_baseline(path: Path, mode: str) -> Optional[dict]:
    """The baseline section for ``mode``, or None when absent."""
    if not path.exists():
        return None
    document = json.loads(path.read_text())
    return document.get("modes", {}).get(mode)


def write_baseline(path: Path, result: dict) -> None:
    """Merge ``result`` into the per-mode baseline file."""
    document: Dict[str, object] = {"schema": SCHEMA_VERSION, "modes": {}}
    if path.exists():
        document = json.loads(path.read_text())
        document.setdefault("modes", {})
    document["schema"] = SCHEMA_VERSION
    document["modes"][result["mode"]] = result  # type: ignore[index]
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def _print_report(result: dict, baseline: Optional[dict]) -> None:
    print(
        f"regression check ({result['mode']} mode, "
        f"calibration {result['calibration_mbps']:.0f} MB/s)"
    )
    if result.get("backends"):
        sweep = ", ".join(
            f"{name} {record['pipeline_mbps']:.1f}"
            for name, record in sorted(result["backends"].items())
        )
        print(
            f"codec backends (pipeline MB/s): {sweep}; "
            f"codec probes served by {result.get('codec_backend')!r}"
        )
    header = f"{'metric':28s} {'raw':>12s} {'normalized':>12s} {'baseline':>12s} {'change':>8s}"
    print(header)
    for name, record in sorted(result["metrics"].items()):
        reference = (baseline or {"metrics": {}})["metrics"].get(name)
        if reference:
            base = reference["normalized"]
            change = (record["normalized"] - base) / base if base > 0 else 0.0
            tail = f"{base:12.4g} {change:+8.1%}"
        else:
            tail = f"{'—':>12s} {'—':>8s}"
        marker = "~" if record.get("advisory") else " "
        print(
            f"{marker}{name:27s} {record['raw']:12.4g} {record['normalized']:12.4g} {tail}"
        )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark regression gate (see module docstring)"
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced shapes for CI smoke runs"
    )
    parser.add_argument(
        "--mode",
        choices=("quick", "full"),
        default=None,
        help="probe mode; --mode quick is equivalent to --quick",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"baseline file (default {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help="where to write this run's results "
        f"(default {DEFAULT_OUTPUT}; gitignored)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed normalized-throughput drop (default 0.15 = 15%%)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record this run as the committed baseline for its mode",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also gate on advisory (~) metrics, not just the stable ones",
    )
    args = parser.parse_args(argv)
    if args.tolerance <= 0:
        parser.error(f"--tolerance must be > 0, got {args.tolerance}")

    if args.mode is not None:
        mode = args.mode
    else:
        mode = "quick" if args.quick else "full"
    result = collect(mode)
    args.output.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")

    if args.write_baseline:
        write_baseline(args.baseline, result)
        _print_report(result, None)
        print(f"baseline ({mode}) written to {args.baseline}")
        return 0

    baseline = load_baseline(args.baseline, mode)
    if baseline is None:
        _print_report(result, None)
        print(
            f"no {mode}-mode baseline in {args.baseline}; "
            "run with --write-baseline first",
            file=sys.stderr,
        )
        return 2
    _print_report(result, baseline)
    regressions = compare(result, baseline, args.tolerance, strict=args.strict)
    if regressions:
        print(f"\nREGRESSION (> {args.tolerance:.0%} below baseline):")
        for regression in regressions:
            print(f"  {regression.describe()}")
        return 1
    print(f"\nok: all metrics within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
