"""Figure 4 — node utility and path utility ratios.

Paper: oldMORE prunes a large share of the selected nodes and nearly all
path diversity, while OMNC and (new) MORE use almost everything.  The
benchmark reuses the shared lossy campaign and asserts the reproduced
contrast.
"""

from repro.emulator.stats import summarize


def test_fig4_utility_distributions(benchmark, lossy_campaign):
    def derive():
        out = {}
        for protocol in ("omnc", "more", "oldmore"):
            nodes, paths = lossy_campaign.utilities(protocol)
            out[protocol] = (summarize(nodes), summarize(paths))
        return out

    distributions = benchmark(derive)
    for protocol, (nodes, paths) in distributions.items():
        benchmark.extra_info[f"{protocol}_node_utility"] = round(nodes.mean, 3)
        benchmark.extra_info[f"{protocol}_path_utility"] = round(paths.mean, 3)

    omnc_nodes, omnc_paths = distributions["omnc"]
    more_nodes, more_paths = distributions["more"]
    old_nodes, old_paths = distributions["oldmore"]
    # The paper's Fig. 4 findings:
    # (1) OMNC and MORE have similar, high node utility;
    assert omnc_nodes.mean > 0.7
    assert more_nodes.mean > 0.7
    assert abs(omnc_nodes.mean - more_nodes.mean) < 0.25
    # (2) oldMORE prunes heavily on both axes.
    assert old_nodes.mean < omnc_nodes.mean - 0.15
    assert old_paths.mean < omnc_paths.mean * 0.5
