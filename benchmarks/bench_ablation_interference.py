"""Ablation — the emulator's interference model.

Drift's MAC model (Sec. 5) is ambiguous between three readings we
implement: ``blanking`` (hidden-terminal receivers hear nothing),
``capture`` (a covered receiver keeps one arrival), and
``conflict_free`` (the Sec. 3.2 idealized broadcast MAC that serializes
shared-receiver transmitters).  The benchmark runs the same OMNC
session under all three so the sensitivity of the headline numbers to
this modeling choice is explicit.
"""

from repro.emulator import SessionConfig, run_coded_session
from repro.protocols import plan_omnc
from repro.topology import random_network
from repro.util import RngFactory

MODELS = ("blanking", "capture", "conflict_free")


def test_interference_model_ablation(benchmark):
    rng = RngFactory(3)
    network = random_network(120, rng=rng.derive("topo"))
    plan = plan_omnc(network, 94, 45)

    def run_all():
        results = {}
        for model in MODELS:
            config = SessionConfig(
                max_seconds=120.0, target_generations=4, interference=model
            )
            results[model] = run_coded_session(
                network, plan, config=config, rng=rng.spawn(model)
            )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for model, result in results.items():
        benchmark.extra_info[f"{model}_bps"] = round(result.throughput_bps)
        assert result.throughput_bps > 0
