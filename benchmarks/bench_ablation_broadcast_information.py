"""Ablation — the broadcast information constraint (5b).

The paper's formulation prices each link separately (constraint 5),
which lets the LP count one broadcast as independent flow to several
receivers.  Constraint (5b) — the hyperarc capacity of Lun et al. [17]
— closes that loophole.  The benchmark solves both LPs across a batch
of session graphs and reports how much of the paper-LP's throughput is
an artifact of multi-copy counting.
"""

import numpy as np

from repro.experiments.common import CampaignConfig, build_network, pick_sessions
from repro.optimization.problem import session_graph_from_selection
from repro.optimization.sunicast import solve_sunicast
from repro.routing.node_selection import select_forwarders


def test_broadcast_information_ablation(benchmark):
    config = CampaignConfig.from_environment(
        node_count=120, sessions=10, seed=2008
    )
    _, network = build_network(config)
    sessions = pick_sessions(config, network)

    def solve_all():
        ratios = []
        for source, destination, _ in sessions:
            forwarders = select_forwarders(network, source, destination)
            graph = session_graph_from_selection(network, forwarders)
            with_5b = solve_sunicast(graph).throughput
            without_5b = solve_sunicast(
                graph, broadcast_information=False
            ).throughput
            if without_5b > 1e-9:
                ratios.append(with_5b / without_5b)
        return ratios

    ratios = benchmark.pedantic(solve_all, rounds=1, iterations=1)
    benchmark.extra_info["mean_ratio_5b_over_paper_lp"] = round(
        float(np.mean(ratios)), 3
    )
    benchmark.extra_info["min_ratio"] = round(float(np.min(ratios)), 3)
    # (5b) can only tighten the LP.
    assert all(r <= 1.0 + 1e-9 for r in ratios)
    # And it does bite on real session graphs.
    assert min(ratios) < 0.999
