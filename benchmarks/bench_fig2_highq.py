"""Figure 2 (right) — throughput gains with raised transmission power.

The paper raises per-node power so the average link quality climbs to
~0.91 and reports the coded protocols' advantage collapsing (OMNC 1.12,
MORE/oldMORE below 1).  The benchmark regenerates the high-quality
campaign and records the same statistics.
"""

from repro.emulator.stats import summarize
from repro.experiments.common import run_campaign

from conftest import bench_config

PAPER_MEANS = {"omnc": 1.12, "more": 0.95, "oldmore": 0.90}


def test_fig2_high_quality_campaign(benchmark):
    campaign = benchmark.pedantic(
        run_campaign, args=(bench_config("high"),), rounds=1, iterations=1
    )
    benchmark.extra_info["average_link_quality"] = round(
        campaign.network.average_link_probability(), 3
    )
    for protocol, paper in PAPER_MEANS.items():
        summary = summarize(campaign.gains(protocol))
        benchmark.extra_info[f"{protocol}_mean_gain"] = round(summary.mean, 3)
        benchmark.extra_info[f"{protocol}_paper_mean"] = paper
        assert summary.count > 0
    # The raised-power topology must actually be high quality.
    assert campaign.network.average_link_probability() > 0.85
