"""Validation helpers and RNG factory."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.rng import RngFactory, as_rng
from repro.util.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)


class TestValidation:
    def test_check_type_accepts(self):
        assert check_type("x", 5, int) == 5

    def test_check_type_rejects_bool_as_int(self):
        with pytest.raises(TypeError, match="bool"):
            check_type("x", True, int)

    def test_check_type_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            check_type("x", "5", int)

    def test_check_positive(self):
        assert check_positive("x", 0.1) == 0.1
        with pytest.raises(ValueError):
            check_positive("x", 0)
        with pytest.raises(ValueError):
            check_positive("x", float("nan"))
        with pytest.raises(ValueError):
            check_positive("x", float("inf"))

    def test_check_non_negative(self):
        assert check_non_negative("x", 0) == 0
        with pytest.raises(ValueError):
            check_non_negative("x", -1e-9)

    def test_check_probability(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0
        with pytest.raises(ValueError):
            check_probability("p", 1.01)

    def test_check_in_range(self):
        assert check_in_range("x", 5, 0, 10) == 5
        with pytest.raises(ValueError):
            check_in_range("x", 0, 0, 10, inclusive=False)
        with pytest.raises(ValueError):
            check_in_range("x", 11, 0, 10)

    def test_error_message_names_parameter(self):
        with pytest.raises(ValueError, match="my_param"):
            check_positive("my_param", -1)


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seeds(self):
        a, b = as_rng(5), as_rng(5)
        assert a.integers(0, 100) == b.integers(0, 100)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert as_rng(generator) is generator


class TestRngFactory:
    def test_same_name_same_stream(self):
        f = RngFactory(42)
        a = f.derive("channel").integers(0, 1_000_000, 10)
        b = RngFactory(42).derive("channel").integers(0, 1_000_000, 10)
        assert np.array_equal(a, b)

    def test_different_names_different_streams(self):
        f = RngFactory(42)
        a = f.derive("channel").integers(0, 1_000_000, 10)
        b = f.derive("coding").integers(0, 1_000_000, 10)
        assert not np.array_equal(a, b)

    def test_indexed_streams(self):
        f = RngFactory(7)
        a = f.derive("node", 1).integers(0, 1_000_000, 10)
        b = f.derive("node", 2).integers(0, 1_000_000, 10)
        assert not np.array_equal(a, b)

    def test_spawn_children_independent(self):
        f = RngFactory(7)
        child_a = f.spawn("a")
        child_b = f.spawn("b")
        assert child_a.seed != child_b.seed
        va = child_a.derive("x").integers(0, 1_000_000, 10)
        vb = child_b.derive("x").integers(0, 1_000_000, 10)
        assert not np.array_equal(va, vb)

    def test_spawn_deterministic(self):
        assert RngFactory(7).spawn("a").seed == RngFactory(7).spawn("a").seed

    def test_invalid_seed(self):
        with pytest.raises(TypeError):
            RngFactory("x")
        with pytest.raises(ValueError):
            RngFactory(-1)
        with pytest.raises(TypeError):
            RngFactory(True)

    def test_invalid_name(self):
        with pytest.raises(ValueError):
            RngFactory(1).derive("")

    @given(st.integers(min_value=0, max_value=2**32), st.text(min_size=1, max_size=20))
    @settings(max_examples=25)
    def test_derivation_reproducible_property(self, seed, name):
        a = RngFactory(seed).derive(name).integers(0, 2**31)
        b = RngFactory(seed).derive(name).integers(0, 2**31)
        assert a == b
