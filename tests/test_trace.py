"""Event tracing."""

import numpy as np
import pytest

from repro.emulator.channel import LossyBroadcastChannel
from repro.emulator.engine import EmulationEngine
from repro.emulator.node import CodedDestinationRuntime, CodedSourceRuntime
from repro.emulator.trace import SessionTracer, TraceEvent
from repro.topology.random_network import chain_topology


class TestSessionTracer:
    def test_record_and_filter(self):
        tracer = SessionTracer()
        tracer.record(0, 0.0, "grant", 1)
        tracer.record(0, 0.0, "tx", 1)
        tracer.record(0, 0.0, "delivery", 1, peer=2)
        tracer.record(1, 0.05, "ack", -1, detail=1)
        assert len(tracer) == 4
        assert tracer.summary() == {
            "grant": 1, "tx": 1, "delivery": 1, "ack": 1, "replan": 0,
            "arrive": 0, "depart": 0,
        }
        assert [e.peer for e in tracer.events(kind="delivery")] == [2]
        assert [e.detail for e in tracer.events(kind="ack")] == [1]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            SessionTracer().record(0, 0.0, "explosion", 1)

    def test_capacity_bound_drops_oldest(self):
        tracer = SessionTracer(capacity=3)
        for slot in range(5):
            tracer.record(slot, slot * 0.1, "tx", 0)
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert [e.slot for e in tracer.events()] == [2, 3, 4]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SessionTracer(capacity=0)

    def test_delivery_ratio(self):
        tracer = SessionTracer()
        tracer.record(0, 0.0, "tx", 0)
        tracer.record(0, 0.0, "tx", 1)
        tracer.record(0, 0.0, "delivery", 0, peer=1)
        assert tracer.delivery_ratio() == pytest.approx(0.5)
        assert SessionTracer().delivery_ratio() == 0.0

    def test_per_node_transmissions(self):
        tracer = SessionTracer()
        tracer.record(0, 0.0, "tx", 0)
        tracer.record(1, 0.1, "tx", 0)
        tracer.record(1, 0.1, "tx", 2)
        assert tracer.per_node_transmissions() == {0: 2, 2: 1}

    def test_jsonl_round_trip(self, tmp_path):
        tracer = SessionTracer()
        tracer.record(0, 0.0, "tx", 0)
        tracer.record(1, 0.05, "delivery", 0, peer=1)
        path = tmp_path / "trace.jsonl"
        assert tracer.to_jsonl(path) == 2
        events = SessionTracer.read_jsonl(path)
        assert events == tuple(tracer.events())
        assert isinstance(events[0], TraceEvent)


class TestEngineTracing:
    def test_engine_emits_consistent_events(self):
        network = chain_topology((0.9,), capacity=2e4)
        rng = np.random.default_rng(0)
        acks = []
        source = CodedSourceRuntime(0, 1, 4, 1e4, 1048, rng)
        destination = CodedDestinationRuntime(1, 1, 4, acks.append)
        tracer = SessionTracer()
        engine = EmulationEngine(
            network,
            {0: source, 1: destination},
            LossyBroadcastChannel(network, rng=np.random.default_rng(1)),
            0.05,
            tracer=tracer,
        )
        engine.run(100)
        summary = tracer.summary()
        assert summary["tx"] == engine.stats.transmissions[0]
        assert summary["grant"] >= summary["tx"]
        assert summary["delivery"] <= summary["tx"]
        assert tracer.per_node_transmissions().get(0, 0) == summary["tx"]

    def test_ack_event_recorded_on_generation_advance(self):
        network = chain_topology((0.9,), capacity=2e4)
        rng = np.random.default_rng(2)
        source = CodedSourceRuntime(0, 1, 4, 1e4, 1048, rng)
        destination = CodedDestinationRuntime(1, 1, 4, lambda g: None)
        tracer = SessionTracer()
        engine = EmulationEngine(
            network,
            {0: source, 1: destination},
            LossyBroadcastChannel(network, rng=np.random.default_rng(3)),
            0.05,
            tracer=tracer,
        )
        engine.broadcast_generation_advance(1)
        acks = list(tracer.events(kind="ack"))
        assert len(acks) == 1
        assert acks[0].detail == 1
